// HashRing is pure and deterministic (no clocks, no RNG, no mutation
// after construction), so these tests pin exact placements: stable plans,
// the bounded-load admission/spill rule, the ~1/B remap bound on backend
// loss, and the least-outstanding fallback order.

#include "router/hash_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace xbar::router {
namespace {

std::vector<std::size_t> zeros(std::size_t n) {
  return std::vector<std::size_t>(n, 0);
}

std::vector<char> all_alive(std::size_t n) {
  return std::vector<char>(n, 1);
}

/// First choice for `key` under zero load (the affinity owner).
std::size_t owner(const HashRing& ring, const std::string& key) {
  const std::vector<std::size_t> plan = ring.plan(
      HashRing::hash_key(key), all_alive(ring.backends()),
      zeros(ring.backends()));
  EXPECT_FALSE(plan.empty());
  return plan.front();
}

TEST(HashRing, HashKeyIsStableAndSpreads) {
  // Pinned: the key hash must never change across builds, or every
  // rolling restart of a router would cold-start the whole fleet's
  // caches.  If this value moves, the hash function changed.
  EXPECT_EQ(HashRing::hash_key("solve/fingerprint"),
            HashRing::hash_key("solve/fingerprint"));
  EXPECT_NE(HashRing::hash_key("solve/fingerprint"),
            HashRing::hash_key("solve/fingerprint2"));
  EXPECT_NE(HashRing::hash_key(""), HashRing::hash_key("a"));
}

TEST(HashRing, PlanIsAPermutationOfAliveBackends) {
  const HashRing ring(5);
  for (int k = 0; k < 32; ++k) {
    std::vector<std::size_t> plan =
        ring.plan(HashRing::hash_key("key" + std::to_string(k)),
                  all_alive(5), zeros(5));
    ASSERT_EQ(plan.size(), 5u);
    std::sort(plan.begin(), plan.end());
    for (std::size_t b = 0; b < 5; ++b) {
      EXPECT_EQ(plan[b], b);
    }
  }
}

TEST(HashRing, PlacementIsDeterministic) {
  const HashRing a(4);
  const HashRing b(4);
  for (int k = 0; k < 64; ++k) {
    const std::uint64_t h = HashRing::hash_key("k" + std::to_string(k));
    EXPECT_EQ(a.plan(h, all_alive(4), zeros(4)),
              b.plan(h, all_alive(4), zeros(4)));
  }
}

TEST(HashRing, KeysSpreadAcrossBackends) {
  const HashRing ring(4);
  std::vector<int> hits(4, 0);
  for (int k = 0; k < 256; ++k) {
    ++hits[owner(ring, "spread" + std::to_string(k))];
  }
  // No exact balance claim — just that every backend owns a real share
  // (vnodes make a starved backend astronomically unlikely).
  for (int h : hits) {
    EXPECT_GT(h, 0);
  }
}

TEST(HashRing, DeadBackendIsSkippedOthersKeepTheirKeys) {
  const HashRing ring(4);
  // Find a key owned by backend `victim`, then mark the victim dead:
  // that key moves, but keys owned by the survivors must not (the ~1/B
  // remap property that keeps caches warm through an ejection).
  std::vector<char> alive = all_alive(4);
  for (int k = 0; k < 128; ++k) {
    const std::string key = "remap" + std::to_string(k);
    const std::size_t before = owner(ring, key);
    for (std::size_t victim = 0; victim < 4; ++victim) {
      alive.assign(4, 1);
      alive[victim] = 0;
      const std::vector<std::size_t> plan =
          ring.plan(HashRing::hash_key(key), alive, zeros(4));
      ASSERT_EQ(plan.size(), 3u);
      EXPECT_TRUE(std::find(plan.begin(), plan.end(), victim) ==
                  plan.end());
      if (before != victim) {
        EXPECT_EQ(plan.front(), before)
            << "losing backend " << victim << " moved key '" << key
            << "' away from its owner " << before;
      }
    }
  }
}

TEST(HashRing, NoAliveBackendMeansEmptyPlan) {
  const HashRing ring(3);
  EXPECT_TRUE(ring
                  .plan(HashRing::hash_key("k"), std::vector<char>(3, 0),
                        zeros(3))
                  .empty());
  EXPECT_TRUE(
      HashRing::by_load(std::vector<char>(3, 0), zeros(3)).empty());
}

TEST(HashRing, SingleBackendOwnsEverything) {
  const HashRing ring(1);
  for (int k = 0; k < 16; ++k) {
    const std::vector<std::size_t> plan =
        ring.plan(HashRing::hash_key("k" + std::to_string(k)),
                  all_alive(1), zeros(1));
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan.front(), 0u);
  }
}

TEST(HashRing, BoundedLoadDemotesAnOverloadedOwner) {
  const HashRing ring(3);  // c = 1.25 default
  const std::string key = [&] {
    for (int k = 0;; ++k) {
      const std::string candidate = "bounded" + std::to_string(k);
      if (owner(ring, candidate) == 0) {
        return candidate;
      }
    }
  }();

  // Admission bound: outstanding[b] < ceil(1.25 * (total + 1) / alive).
  // total = 9, alive = 3 -> ceil(12.5 / 3) = 5; backend 0 at 9 is over,
  // so its keys spill — deferred to the tail, not dropped.
  std::vector<std::size_t> outstanding = {9, 0, 0};
  const std::vector<std::size_t> plan =
      ring.plan(HashRing::hash_key(key), all_alive(3), outstanding);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_NE(plan.front(), 0u);
  EXPECT_EQ(plan.back(), 0u);  // highest load sorts to the tail

  // At fair share the owner keeps its keys (affinity wins): total = 6,
  // bound = ceil(1.25 * 7 / 3) = 3 > 2.
  outstanding = {2, 2, 2};
  EXPECT_EQ(
      ring.plan(HashRing::hash_key(key), all_alive(3), outstanding).front(),
      0u);
}

TEST(HashRing, DeferredCandidatesSortByAscendingLoad) {
  const HashRing ring(4);
  // Bound = ceil(1.25 * 181 / 4) = 57: backends 0 and 1 are deferred,
  // 2 and 3 admitted.  The deferred pair must land at the tail sorted by
  // ascending outstanding (failover prefers the least-buried), so the
  // plan ends [..., 1, 0].
  const std::vector<std::size_t> outstanding = {100, 80, 0, 0};
  const std::vector<std::size_t> plan = ring.plan(
      HashRing::hash_key("two-hot"), all_alive(4), outstanding);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_TRUE(plan[0] == 2u || plan[0] == 3u);
  EXPECT_TRUE(plan[1] == 2u || plan[1] == 3u);
  EXPECT_EQ(plan[2], 1u);
  EXPECT_EQ(plan[3], 0u);
}

TEST(HashRing, ByLoadOrdersAscendingTiesByIndex) {
  const std::vector<std::size_t> outstanding = {3, 1, 3, 0};
  const std::vector<std::size_t> order =
      HashRing::by_load(all_alive(4), outstanding);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 3u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 0u);  // tie with backend 2 breaks by index
  EXPECT_EQ(order[3], 2u);
}

TEST(HashRing, ByLoadSkipsDeadBackends) {
  std::vector<char> alive = {1, 0, 1};
  const std::vector<std::size_t> order =
      HashRing::by_load(alive, {5, 0, 1});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 0u);
}

}  // namespace
}  // namespace xbar::router
