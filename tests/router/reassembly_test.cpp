// The router's trust boundary with its own fleet: a backend line is
// relayed verbatim iff it is a JSON object carrying a string "status";
// everything else becomes a typed "io" error frame echoing the client's
// request id.  The fuzz harness drives the same function with arbitrary
// bytes; these tests pin the exact classifications.

#include "router/reassembly.hpp"

#include <gtest/gtest.h>

#include <string>

namespace xbar::router {
namespace {

void expect_rejected(const RelayResult& r, const std::string& id) {
  EXPECT_FALSE(r.relayed);
  EXPECT_NE(r.frame.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(r.frame.find("\"kind\":\"io\""), std::string::npos);
  EXPECT_NE(r.frame.find("\"id\":" + id), std::string::npos);
  EXPECT_NE(r.frame.find("backend sent"), std::string::npos);
}

TEST(Reassembly, ValidOkFrameIsRelayedVerbatim) {
  const std::string line =
      R"({"id":7,"status":"ok","cached":true,"result":{"blocking":0.125}})";
  const RelayResult r = relay_or_error(line, "7");
  EXPECT_TRUE(r.relayed);
  // Verbatim, byte for byte: re-serializing would perturb float
  // formatting and double the parse cost.
  EXPECT_EQ(r.frame, line);
}

TEST(Reassembly, ValidErrorFrameIsRelayedToo) {
  // Backend-originated typed errors (parse/config/deadline) pass through
  // untouched — they are protocol, not corruption.
  const std::string line =
      R"({"id":"x","status":"error","error":{"kind":"config","message":"bad"}})";
  const RelayResult r = relay_or_error(line, "\"x\"");
  EXPECT_TRUE(r.relayed);
  EXPECT_EQ(r.frame, line);
}

TEST(Reassembly, EmptyFrameIsRejected) {
  expect_rejected(relay_or_error("", "1"), "1");
}

TEST(Reassembly, TruncatedFrameIsRejected) {
  // A backend that died mid-write tears the frame; the client must see a
  // typed error, not half a JSON document.
  expect_rejected(
      relay_or_error(R"({"id":1,"status":"ok","result":{"blo)", "1"), "1");
}

TEST(Reassembly, GarbageIsRejected) {
  expect_rejected(relay_or_error("{ nope", "2"), "2");
  expect_rejected(relay_or_error("{]", "2"), "2");
}

TEST(Reassembly, NonObjectDocumentsAreRejected) {
  expect_rejected(relay_or_error("[1,2,3]", "3"), "3");
  expect_rejected(relay_or_error("\"ok\"", "3"), "3");
  expect_rejected(relay_or_error("42", "3"), "3");
}

TEST(Reassembly, ObjectWithoutStatusIsRejected) {
  expect_rejected(relay_or_error(R"({"id":4,"result":{}})", "4"), "4");
}

TEST(Reassembly, NonStringStatusIsRejected) {
  expect_rejected(relay_or_error(R"({"id":5,"status":200})", "5"), "5");
  expect_rejected(relay_or_error(R"({"id":5,"status":null})", "5"), "5");
}

TEST(Reassembly, ClientIdIsEchoedRaw) {
  // The id is raw JSON from parse_request (string ids keep their
  // quotes, absent ids are the literal null) and must round-trip into
  // the synthesized frame unmangled.
  const RelayResult str = relay_or_error("", "\"req-9\"");
  EXPECT_NE(str.frame.find("\"id\":\"req-9\""), std::string::npos);
  const RelayResult nul = relay_or_error("", "null");
  EXPECT_NE(nul.frame.find("\"id\":null"), std::string::npos);
}

TEST(Reassembly, DeeplyNestedValidEnvelopeStillRelays) {
  std::string line = R"({"status":"ok","result":)";
  for (int i = 0; i < 16; ++i) {
    line += R"({"n":)";
  }
  line += "1";
  for (int i = 0; i < 16; ++i) {
    line += "}";
  }
  line += "}";
  const RelayResult r = relay_or_error(line, "null");
  EXPECT_TRUE(r.relayed);
  EXPECT_EQ(r.frame, line);
}

}  // namespace
}  // namespace xbar::router
