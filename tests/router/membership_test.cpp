// Deterministic state-machine tests for fleet membership.  Time is a
// parameter everywhere (the CircuitBreaker discipline), so transition
// sequences are replayed with a synthetic clock and nothing sleeps.

#include "router/membership.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

namespace xbar::router {
namespace {

using TimePoint = Membership::TimePoint;

TimePoint at(double seconds) {
  return TimePoint() + std::chrono::duration_cast<TimePoint::duration>(
                           std::chrono::duration<double>(seconds));
}

double seconds_until(TimePoint from, TimePoint to) {
  return std::chrono::duration<double>(to - from).count();
}

MembershipConfig tight_config() {
  MembershipConfig config;
  config.probe_interval_seconds = 1.0;
  config.probe_jitter = 0.2;
  config.suspect_after = 1;
  config.eject_after = 3;
  config.readmit_after = 2;
  config.ejected_backoff_cap_seconds = 8.0;
  return config;
}

TEST(Membership, StartsHealthyWithProbesDueImmediately) {
  Membership m(3, tight_config(), 7, at(0));
  EXPECT_EQ(m.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(m.state(b), BackendState::kHealthy);
    EXPECT_EQ(m.next_probe_due(b), at(0));
  }
  EXPECT_EQ(m.alive_count(), 3u);
  EXPECT_EQ(m.ejections(), 0u);
  EXPECT_EQ(m.readmissions(), 0u);
}

TEST(Membership, OneFailureSuspectsButKeepsRoutable) {
  Membership m(2, tight_config(), 7, at(0));
  m.record_failure(0, at(1));
  EXPECT_EQ(m.state(0), BackendState::kSuspect);
  // Suspect stays in the rotation: one dropped packet must not dump a
  // backend's whole key range onto its neighbors.
  EXPECT_EQ(m.alive_count(), 2u);
  EXPECT_EQ(m.alive()[0], 1);
  EXPECT_EQ(m.ejections(), 0u);
}

TEST(Membership, OneSuccessClearsSuspicion) {
  Membership m(1, tight_config(), 7, at(0));
  m.record_failure(0, at(1));
  ASSERT_EQ(m.state(0), BackendState::kSuspect);
  m.record_success(0, at(2));
  EXPECT_EQ(m.state(0), BackendState::kHealthy);
  EXPECT_EQ(m.status(0).consecutive_failures, 0u);
}

TEST(Membership, ConsecutiveFailuresEject) {
  Membership m(2, tight_config(), 7, at(0));
  m.record_failure(1, at(1));
  m.record_failure(1, at(2));
  EXPECT_EQ(m.state(1), BackendState::kSuspect);
  m.record_failure(1, at(3));
  EXPECT_EQ(m.state(1), BackendState::kEjected);
  EXPECT_EQ(m.alive_count(), 1u);
  EXPECT_EQ(m.alive()[1], 0);
  EXPECT_EQ(m.ejections(), 1u);
  EXPECT_EQ(m.status(1).ejections, 1u);
}

TEST(Membership, InterleavedSuccessResetsTheFailureStreak) {
  Membership m(1, tight_config(), 7, at(0));
  m.record_failure(0, at(1));
  m.record_failure(0, at(2));
  m.record_success(0, at(3));  // streak broken
  m.record_failure(0, at(4));
  m.record_failure(0, at(5));
  EXPECT_EQ(m.state(0), BackendState::kSuspect);
  EXPECT_EQ(m.ejections(), 0u);
}

TEST(Membership, ReadmissionNeedsConsecutiveSuccesses) {
  Membership m(1, tight_config(), 7, at(0));
  for (int i = 0; i < 3; ++i) {
    m.record_failure(0, at(i));
  }
  ASSERT_EQ(m.state(0), BackendState::kEjected);

  // One success is not enough; a failure resets the streak (a flapping
  // backend cannot oscillate its key range in and out).
  m.record_success(0, at(10));
  EXPECT_EQ(m.state(0), BackendState::kEjected);
  m.record_failure(0, at(11));
  m.record_success(0, at(12));
  EXPECT_EQ(m.state(0), BackendState::kEjected);
  m.record_success(0, at(13));
  EXPECT_EQ(m.state(0), BackendState::kHealthy);
  EXPECT_EQ(m.readmissions(), 1u);
  EXPECT_EQ(m.status(0).readmissions, 1u);
  EXPECT_EQ(m.alive_count(), 1u);
}

TEST(Membership, ProbeScheduleIsJitteredAroundTheInterval) {
  Membership m(1, tight_config(), 42, at(0));
  // Healthy cadence: every reschedule lands in interval * (1 ± jitter).
  TimePoint now = at(0);
  for (int i = 0; i < 32; ++i) {
    m.record_success(0, now);
    const double delta = seconds_until(now, m.next_probe_due(0));
    EXPECT_GE(delta, 1.0 * (1.0 - 0.2) - 1e-9);
    EXPECT_LE(delta, 1.0 * (1.0 + 0.2) + 1e-9);
    now = m.next_probe_due(0);
  }
}

TEST(Membership, EjectedProbeBackoffDoublesAndCaps) {
  Membership m(1, tight_config(), 42, at(0));
  for (int i = 0; i < 3; ++i) {
    m.record_failure(0, at(i));
  }
  ASSERT_EQ(m.state(0), BackendState::kEjected);
  // At ejection the backoff starts at the probe interval; each further
  // failed probe doubles it, capped — a dead backend costs a probe per
  // backoff period, not per interval.  Jitter widens each step by ±20%.
  double expected = 1.0;
  TimePoint now = at(2);
  double last = seconds_until(now, m.next_probe_due(0));
  EXPECT_GE(last, expected * 0.8 - 1e-9);
  EXPECT_LE(last, expected * 1.2 + 1e-9);
  for (int i = 0; i < 5; ++i) {
    now = m.next_probe_due(0);
    m.record_failure(0, now);
    expected = std::min(2.0 * expected, 8.0);
    const double delta = seconds_until(now, m.next_probe_due(0));
    EXPECT_GE(delta, expected * 0.8 - 1e-9);
    EXPECT_LE(delta, expected * 1.2 + 1e-9);
  }
  // Readmission clears the backoff: the healthy cadence returns.
  m.record_success(0, at(100));
  m.record_success(0, at(101));
  ASSERT_EQ(m.state(0), BackendState::kHealthy);
  const double delta = seconds_until(at(101), m.next_probe_due(0));
  EXPECT_GE(delta, 0.8 - 1e-9);
  EXPECT_LE(delta, 1.2 + 1e-9);
}

TEST(Membership, ConfigIsClampedToACoherentLadder) {
  MembershipConfig config = tight_config();
  config.suspect_after = 5;
  config.eject_after = 2;   // below suspect_after: clamped up to 5
  config.readmit_after = 0; // clamped up to 1
  Membership m(1, config, 7, at(0));
  for (int i = 0; i < 4; ++i) {
    m.record_failure(0, at(i));
    EXPECT_EQ(m.state(0), BackendState::kHealthy) << "failure " << i;
  }
  m.record_failure(0, at(4));
  // suspect_after == eject_after: the suspect window collapses and the
  // fifth failure ejects directly.
  EXPECT_EQ(m.state(0), BackendState::kEjected);
  m.record_success(0, at(5));
  EXPECT_EQ(m.state(0), BackendState::kHealthy);  // readmit_after == 1
}

TEST(Membership, NoteHealthAttachesObservations) {
  Membership m(2, tight_config(), 7, at(0));
  m.note_health(1, 0.75, true, 128);
  const BackendStatus status = m.status(1);
  EXPECT_DOUBLE_EQ(status.load, 0.75);
  EXPECT_TRUE(status.draining);
  EXPECT_EQ(status.cache_entries, 128u);
  // Routing hints only: state is untouched.
  EXPECT_EQ(status.state, BackendState::kHealthy);
}

TEST(Membership, FleetCountersAggregateAcrossBackends) {
  Membership m(3, tight_config(), 7, at(0));
  for (std::size_t b = 0; b < 2; ++b) {
    for (int i = 0; i < 3; ++i) {
      m.record_failure(b, at(i));
    }
    m.record_success(b, at(10));
    m.record_success(b, at(11));
  }
  EXPECT_EQ(m.ejections(), 2u);
  EXPECT_EQ(m.readmissions(), 2u);
  EXPECT_EQ(m.alive_count(), 3u);
}

TEST(Membership, ToStringNamesStates) {
  EXPECT_EQ(to_string(BackendState::kHealthy), "healthy");
  EXPECT_EQ(to_string(BackendState::kSuspect), "suspect");
  EXPECT_EQ(to_string(BackendState::kEjected), "ejected");
}

}  // namespace
}  // namespace xbar::router
