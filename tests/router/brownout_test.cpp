// Brownout propagation tests: served `overloaded` frames decay a
// backend's hedge eligibility (unit-level, synthetic clock) and a router
// in front of a saturated backend suppresses hedges into it
// (integration, real Servers).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "router/hash_ring.hpp"
#include "router/membership.hpp"
#include "router/router.hpp"
#include "service/connection.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace xbar::router {
namespace {

using TimePoint = Membership::TimePoint;

TimePoint at(double seconds) {
  return TimePoint() + std::chrono::duration_cast<TimePoint::duration>(
                           std::chrono::duration<double>(seconds));
}

MembershipConfig brownout_config() {
  MembershipConfig config;
  config.suspect_after = 1;
  config.eject_after = 3;
  config.readmit_after = 2;
  config.overload_decay_seconds = 2.0;
  config.hedge_suppress_threshold = 0.5;
  config.brownout_pressure = 0.8;
  return config;
}

TEST(Brownout, ServedOverloadedFrameIsLivenessButSuppressesHedges) {
  Membership m(2, brownout_config(), 7, at(0));
  m.record_failure(0, at(1));
  ASSERT_EQ(m.state(0), BackendState::kSuspect);

  // The backend *answered* — liveness-wise a success...
  m.record_overloaded(0, at(2));
  EXPECT_EQ(m.state(0), BackendState::kHealthy);
  EXPECT_EQ(m.status(0).consecutive_failures, 0u);
  EXPECT_EQ(m.alive_count(), 2u);

  // ...but hedging into it is off the table while the score is hot.
  EXPECT_NEAR(m.overload_score(0, at(2)), 1.0, 1e-12);
  EXPECT_FALSE(m.hedge_eligible(0, at(2)));
  EXPECT_TRUE(m.hedge_eligible(1, at(2)));
}

TEST(Brownout, OverloadScoreDecaysAndEligibilityReturns) {
  Membership m(1, brownout_config(), 7, at(0));
  m.record_overloaded(0, at(0));
  // decay constant 2s: exp(-1) ~ 0.368 after 2s, under the 0.5 gate.
  EXPECT_NEAR(m.overload_score(0, at(2)), std::exp(-1.0), 1e-9);
  EXPECT_FALSE(m.hedge_eligible(0, at(1)));  // exp(-0.5) ~ 0.61 still hot
  EXPECT_TRUE(m.hedge_eligible(0, at(2)));

  // Repeated overloaded frames accumulate on the decayed score.
  m.record_overloaded(0, at(2));
  EXPECT_NEAR(m.overload_score(0, at(2)), std::exp(-1.0) + 1.0, 1e-9);
  EXPECT_FALSE(m.hedge_eligible(0, at(2)));
}

TEST(Brownout, AdvertisedPressureGatesHedgesIndependently) {
  Membership m(2, brownout_config(), 7, at(0));
  // No overloaded frames served, but the backend's health payload says
  // it is browned out: no hedges into it.
  m.note_health(0, 0.1, false, 5, 0.9);
  EXPECT_FALSE(m.hedge_eligible(0, at(1)));
  EXPECT_DOUBLE_EQ(m.status(0).pressure, 0.9);

  m.note_health(0, 0.1, false, 5, 0.5);  // below the 0.8 brownout gate
  EXPECT_TRUE(m.hedge_eligible(0, at(1)));

  // Pressure is clamped into [0, 1]; the 4-arg form defaults it to 0.
  m.note_health(0, 0.1, false, 5, 1.7);
  EXPECT_DOUBLE_EQ(m.status(0).pressure, 1.0);
  m.note_health(1, 0.2, false, 3);
  EXPECT_DOUBLE_EQ(m.status(1).pressure, 0.0);

  const std::vector<double> pressures = m.pressures();
  ASSERT_EQ(pressures.size(), 2u);
  EXPECT_DOUBLE_EQ(pressures[0], 1.0);
  EXPECT_DOUBLE_EQ(pressures[1], 0.0);
}

TEST(Brownout, DrainingAndEjectedAreNeverHedgeTargets) {
  Membership m(2, brownout_config(), 7, at(0));
  m.note_health(0, 0.0, true, 0, 0.0);  // draining
  EXPECT_FALSE(m.hedge_eligible(0, at(1)));

  m.record_failure(1, at(1));
  m.record_failure(1, at(2));
  m.record_failure(1, at(3));
  ASSERT_EQ(m.state(1), BackendState::kEjected);
  EXPECT_FALSE(m.hedge_eligible(1, at(3)));
}

// ---------------------------------------------------------------------------
// Integration: a saturated backend (a real Server whose overload ladder
// sheds everything) keeps answering typed `overloaded` frames; the router
// must stop hedging into it while still serving via the healthy backend.

class Conn {
 public:
  explicit Conn(std::uint16_t port)
      : socket_(service::dial("127.0.0.1", port)),
        reader_(socket_.fd(), 1 << 20) {}

  [[nodiscard]] bool connected() const { return socket_.valid(); }

  std::string rpc(const std::string& line) {
    if (!socket_.valid() || !service::write_line(socket_.fd(), line)) {
      return std::string();
    }
    std::string out;
    return reader_.read_line(out) == service::LineReader::Status::kLine
               ? out
               : std::string();
  }

 private:
  service::Socket socket_;
  service::LineReader reader_;
};

// A deliberately heavy scenario (128x128 grid): the primary's solve takes
// on the order of a millisecond, so a zero-delay hedge reliably arms while
// the primary is still in flight.
std::string solve_line(int id, double rho) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                R"({"method":"solve","id":%d,"scenario":{"switch":)"
                R"({"inputs":128},"classes":[{"name":"voice","shape":)"
                R"("poisson","rho":%.4f}]}})",
                id, rho);
  return std::string(buffer);
}

// Key owned by `owner`; `offset` shifts the rho search so successive
// calls return *distinct* keys (cold solves, never cache hits).
std::string line_owned_by(std::size_t owner, std::size_t backends, int id,
                          int offset) {
  const HashRing ring(backends);
  const std::vector<char> alive(backends, 1);
  const std::vector<std::size_t> idle(backends, 0);
  for (int k = 0; k < 1000; ++k) {
    const std::string line =
        solve_line(id, 0.10 + 0.0007 * (offset + k));
    const service::Request request = service::parse_request(line);
    if (ring.plan(HashRing::hash_key(request.cache_key), alive, idle)
            .front() == owner) {
      return line;
    }
  }
  ADD_FAILURE() << "no key found owned by backend " << owner;
  return solve_line(id, 0.5);
}

TEST(Brownout, RouterNeverHedgesIntoASaturatedBackend) {
  service::ServerConfig healthy_config;
  healthy_config.workers = 6;
  healthy_config.idle_poll_seconds = 0.05;
  service::Server healthy(healthy_config);
  healthy.start();

  // Backend 1 sheds every solve at any pressure: thresholds collapsed to
  // zero, so each request gets a typed `overloaded` frame immediately.
  service::ServerConfig saturated_config = healthy_config;
  service::OverloadConfig overload;
  overload.shed_start = 0.0;
  overload.shed_step = 0.0;
  saturated_config.overload = overload;
  service::Server saturated(saturated_config);
  saturated.start();

  RouterConfig config;
  config.backends.push_back({"127.0.0.1", healthy.port()});
  config.backends.push_back({"127.0.0.1", saturated.port()});
  config.workers = 2;
  config.idle_poll_seconds = 0.05;
  config.membership.probe_interval_seconds = 60.0;
  config.probe_timeout_seconds = 0.25;
  config.backend_client.connect_timeout_seconds = 0.5;
  config.backend_client.request_timeout_seconds = 1.0;
  config.backend_client.backoff.max_attempts = 1;
  config.pool_max_idle = 2;
  config.hedge.enabled = true;
  config.hedge.cold_delay_seconds = 0.0;  // every request arms its hedge
  Router router(std::move(config));
  router.start();

  Conn conn(router.port());
  ASSERT_TRUE(conn.connected());

  // Phase 1: a request owned by the saturated backend.  The primary
  // answers `overloaded` (liveness, but a brownout signal); the hedge —
  // or the synchronous failover — lands on the healthy backend and the
  // caller still sees an exact answer.
  const std::string owned_by_saturated = line_owned_by(1, 2, 1, 0);
  const std::string rescued = conn.rpc(owned_by_saturated);
  EXPECT_NE(rescued.find("\"status\":\"ok\""), std::string::npos);

  // Let the overloaded attempt's bookkeeping land (its frame raced the
  // healthy backend's winning one); the score then stays hot for ~2s.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Phase 2: requests owned by the healthy backend all arm their hedge
  // (zero delay) — but the only hedge candidate is browned out, so every
  // hedge must be suppressed, not launched.
  const RouterStatsSnapshot before = router.stats();
  for (int i = 0; i < 5; ++i) {
    // Distinct keys: every request is a cold ~1ms solve on the primary,
    // so the zero-delay hedge arms each time.
    const std::string response =
        conn.rpc(line_owned_by(0, 2, 10 + i, 100 * (i + 1)));
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
  }
  const RouterStatsSnapshot after = router.stats();
  // A request whose primary answers inside the (zero) hedge window never
  // reaches the eligibility check, so not all five are guaranteed to arm
  // — but several must, and *none* may launch into the saturated backend.
  EXPECT_GE(after.hedges_suppressed - before.hedges_suppressed, 3u);
  EXPECT_EQ(after.hedges_launched, before.hedges_launched);

  router.stop();
  healthy.stop();
  saturated.stop();
}

}  // namespace
}  // namespace xbar::router
