#include "sim/replication.hpp"

#include <gtest/gtest.h>

#include "core/algorithm2.hpp"
#include "fabric/banyan.hpp"
#include "fabric/crossbar.hpp"

namespace xbar::sim {
namespace {

using core::CrossbarModel;
using core::Dims;
using core::TrafficClass;

ReplicationConfig quick(std::size_t reps = 4) {
  ReplicationConfig cfg;
  cfg.replications = reps;
  cfg.sim.warmup_time = 100.0;
  cfg.sim.measurement_time = 2000.0;
  cfg.sim.num_batches = 10;
  cfg.sim.seed = 5;
  return cfg;
}

TEST(Replication, AggregatesAllReplications) {
  const CrossbarModel model(Dims::square(4),
                            {TrafficClass::poisson("p", 1.0)});
  const auto result = run_crossbar_replications(model, quick(4));
  EXPECT_EQ(result.replications, 4u);
  EXPECT_EQ(result.per_class.size(), 1u);
  EXPECT_GT(result.per_class[0].offered, 0u);
  EXPECT_GT(result.total_events, 0u);
  EXPECT_EQ(result.per_class[0].concurrency.samples, 4u);
}

TEST(Replication, MatchesAnalyticWithinInterval) {
  const CrossbarModel model(Dims::square(6),
                            {TrafficClass::poisson("p", 2.0),
                             TrafficClass::bursty("pk", 1.0, 0.5)});
  auto cfg = quick(6);
  cfg.sim.measurement_time = 5000.0;
  const auto analytic = core::Algorithm2Solver(model).solve();
  const auto result = run_crossbar_replications(model, cfg);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(result.per_class[r].time_congestion.mean,
                analytic.per_class[r].blocking,
                3.0 * result.per_class[r].time_congestion.half_width + 1e-2)
        << r;
    EXPECT_NEAR(result.per_class[r].concurrency.mean,
                analytic.per_class[r].concurrency,
                3.0 * result.per_class[r].concurrency.half_width + 0.1)
        << r;
  }
}

TEST(Replication, OutputSelectorFactoryShapesTraffic) {
  // A hotspot selector concentrates calls on one output, so congestion must
  // rise measurably versus the uniform default — and stay deterministic.
  const CrossbarModel model(Dims::square(4),
                            {TrafficClass::poisson("p", 2.0)});
  auto cfg = quick(4);
  const auto uniform = run_crossbar_replications(model, cfg);
  cfg.output_selector_factory = [](std::size_t) {
    return make_hotspot_selector(0.9, 0);
  };
  const auto hot = run_crossbar_replications(model, cfg);
  const auto hot_again = run_crossbar_replications(model, cfg);
  EXPECT_GT(hot.per_class[0].call_congestion.mean,
            uniform.per_class[0].call_congestion.mean);
  EXPECT_EQ(hot.per_class[0].call_congestion.mean,
            hot_again.per_class[0].call_congestion.mean);
}

TEST(Replication, DeterministicAcrossThreadCounts) {
  // Each replication owns its seed, so the thread partition must not change
  // the aggregate.
  const CrossbarModel model(Dims::square(4),
                            {TrafficClass::bursty("b", 1.0, 0.3)});
  auto cfg1 = quick(5);
  cfg1.threads = 1;
  auto cfg4 = quick(5);
  cfg4.threads = 4;
  const auto r1 = run_crossbar_replications(model, cfg1);
  const auto r4 = run_crossbar_replications(model, cfg4);
  EXPECT_EQ(r1.per_class[0].offered, r4.per_class[0].offered);
  EXPECT_DOUBLE_EQ(r1.per_class[0].concurrency.mean,
                   r4.per_class[0].concurrency.mean);
}

TEST(Replication, ServiceFactoryAppliesToEveryReplication) {
  const CrossbarModel model(Dims::square(4),
                            {TrafficClass::poisson("p", 2.0)});
  auto cfg = quick(4);
  cfg.service_factory = [](std::size_t, double mu) {
    return dist::make_deterministic(1.0 / mu);
  };
  const auto det = run_crossbar_replications(model, cfg);
  // Insensitivity: same blocking as the default exponential run.
  const auto exp_run = run_crossbar_replications(model, quick(4));
  EXPECT_NEAR(det.per_class[0].call_congestion.mean,
              exp_run.per_class[0].call_congestion.mean,
              det.per_class[0].call_congestion.half_width +
                  exp_run.per_class[0].call_congestion.half_width + 1e-2);
}

TEST(Replication, CustomFabricFactoryIsUsed) {
  // Run the same offered traffic through a banyan; internal blocking makes
  // call congestion strictly worse than the crossbar's.
  const CrossbarModel model(Dims::square(8),
                            {TrafficClass::poisson("p", 4.0)});
  auto cfg = quick(4);
  const auto xbar_result = run_crossbar_replications(model, cfg);
  const auto banyan_result = run_replications(
      model, [](std::size_t) { return std::make_unique<fabric::BanyanFabric>(8); },
      cfg);
  EXPECT_GT(banyan_result.per_class[0].call_congestion.mean,
            xbar_result.per_class[0].call_congestion.mean);
}

}  // namespace
}  // namespace xbar::sim
