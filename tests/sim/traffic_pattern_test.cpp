#include "sim/traffic_pattern.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "fabric/crossbar.hpp"
#include "sim/simulator.hpp"

namespace xbar::sim {
namespace {

TEST(OutputSelector, UniformProducesDistinctInRange) {
  auto sel = make_uniform_selector();
  dist::Xoshiro256 rng(1);
  std::vector<unsigned> out;
  for (int i = 0; i < 1000; ++i) {
    sel->sample(rng, 8, 3, out);
    ASSERT_EQ(out.size(), 3u);
    for (const unsigned p : out) {
      EXPECT_LT(p, 8u);
    }
    auto sorted = out;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(OutputSelector, UniformIsUnbiased) {
  auto sel = make_uniform_selector();
  dist::Xoshiro256 rng(2);
  std::vector<int> counts(6, 0);
  std::vector<unsigned> out;
  constexpr int kTrials = 60000;
  for (int i = 0; i < kTrials; ++i) {
    sel->sample(rng, 6, 1, out);
    ++counts[out[0]];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kTrials / 6, 500);
  }
}

TEST(OutputSelector, HotspotHitsHotPortAtConfiguredRate) {
  auto sel = make_hotspot_selector(0.3, 2);
  dist::Xoshiro256 rng(3);
  std::vector<unsigned> out;
  int hot_hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    sel->sample(rng, 16, 1, out);
    if (out[0] == 2) {
      ++hot_hits;
    }
  }
  // P(hot) = h + (1-h)/16.
  const double expected = 0.3 + 0.7 / 16.0;
  EXPECT_NEAR(static_cast<double>(hot_hits) / kTrials, expected, 0.01);
}

TEST(OutputSelector, HotspotZeroDegeneratesToUniform) {
  auto sel = make_hotspot_selector(0.0, 0);
  dist::Xoshiro256 rng(4);
  std::vector<unsigned> out;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) {
    sel->sample(rng, 4, 1, out);
    ++counts[out[0]];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 400);
  }
}

TEST(OutputSelector, HotspotBundlesStayDistinct) {
  auto sel = make_hotspot_selector(0.9, 0);
  dist::Xoshiro256 rng(5);
  std::vector<unsigned> out;
  for (int i = 0; i < 2000; ++i) {
    sel->sample(rng, 6, 4, out);
    ASSERT_EQ(out.size(), 4u);
    auto sorted = out;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(OutputSelector, RejectsInvalidFraction) {
  EXPECT_THROW(make_hotspot_selector(-0.1), std::invalid_argument);
  EXPECT_THROW(make_hotspot_selector(1.5), std::invalid_argument);
}

TEST(SimulatorHotspot, NullSelectorRejected) {
  const core::CrossbarModel model(core::Dims::square(2),
                                  {core::TrafficClass::poisson("p", 0.5)});
  fabric::CrossbarFabric f(2, 2);
  Simulator sim(model, f, SimulationConfig{});
  EXPECT_THROW(sim.set_output_selector(nullptr), std::invalid_argument);
}

TEST(SimulatorHotspot, HotSpotRaisesBlockingAboveUniformModel) {
  // The analytic model assumes uniform output choice; a hot spot must push
  // the simulated call congestion above the model's prediction.
  const core::CrossbarModel model(core::Dims::square(8),
                                  {core::TrafficClass::poisson("p", 1.0)});
  const double uniform_blocking =
      core::solve(model).per_class[0].blocking;

  SimulationConfig cfg;
  cfg.warmup_time = 300.0;
  cfg.measurement_time = 8000.0;
  cfg.num_batches = 20;
  cfg.seed = 11;

  fabric::CrossbarFabric hot_fabric(8, 8);
  Simulator hot_sim(model, hot_fabric, cfg);
  hot_sim.set_output_selector(make_hotspot_selector(0.5, 0));
  const auto hot = hot_sim.run();
  EXPECT_GT(hot.per_class[0].call_congestion.mean,
            uniform_blocking + 3.0 * hot.per_class[0].call_congestion.half_width);

  // And with h = 0 the uniform model is recovered.
  fabric::CrossbarFabric uni_fabric(8, 8);
  Simulator uni_sim(model, uni_fabric, cfg);
  uni_sim.set_output_selector(make_hotspot_selector(0.0, 0));
  const auto uni = uni_sim.run();
  EXPECT_NEAR(uni.per_class[0].call_congestion.mean, uniform_blocking,
              3.0 * uni.per_class[0].call_congestion.half_width + 5e-3);
}

TEST(SimulatorHotspot, BlockingMonotoneInHotFraction) {
  const core::CrossbarModel model(core::Dims::square(8),
                                  {core::TrafficClass::poisson("p", 1.0)});
  SimulationConfig cfg;
  cfg.warmup_time = 200.0;
  cfg.measurement_time = 6000.0;
  cfg.num_batches = 12;
  cfg.seed = 13;
  double prev = -1.0;
  for (const double h : {0.0, 0.3, 0.6, 0.9}) {
    fabric::CrossbarFabric f(8, 8);
    Simulator sim(model, f, cfg);
    sim.set_output_selector(make_hotspot_selector(h, 0));
    const double blocking = sim.run().per_class[0].call_congestion.mean;
    EXPECT_GT(blocking, prev) << h;
    prev = blocking;
  }
}

}  // namespace
}  // namespace xbar::sim
