// Simulation vs analysis: the paper's future-work experiment, used here as a
// test oracle in both directions — the simulator validates the product-form
// solvers on dynamics the recurrences never see, and the solvers validate
// the simulator's mechanics.

#include "sim/simulator.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/algorithm2.hpp"
#include "core/brute_force.hpp"
#include "fabric/crossbar.hpp"

namespace xbar::sim {
namespace {

using core::CrossbarModel;
using core::Dims;
using core::TrafficClass;

SimulationConfig quick_config(std::uint64_t seed = 7) {
  SimulationConfig cfg;
  cfg.warmup_time = 300.0;
  cfg.measurement_time = 8000.0;
  cfg.num_batches = 20;
  cfg.seed = seed;
  return cfg;
}

TEST(Simulator, RejectsMismatchedFabric) {
  const CrossbarModel model(Dims::square(4), {TrafficClass::poisson("p", 0.5)});
  fabric::CrossbarFabric wrong(5, 4);
  EXPECT_THROW(Simulator(model, wrong, quick_config()), std::invalid_argument);
}

TEST(Simulator, RunTwiceThrows) {
  const CrossbarModel model(Dims::square(2), {TrafficClass::poisson("p", 0.5)});
  fabric::CrossbarFabric f(2, 2);
  Simulator sim(model, f, quick_config());
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), std::logic_error);
}

TEST(Simulator, DeterministicForFixedSeed) {
  const CrossbarModel model(Dims::square(4),
                            {TrafficClass::bursty("b", 0.8, 0.4)});
  fabric::CrossbarFabric f1(4, 4);
  fabric::CrossbarFabric f2(4, 4);
  const auto r1 = Simulator(model, f1, quick_config(99)).run();
  const auto r2 = Simulator(model, f2, quick_config(99)).run();
  EXPECT_EQ(r1.per_class[0].offered, r2.per_class[0].offered);
  EXPECT_EQ(r1.per_class[0].blocked, r2.per_class[0].blocked);
  EXPECT_DOUBLE_EQ(r1.per_class[0].concurrency.mean,
                   r2.per_class[0].concurrency.mean);
  EXPECT_EQ(r1.events, r2.events);
}

TEST(Simulator, MatchesAnalyticModelMixedTraffic) {
  const CrossbarModel model(Dims::square(8),
                            {TrafficClass::poisson("p", 0.5),
                             TrafficClass::bursty("pk", 0.4, 0.2)});
  const auto analytic = core::Algorithm2Solver(model).solve();
  fabric::CrossbarFabric f(8, 8);
  const auto result = Simulator(model, f, quick_config()).run();
  for (std::size_t r = 0; r < 2; ++r) {
    // Time congestion estimates 1 - B_r for every class.
    EXPECT_NEAR(result.per_class[r].time_congestion.mean,
                analytic.per_class[r].blocking,
                3.0 * result.per_class[r].time_congestion.half_width + 5e-3)
        << r;
    EXPECT_NEAR(result.per_class[r].concurrency.mean,
                analytic.per_class[r].concurrency,
                3.0 * result.per_class[r].concurrency.half_width + 0.05)
        << r;
  }
  // PASTA: call congestion equals time congestion for the Poisson class...
  EXPECT_NEAR(result.per_class[0].call_congestion.mean,
              analytic.per_class[0].blocking,
              3.0 * result.per_class[0].call_congestion.half_width + 5e-3);
  // ... but exceeds it for the peaky class.
  EXPECT_GT(result.per_class[1].call_congestion.mean,
            result.per_class[1].time_congestion.mean);
}

TEST(Simulator, SmoothClassSeesLessThanTimeAverage) {
  // Bernoulli arrivals see *fewer* busy servers than the time average.
  const CrossbarModel model(Dims::square(4),
                            {TrafficClass::bursty("sm", 3.0, -0.5)});
  const auto analytic = core::BruteForceSolver(model);
  fabric::CrossbarFabric f(4, 4);
  const auto result = Simulator(model, f, quick_config()).run();
  EXPECT_LT(result.per_class[0].call_congestion.mean,
            result.per_class[0].time_congestion.mean);
  // And the brute-force call congestion predicts the simulated one.
  EXPECT_NEAR(result.per_class[0].call_congestion.mean,
              analytic.call_congestion(0),
              3.0 * result.per_class[0].call_congestion.half_width + 1e-2);
}

TEST(Simulator, MultiRateClassMatchesAnalytic) {
  const CrossbarModel model(Dims::square(6),
                            {TrafficClass::poisson("wide", 2.0, 2)});
  const auto analytic = core::BruteForceSolver(model).solve();
  fabric::CrossbarFabric f(6, 6);
  const auto result = Simulator(model, f, quick_config()).run();
  EXPECT_NEAR(result.per_class[0].concurrency.mean,
              analytic.per_class[0].concurrency,
              3.0 * result.per_class[0].concurrency.half_width + 0.05);
  EXPECT_NEAR(result.per_class[0].call_congestion.mean,
              analytic.per_class[0].blocking,
              3.0 * result.per_class[0].call_congestion.half_width + 1e-2);
}

// Insensitivity (paper §2, ref [7]): measures depend on the holding-time
// distribution only through its mean.
using ServiceFactoryFn =
    std::function<std::unique_ptr<dist::ServiceDistribution>()>;

class InsensitivityTest : public ::testing::TestWithParam<ServiceFactoryFn> {
};

TEST_P(InsensitivityTest, BlockingMatchesExponentialBaseline) {
  const CrossbarModel model(Dims::square(6),
                            {TrafficClass::poisson("p", 4.0)});
  const double analytic_blocking =
      core::BruteForceSolver(model).solve().per_class[0].blocking;
  fabric::CrossbarFabric f(6, 6);
  Simulator sim(model, f, quick_config(321));
  sim.set_service_distribution(0, GetParam()());
  const auto result = sim.run();
  EXPECT_NEAR(result.per_class[0].call_congestion.mean, analytic_blocking,
              3.0 * result.per_class[0].call_congestion.half_width + 1.5e-2);
  EXPECT_NEAR(result.per_class[0].time_congestion.mean, analytic_blocking,
              3.0 * result.per_class[0].time_congestion.half_width + 1.5e-2);
}

std::string service_case_name(
    const ::testing::TestParamInfo<ServiceFactoryFn>& info) {
  static constexpr const char* kNames[] = {
      "deterministic", "erlang4", "hyperexp", "uniform", "lognormal"};
  return kNames[info.index];
}

INSTANTIATE_TEST_SUITE_P(
    ServiceShapes, InsensitivityTest,
    ::testing::Values([] { return dist::make_deterministic(1.0); },
                      [] { return dist::make_erlang(4, 1.0); },
                      [] { return dist::make_hyperexponential(1.0, 4.0); },
                      [] { return dist::make_uniform(1.0); },
                      [] { return dist::make_lognormal(1.0, 2.0); }),
    service_case_name);

TEST(Simulator, NullServiceDistributionRejected) {
  const CrossbarModel model(Dims::square(2), {TrafficClass::poisson("p", 0.5)});
  fabric::CrossbarFabric f(2, 2);
  Simulator sim(model, f, quick_config());
  EXPECT_THROW(sim.set_service_distribution(0, nullptr),
               std::invalid_argument);
}

TEST(Simulator, BernoulliSourceExhaustionHandled) {
  // Population of 4 on a 4x4 switch: the arrival intensity hits zero when
  // all four sources are busy, and the process must pause (not crash).
  const CrossbarModel model(Dims::square(4),
                            {TrafficClass::bursty("sm", 2.0, -0.5)});
  fabric::CrossbarFabric f(4, 4);
  const auto result = Simulator(model, f, quick_config()).run();
  EXPECT_GT(result.per_class[0].offered, 0u);
  // Mean concurrency can never exceed the source population.
  EXPECT_LE(result.per_class[0].concurrency.mean, 4.0);
  // Analytic cross-check.
  const auto analytic = core::BruteForceSolver(model).solve();
  EXPECT_NEAR(result.per_class[0].concurrency.mean,
              analytic.per_class[0].concurrency,
              3.0 * result.per_class[0].concurrency.half_width + 0.05);
}

TEST(Simulator, UtilizationConsistentWithConcurrency) {
  const CrossbarModel model(Dims::square(4),
                            {TrafficClass::poisson("p", 1.0, 2)});
  fabric::CrossbarFabric f(4, 4);
  const auto result = Simulator(model, f, quick_config()).run();
  // utilization = a * E / cap
  EXPECT_NEAR(result.utilization.mean,
              2.0 * result.per_class[0].concurrency.mean / 4.0, 1e-9);
}

TEST(Simulator, HeavyLoadSaturates) {
  const CrossbarModel model(Dims::square(2),
                            {TrafficClass::poisson("hot", 100.0)});
  fabric::CrossbarFabric f(2, 2);
  const auto result = Simulator(model, f, quick_config()).run();
  EXPECT_GT(result.per_class[0].call_congestion.mean, 0.8);
  EXPECT_GT(result.utilization.mean, 0.9);
}

}  // namespace
}  // namespace xbar::sim
