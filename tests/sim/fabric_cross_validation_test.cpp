// Discrete-event cross-validation of the two new analytical fabric models.
// Each analytical solver and its structural fabric describe the same
// stochastic process, so simulated congestion must land inside the
// replication confidence intervals around the analytical answer.

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "core/priority.hpp"
#include "core/solver.hpp"
#include "sim/replication.hpp"

namespace xbar::sim {
namespace {

using core::CrossbarModel;
using core::Dims;
using core::FabricModel;
using core::TrafficClass;

ReplicationConfig study(std::size_t reps = 6) {
  ReplicationConfig cfg;
  cfg.replications = reps;
  cfg.sim.warmup_time = 200.0;
  cfg.sim.measurement_time = 5000.0;
  cfg.sim.num_batches = 10;
  cfg.sim.seed = 11;
  return cfg;
}

TEST(FabricCrossValidation, SpeedupSimMatchesTheScaledProductForm) {
  // Loads high enough that blocking is resolvable by simulation.
  const CrossbarModel model(Dims::square(4),
                            {TrafficClass::poisson("p", 1.5),
                             TrafficClass::bursty("pk", 0.8, 0.3)});
  const core::SolveResult analytic = core::solve_result(
      model, core::SolverSpec::parse("algorithm1/long-double@speedup-2"));
  const ReplicationResult sim =
      run_fabric_replications(model, FabricModel::speedup_s(2), study());
  ASSERT_EQ(sim.per_class.size(), analytic.measures.per_class.size());
  for (std::size_t r = 0; r < sim.per_class.size(); ++r) {
    EXPECT_NEAR(sim.per_class[r].time_congestion.mean,
                analytic.measures.per_class[r].blocking,
                3.0 * sim.per_class[r].time_congestion.half_width + 1e-2)
        << r;
    EXPECT_NEAR(sim.per_class[r].concurrency.mean,
                analytic.measures.per_class[r].concurrency,
                3.0 * sim.per_class[r].concurrency.half_width + 0.1)
        << r;
  }
}

TEST(FabricCrossValidation, SpeedupRaisesCarriedTrafficOverTheCrossbar) {
  // Same physical switch and offered process per plane: the speedup fabric
  // carries roughly s times the connections of the plain crossbar.
  const CrossbarModel model(Dims::square(4),
                            {TrafficClass::poisson("p", 2.0)});
  const auto plain =
      run_fabric_replications(model, FabricModel::crossbar(), study(4));
  const auto sped =
      run_fabric_replications(model, FabricModel::speedup_s(2), study(4));
  EXPECT_GT(sped.per_class[0].concurrency.mean,
            1.5 * plain.per_class[0].concurrency.mean);
}

TEST(FabricCrossValidation, PrioritySimMatchesTheCtmcCallCongestion) {
  // The simulator counts blocked arrivals (call congestion) and its probe
  // does not model the arbiter gate, so the CTMC's call_congestion is the
  // comparable quantity on both sides.
  const CrossbarModel model(Dims::square(4),
                            {TrafficClass::poisson("hi", 1.2),
                             TrafficClass::bursty("lo", 0.8, 0.3)});
  const core::PriorityCtmcSolver ctmc(model);
  const ReplicationResult sim =
      run_fabric_replications(model, FabricModel::priority(), study());
  ASSERT_EQ(sim.per_class.size(), model.num_classes());
  for (std::size_t r = 0; r < sim.per_class.size(); ++r) {
    EXPECT_NEAR(sim.per_class[r].call_congestion.mean,
                ctmc.call_congestion(r),
                3.0 * sim.per_class[r].call_congestion.half_width + 1e-2)
        << r;
    const double analytic_concurrency =
        ctmc.solve().per_class[r].concurrency;
    EXPECT_NEAR(sim.per_class[r].concurrency.mean, analytic_concurrency,
                3.0 * sim.per_class[r].concurrency.half_width + 0.1)
        << r;
  }
}

TEST(FabricCrossValidation, PriorityArbiterShiftsBlockingDownTheRanks) {
  // Two identical classes: under the arbiter, the declaration-order rank
  // makes the second class measurably worse off than the first.
  const CrossbarModel model(Dims::square(3),
                            {TrafficClass::poisson("hi", 1.5),
                             TrafficClass::poisson("lo", 1.5)});
  const auto result =
      run_fabric_replications(model, FabricModel::priority(), study());
  EXPECT_GT(result.per_class[1].call_congestion.mean,
            result.per_class[0].call_congestion.mean);
}

}  // namespace
}  // namespace xbar::sim
