#include "sim/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "dist/rng.hpp"

namespace xbar::sim {
namespace {

TEST(StudentT, KnownQuantiles) {
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_975(10), 2.228, 1e-3);
  EXPECT_NEAR(student_t_975(30), 2.042, 1e-3);
  EXPECT_NEAR(student_t_975(1000), 1.96, 1e-6);
}

TEST(StudentT, MonotoneDecreasingInDf) {
  double prev = student_t_975(1);
  for (std::size_t df = 2; df <= 40; ++df) {
    const double t = student_t_975(df);
    EXPECT_LE(t, prev) << df;
    prev = t;
  }
}

TEST(BatchMeans, EmptyEstimate) {
  BatchMeans bm;
  const Estimate e = bm.estimate();
  EXPECT_EQ(e.samples, 0u);
  EXPECT_EQ(e.mean, 0.0);
  EXPECT_EQ(e.half_width, 0.0);
}

TEST(BatchMeans, SingleBatchHasNoInterval) {
  BatchMeans bm;
  bm.add(4.2);
  const Estimate e = bm.estimate();
  EXPECT_DOUBLE_EQ(e.mean, 4.2);
  EXPECT_EQ(e.half_width, 0.0);
  EXPECT_EQ(e.samples, 1u);
}

TEST(BatchMeans, HandComputedInterval) {
  BatchMeans bm;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    bm.add(v);
  }
  const Estimate e = bm.estimate();
  EXPECT_DOUBLE_EQ(e.mean, 3.0);
  // s^2 = 2.5, sem = sqrt(0.5), t(4) = 2.776
  EXPECT_NEAR(e.half_width, 2.776 * std::sqrt(0.5), 1e-3);
  EXPECT_NEAR(e.lower(), 3.0 - e.half_width, 1e-12);
  EXPECT_NEAR(e.upper(), 3.0 + e.half_width, 1e-12);
}

TEST(BatchMeans, IdenticalBatchesGiveZeroWidth) {
  BatchMeans bm;
  for (int i = 0; i < 10; ++i) {
    bm.add(7.0);
  }
  const Estimate e = bm.estimate();
  EXPECT_DOUBLE_EQ(e.mean, 7.0);
  EXPECT_DOUBLE_EQ(e.half_width, 0.0);
}

TEST(Estimate, ContainsChecksInterval) {
  const Estimate e{.mean = 10.0, .half_width = 2.0, .samples = 5};
  EXPECT_TRUE(e.contains(10.0));
  EXPECT_TRUE(e.contains(8.0));
  EXPECT_TRUE(e.contains(12.0));
  EXPECT_FALSE(e.contains(7.9));
  EXPECT_FALSE(e.contains(12.1));
}

TEST(BatchMeans, CoverageOnGaussianBatches) {
  // 95% CI should contain the true mean ~95% of the time; with 200 trials
  // allow a generous band (>= 85%).
  dist::Xoshiro256 rng(123);
  int covered = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    BatchMeans bm;
    for (int b = 0; b < 12; ++b) {
      // Sum of uniforms approximates a normal with mean 6.
      double s = 0.0;
      for (int i = 0; i < 12; ++i) {
        s += rng.uniform01();
      }
      bm.add(s);
    }
    if (bm.estimate().contains(6.0)) {
      ++covered;
    }
  }
  EXPECT_GE(covered, kTrials * 85 / 100);
  EXPECT_LE(covered, kTrials);
}

TEST(BatchMeans, Lag1AutocorrelationOnKnownSeries) {
  // Alternating series has strong negative lag-1 correlation.
  BatchMeans alt;
  for (int i = 0; i < 20; ++i) {
    alt.add(i % 2 == 0 ? 1.0 : -1.0);
  }
  EXPECT_LT(alt.lag1_autocorrelation(), -0.8);
  EXPECT_TRUE(alt.batches_look_correlated());

  // Monotone ramp has strong positive correlation.
  BatchMeans ramp;
  for (int i = 0; i < 20; ++i) {
    ramp.add(static_cast<double>(i));
  }
  EXPECT_GT(ramp.lag1_autocorrelation(), 0.6);
  EXPECT_TRUE(ramp.batches_look_correlated());
}

TEST(BatchMeans, IndependentBatchesPassTheDiagnostic) {
  dist::Xoshiro256 rng(77);
  int flagged = 0;
  for (int trial = 0; trial < 50; ++trial) {
    BatchMeans bm;
    for (int b = 0; b < 30; ++b) {
      bm.add(rng.uniform01());
    }
    flagged += bm.batches_look_correlated() ? 1 : 0;
  }
  // ~5% false-positive rate expected; allow generous slack.
  EXPECT_LE(flagged, 10);
}

TEST(BatchMeans, AutocorrelationEdgeCases) {
  BatchMeans few;
  few.add(1.0);
  few.add(2.0);
  EXPECT_EQ(few.lag1_autocorrelation(), 0.0);
  EXPECT_FALSE(few.batches_look_correlated());
  BatchMeans constant;
  for (int i = 0; i < 10; ++i) {
    constant.add(3.0);
  }
  EXPECT_EQ(constant.lag1_autocorrelation(), 0.0);
}

TEST(BatchMeans, BatchesAccessor) {
  BatchMeans bm;
  bm.add(1.5);
  bm.add(2.5);
  EXPECT_EQ(bm.count(), 2u);
  EXPECT_EQ(bm.batches(), (std::vector<double>{1.5, 2.5}));
}

}  // namespace
}  // namespace xbar::sim
