#include "sim/event_queue.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace xbar::sim {
namespace {

TEST(EventQueue, EmptyBehaviour) {
  EventQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.peek_time().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.schedule(3.0, 3);
  q.schedule(1.0, 1);
  q.schedule(2.0, 2);
  std::vector<int> order;
  while (const auto e = q.pop()) {
    order.push_back(e->second);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue<std::string> q;
  q.schedule(5.0, "first");
  q.schedule(5.0, "second");
  q.schedule(5.0, "third");
  EXPECT_EQ(q.pop()->second, "first");
  EXPECT_EQ(q.pop()->second, "second");
  EXPECT_EQ(q.pop()->second, "third");
}

TEST(EventQueue, PeekDoesNotConsume) {
  EventQueue<int> q;
  q.schedule(2.5, 42);
  EXPECT_EQ(q.peek_time(), 2.5);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop()->second, 42);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue<int> q;
  const auto a = q.schedule(1.0, 1);
  q.schedule(2.0, 2);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop()->second, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue<int> q;
  const auto a = q.schedule(1.0, 1);
  q.schedule(2.0, 2);
  q.cancel(a);
  q.cancel(a);  // no-op
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop()->second, 2);
}

TEST(EventQueue, CancelAfterPopIsHarmless) {
  EventQueue<int> q;
  const auto a = q.schedule(1.0, 1);
  EXPECT_EQ(q.pop()->second, 1);
  q.cancel(a);
  q.schedule(2.0, 2);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop()->second, 2);
}

TEST(EventQueue, CancelledHeadSkippedByPeek) {
  EventQueue<int> q;
  const auto a = q.schedule(1.0, 1);
  q.schedule(2.0, 2);
  q.cancel(a);
  EXPECT_EQ(q.peek_time(), 2.0);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue<std::size_t> q;
  std::vector<EventId> ids;
  for (std::size_t i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i % 97), i));
  }
  // Cancel every third event.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    q.cancel(ids[i]);
    ++cancelled;
  }
  EXPECT_EQ(q.size(), 1000 - cancelled);
  double prev = -1.0;
  std::size_t popped = 0;
  while (const auto e = q.pop()) {
    EXPECT_GE(e->first, prev);
    EXPECT_NE(e->second % 3, 0u);  // cancelled ones never surface
    prev = e->first;
    ++popped;
  }
  EXPECT_EQ(popped, 1000 - cancelled);
}

TEST(EventQueue, CancelAfterPopKeepsBacklogEmpty) {
  // A stale handle (already fired) must not become a tombstone: before the
  // pending-set fix, the id sat in the cancelled set forever and corrupted
  // the live count.
  EventQueue<int> q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i), i));
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.pop().has_value());
  }
  for (const auto id : ids) {
    q.cancel(id);
  }
  EXPECT_EQ(q.cancelled_backlog(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ChurnKeepsMemoryBounded) {
  // Timer-churn workload: every scheduled event is cancelled before it can
  // fire, for many rounds.  Compaction must keep the tombstone set bounded
  // by the live population (plus the small compaction floor) instead of
  // growing with the total cancellation count.
  EventQueue<std::size_t> q;
  constexpr std::size_t kLive = 8;
  std::vector<EventId> ring;
  double t = 0.0;
  for (std::size_t round = 0; round < 10000; ++round) {
    ring.push_back(q.schedule(t + 100.0, round));
    if (ring.size() > kLive) {
      q.cancel(ring.front());
      ring.erase(ring.begin());
    }
    t += 0.001;
    EXPECT_LE(q.cancelled_backlog(), q.size() + 16);
  }
  EXPECT_EQ(q.size(), kLive);
  // The survivors still pop in schedule order.
  std::size_t expect = 10000 - kLive;
  while (const auto e = q.pop()) {
    EXPECT_EQ(e->second, expect++);
  }
  EXPECT_EQ(expect, 10000u);
}

TEST(EventQueue, MovableOnlyPayload) {
  EventQueue<std::unique_ptr<int>> q;
  q.schedule(1.0, std::make_unique<int>(7));
  auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e->second, 7);
}

}  // namespace
}  // namespace xbar::sim
