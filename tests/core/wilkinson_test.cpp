#include "core/wilkinson.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/erlang.hpp"
#include "core/error.hpp"
#include "core/knapsack.hpp"

namespace xbar::core {
namespace {

TEST(OverflowMoments, ZeroLoadIsZero) {
  const auto m = overflow_moments(0.0, 5);
  EXPECT_EQ(m.mean, 0.0);
  EXPECT_EQ(m.variance, 0.0);
}

TEST(OverflowMoments, MeanIsCarriedThroughErlangB) {
  const double a = 8.0;
  const unsigned c = 6;
  const auto m = overflow_moments(a, c);
  EXPECT_NEAR(m.mean, a * erlang_b(a, c), 1e-12);
}

TEST(OverflowMoments, OverflowTrafficIsPeaky) {
  // The foundational fact of ERT: overflow of Poisson traffic has Z > 1.
  for (const double a : {2.0, 5.0, 10.0}) {
    for (const unsigned c : {2u, 5u, 10u}) {
      const auto m = overflow_moments(a, c);
      EXPECT_GT(m.peakedness(), 1.0) << a << " " << c;
    }
  }
}

TEST(OverflowMoments, NoTrunksPassesEverything) {
  // c = 0: overflow is the stream itself, Poisson (Z = 1).
  const auto m = overflow_moments(4.0, 0);
  EXPECT_NEAR(m.mean, 4.0, 1e-12);
  EXPECT_NEAR(m.peakedness(), 1.0, 1e-12);
}

TEST(EquivalentRandomFit, RoundTripsOverflowMoments) {
  // Fit (A*, c*) to a real overflow stream's (M, Z) and check that the
  // fitted source reproduces the moments (Rapp is a ~1% approximation).
  const double a = 10.0;
  const unsigned c = 8;
  const auto target = overflow_moments(a, c);
  const auto eq = fit_equivalent_random(target.mean, target.peakedness());
  EXPECT_NEAR(eq.load, a, 0.1 * a);
  EXPECT_NEAR(eq.trunks, static_cast<double>(c), 1.0);
}

TEST(EquivalentRandomFit, RejectsSmoothTraffic) {
  EXPECT_THROW((void)fit_equivalent_random(2.0, 0.8), xbar::Error);
  EXPECT_THROW((void)fit_equivalent_random(0.0, 2.0), xbar::Error);
}

TEST(EquivalentRandomFit, RejectsNonFiniteInputsWithDomainKind) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const auto& [mean, z] : {std::pair{nan, 2.0}, std::pair{inf, 2.0},
                                std::pair{2.0, nan}, std::pair{2.0, inf}}) {
    try {
      (void)fit_equivalent_random(mean, z);
      FAIL() << "expected xbar::Error for mean=" << mean << " z=" << z;
    } catch (const xbar::Error& e) {
      EXPECT_EQ(e.kind(), xbar::ErrorKind::kDomain);
    }
  }
}

TEST(WilkinsonBlocking, RejectsBadInputsWithDomainKind) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  try {
    (void)wilkinson_blocking(6.0, 0.5, 4);
    FAIL() << "expected xbar::Error for Z < 1";
  } catch (const xbar::Error& e) {
    EXPECT_EQ(e.kind(), xbar::ErrorKind::kDomain);
  }
  EXPECT_THROW((void)wilkinson_blocking(nan, 2.0, 4), xbar::Error);
  EXPECT_THROW((void)wilkinson_blocking(-1.0, 2.0, 4), xbar::Error);
}

TEST(WilkinsonBlocking, ZeroMeanBlocksNothing) {
  EXPECT_EQ(wilkinson_blocking(0.0, 2.0, 4), 0.0);
}

TEST(OverflowMoments, RejectsBadLoadWithDomainKind) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)overflow_moments(-1.0, 4), xbar::Error);
  EXPECT_THROW((void)overflow_moments(inf, 4), xbar::Error);
}

TEST(WilkinsonBlocking, PoissonCaseIsErlangB) {
  for (const unsigned c : {4u, 10u, 30u}) {
    EXPECT_NEAR(wilkinson_blocking(6.0, 1.0, c), erlang_b(6.0, c), 1e-12);
  }
}

TEST(WilkinsonBlocking, SelfConsistentOnRealOverflowStreams) {
  // Gold-standard ERT check: take an actual overflow stream (A on c1) and
  // ask for its blocking on c2 secondary trunks.  Exact answer:
  // m(c1 + c2)/m(c1).  ERT re-fits (A*, c*) from moments and should land
  // within a few percent.
  const double a = 12.0;
  for (const unsigned c1 : {6u, 10u}) {
    for (const unsigned c2 : {4u, 8u, 16u}) {
      const auto m1 = overflow_moments(a, c1);
      const auto m2 = overflow_moments(a, c1 + c2);
      const double exact = m2.mean / m1.mean;
      const double ert =
          wilkinson_blocking(m1.mean, m1.peakedness(), c2);
      EXPECT_NEAR(ert, exact, 0.08 * exact + 1e-4) << c1 << " " << c2;
    }
  }
}

TEST(WilkinsonBlocking, PeakyBlocksMoreThanPoissonAtEqualMean) {
  for (const unsigned c : {8u, 16u}) {
    EXPECT_GT(wilkinson_blocking(6.0, 2.0, c),
              wilkinson_blocking(6.0, 1.0, c))
        << c;
  }
}

TEST(WilkinsonBlocking, BoundsExactBppKnapsackFromAbove) {
  // ERT vs Delbrouck on the same (M, Z).  ERT models the stream as an
  // Erlang *overflow* process, which is burstier in its higher moments
  // than a BPP stream with the same mean and peakedness — so ERT must land
  // above the exact BPP call congestion (which itself exceeds the time
  // congestion for peaky traffic), within a factor ~2.5 for Z <= 3.
  for (const double z : {1.5, 2.0, 3.0}) {
    for (const unsigned c : {8u, 16u}) {
      const double mean = 0.5 * c;
      const double beta = 1.0 - 1.0 / z;
      const double alpha = mean * (1.0 - beta);
      const auto exact = solve_knapsack(
          c, std::vector<KnapsackClass>{{1, alpha, beta, 1.0}});
      const double ert = wilkinson_blocking(mean, z, c);
      EXPECT_GT(exact.call_congestion[0], exact.time_congestion[0])
          << "z=" << z << " c=" << c;
      EXPECT_GT(ert, exact.call_congestion[0]) << "z=" << z << " c=" << c;
      EXPECT_LT(ert, 2.5 * exact.call_congestion[0])
          << "z=" << z << " c=" << c;
    }
  }
}

TEST(WilkinsonBlocking, CappedAtOne) {
  EXPECT_LE(wilkinson_blocking(100.0, 5.0, 2), 1.0);
}

}  // namespace
}  // namespace xbar::core
