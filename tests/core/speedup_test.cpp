// Speedup-s model: the scaled-model equivalence that makes the fabric a
// plain product-form solve, and the Cogill–Lall stability/backlog bound.

#include "core/speedup.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/model.hpp"
#include "core/solver.hpp"

namespace xbar::core {
namespace {

CrossbarModel two_class_model(unsigned n) {
  return CrossbarModel(Dims::square(n),
                       {TrafficClass::poisson("p", 0.02),
                        TrafficClass::bursty("b", 0.03, 0.01, 2)});
}

TEST(SpeedupModel, ScaledModelMultipliesBothSidesAndKeepsTheClasses) {
  const CrossbarModel model(Dims{4, 6},
                            {TrafficClass::poisson("p", 0.05)});
  const CrossbarModel scaled = speedup_scaled_model(model, 3);
  EXPECT_EQ(scaled.dims().n1, 12u);
  EXPECT_EQ(scaled.dims().n2, 18u);
  ASSERT_EQ(scaled.num_classes(), model.num_classes());
  // Aggregate (tilde) traffic is preserved; only the per-tuple
  // normalization changes with the output count.
  EXPECT_EQ(scaled.classes()[0].alpha_tilde, model.classes()[0].alpha_tilde);
  EXPECT_EQ(scaled.classes()[0].mu, model.classes()[0].mu);
}

TEST(SpeedupModel, SpeedupOneIsRejected) {
  const CrossbarModel model = two_class_model(4);
  try {
    (void)speedup_scaled_model(model, 1);
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kConfig);
  }
}

TEST(SpeedupModel, SolveEqualsThePlainSolveOfTheScaledModel) {
  // The whole design: `X@speedup-s` is byte-identical to solving the scaled
  // model with `X` — same grids, same backend arithmetic, same measures.
  const CrossbarModel model = two_class_model(6);
  const SolveResult via_fabric =
      solve_result(model, SolverSpec::parse("algorithm1/scaled@speedup-2"));
  const SolveResult via_scaled = solve_result(
      speedup_scaled_model(model, 2), SolverSpec::parse("algorithm1/scaled"));
  ASSERT_EQ(via_fabric.measures.per_class.size(),
            via_scaled.measures.per_class.size());
  for (std::size_t r = 0; r < via_fabric.measures.per_class.size(); ++r) {
    EXPECT_EQ(via_fabric.measures.per_class[r].blocking,
              via_scaled.measures.per_class[r].blocking)
        << r;
    EXPECT_EQ(via_fabric.measures.per_class[r].concurrency,
              via_scaled.measures.per_class[r].concurrency)
        << r;
  }
  EXPECT_EQ(via_fabric.measures.revenue, via_scaled.measures.revenue);
  // Diagnostics report the grid actually solved (the virtual dims) and the
  // fabric that asked for it.
  EXPECT_EQ(via_fabric.diagnostics.grid.n1, 12u);
  EXPECT_EQ(via_fabric.diagnostics.evaluated_at.n1, 12u);
  EXPECT_EQ(via_fabric.diagnostics.fabric, FabricModel::speedup_s(2));
  EXPECT_EQ(via_scaled.diagnostics.fabric, FabricModel::crossbar());
}

TEST(SpeedupModel, BruteForceAgreesThroughTheFabricSpec) {
  const CrossbarModel model(Dims::square(2),
                            {TrafficClass::bursty("b", 0.2, 0.1)});
  const SolveResult brute =
      solve_result(model, SolverSpec::parse("brute@speedup-2"));
  const SolveResult alg1 =
      solve_result(model, SolverSpec::parse("algorithm1/long-double@speedup-2"));
  EXPECT_NEAR(brute.measures.per_class[0].blocking,
              alg1.measures.per_class[0].blocking, 1e-10);
  EXPECT_NEAR(brute.measures.utilization, alg1.measures.utilization, 1e-10);
}

TEST(CogillLallBound, StabilityThresholdIsHalfTheSpeedup) {
  // rho = sum a_r rho~_r / cap = (0.02 + 2 * 0.03 * ...) small here, so
  // every s >= 1 is stable; push the load up to cross s/2 instead.
  const CrossbarModel light = two_class_model(8);
  const SpeedupBound stable = cogill_lall_bound(light, 2);
  EXPECT_TRUE(stable.stable);
  EXPECT_GT(stable.load, 0.0);
  EXPECT_LT(stable.load, 1.0);
  EXPECT_TRUE(std::isfinite(stable.mean_backlog));
  EXPECT_TRUE(std::isfinite(stable.mean_delay));

  // Aggregate load 4.8 over cap 8 => normalized load 0.6: above 1/2
  // (unstable at s = 1), below 2/2 (stable at s = 2).
  const CrossbarModel heavy(Dims::square(8),
                            {TrafficClass::poisson("p", 4.8)});
  EXPECT_FALSE(cogill_lall_bound(heavy, 1).stable);
  EXPECT_TRUE(std::isinf(cogill_lall_bound(heavy, 1).mean_backlog));
  EXPECT_TRUE(cogill_lall_bound(heavy, 2).stable);
}

TEST(CogillLallBound, BacklogShrinksAsTheSpeedupGrows) {
  const CrossbarModel model(Dims::square(8),
                            {TrafficClass::poisson("p", 3.2)});
  double previous = cogill_lall_bound(model, 1).mean_backlog;
  for (unsigned s = 2; s <= 4; ++s) {
    const SpeedupBound bound = cogill_lall_bound(model, s);
    EXPECT_TRUE(bound.stable) << s;
    EXPECT_LT(bound.mean_backlog, previous) << s;
    previous = bound.mean_backlog;
  }
}

TEST(CogillLallBound, PeakednessReflectsTheTrafficMix) {
  // Poisson-only traffic has z = 1; adding a Pascal (bursty) class pushes
  // the load-weighted peakedness above 1 and the backlog bound with it.
  const CrossbarModel poisson(Dims::square(8),
                              {TrafficClass::poisson("p", 0.2)});
  EXPECT_NEAR(cogill_lall_bound(poisson, 2).peakedness, 1.0, 1e-12);

  const CrossbarModel bursty(Dims::square(8),
                             {TrafficClass::bursty("b", 0.2, 0.5)});
  EXPECT_GT(cogill_lall_bound(bursty, 2).peakedness, 1.0);
}

}  // namespace
}  // namespace xbar::core
