// Table 2 reproduction, two layers deep:
//
//  1. PAPER values: at small N the paper's printed digits are exactly
//     reproducible (they match our four independent solvers to all printed
//     digits); at larger N the paper's rows carry arithmetic noise — its own
//     W and blocking columns become mutually inconsistent by N = 256 — so
//     the comparison loosens with N (tolerances annotated below, quantified
//     in EXPERIMENTS.md).
//  2. GOLDEN values: full-precision regression anchors computed by this
//     library (cross-validated brute-force == Algorithm 1 == Algorithm 2 ==
//     series), protecting every future change at 1e-9.

#include <cmath>

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "core/revenue.hpp"
#include "workload/scenario.hpp"

namespace xbar::core {
namespace {

struct Row {
  unsigned n;
  double blocking;
  double revenue;
  double d_w_d_rho1;
  double d_w_d_x2;
};

struct Golden {
  workload::Table2Set set;
  std::vector<Row> rows;
};

// Full-precision values from this library (see DESIGN.md for the
// cross-validation argument).
const std::vector<Golden>& golden() {
  static const std::vector<Golden> g = {
      {{"set1", 0.0012, 0.0012, 0.0012},
       {{1, 0.0023942537909, 0.00119724660814, 0.996411366113, 0},
        {2, 0.00358637250105, 0.00239163198858, 3.9785110565,
         -2.61738551324e-06},
        {4, 0.00418403640678, 0.00478039590517, 15.8997839767,
         -7.26804690642e-05},
        {8, 0.0044907773949, 0.00955785126064, 63.5701469853,
         -0.000936403682584},
        {16, 0.00466139907991, 0.0191124447723, 254.218263323,
         -0.00940458093015},
        {32, 0.00478269137443, 0.0382203081256, 1016.71189627,
         -0.0863390625108},
        {64, 0.00492051199517, 0.0764303564823, 4066.21185552,
         -0.785056721805},
        {128, 0.00516775217983, 0.152824210931, 16260.6798345,
         -7.62125502026},
        {256, 0.00578228189985, 0.305467442286, 65002.5216246,
         -90.9951652263}}},
      {{"set2", 0.0012, 0.0012, 0.0036},
       {{1, 0.0023942537909, 0.00119724660814, 0.996411366113, 0},
        {2, 0.00358780047521, 0.00239162884772, 3.97850536736,
         -2.61737801123e-06},
        {4, 0.00419367699884, 0.00478035221143, 15.8996306328,
         -7.29653984854e-05},
        {8, 0.00452181826378, 0.00955756753634, 63.5681742807,
         -0.000955155256881},
        {16, 0.00474054664017, 0.0191109931096, 254.198156616,
         -0.00995765927651},
        {32, 0.00497164050194, 0.0382133667282, 1016.51998464,
         -0.099175449748},
        {64, 0.00539158641205, 0.0763957209787, 4064.29913747,
         -1.08532315808},
        {128, 0.00663106971752, 0.152608968771, 16236.9459694,
         -17.1883294528},
        {256, 0.019328911403, 0.301483196802, 64131.1822179,
         -1686.52671909}}},
      {{"set3", 0.0012, 0.0036, 0.0012},
       {{1, 0.00477707006369, 0.00119462579618, 0.994034010951, 0},
        {2, 0.00714499034918, 0.00238356730666, 3.96433175165,
         -7.78599028488e-06},
        {4, 0.00833160286105, 0.00476144014596, 15.8337434576,
         -0.000215394452116},
        {8, 0.00894774578371, 0.00951697679895, 63.2864226609,
         -0.00276868878038},
        {16, 0.00930657981553, 0.019027116929, 253.035763409,
         -0.0277673215742},
        {32, 0.00959204169178, 0.0380434965188, 1011.81556212,
         -0.254616184531},
        {64, 0.00996202030041, 0.0760595370978, 4045.68428039,
         -2.31136824249},
        {128, 0.0106707617054, 0.152014554149, 16171.0744854,
         -22.3629301415},
        {256, 0.0124566309585, 0.303503347345, 64568.0476735,
         -264.420790448}}}};
  return g;
}

// The paper's printed rows (blocking column "B_r(N)" is 1 - B_r; the
// dW/d(beta2/mu2) column is noise-dominated — see EXPERIMENTS.md — and is
// checked only for sign at large N).
struct PaperRow {
  unsigned n;
  double d_w_d_rho1;
  double blocking;
  double revenue;
};

const std::vector<std::vector<PaperRow>>& paper_rows() {
  static const std::vector<std::vector<PaperRow>> rows = {
      {{1, 0.99, 0.00239425, 0.00119725},
       {2, 3.97, 0.00358566, 0.00239163},
       {4, 15.89, 0.00418083, 0.00478041},
       {8, 63.57, 0.0044820, 0.00955794},
       {16, 254.22, 0.00464093, 0.0191128},
       {32, 1016.76, 0.00473733, 0.0382221},
       {64, 4066.62, 0.0048195, 0.0764381},
       {128, 16264.50, 0.00492849, 0.152861},
       {256, 65045.30, 0.00511868, 0.305671}},
      {{1, 0.99, 0.00239425, 0.00119725},
       {2, 3.97, 0.00358566, 0.00239163},
       {4, 15.89, 0.00418403, 0.0047804},
       {8, 63.56, 0.00449504, 0.00955782},
       {16, 254.21, 0.00467581, 0.0191122},
       {32, 1016.68, 0.00481708, 0.0382193},
       {64, 4065.93, 0.00498953, 0.0764266},
       {128, 16258.80, 0.00527912, 0.152817},
       {256, 64998.30, 0.00582948, 0.305646}},
      {{1, 0.99, 0.00477707, 0.00119463},
       {2, 3.96, 0.00714287, 0.00238357},
       {4, 15.83, 0.0083221, 0.00476149},
       {8, 63.28, 0.0089218, 0.00951723},
       {16, 253.05, 0.00924611, 0.0190283},
       {32, 1011.95, 0.00945823, 0.0380486},
       {64, 4046.89, 0.0096644, 0.0760824},
       {128, 16182.50, 0.0099675, 0.152123},
       {256, 64693.50, 0.010518, 0.304099}}};
  return rows;
}

double rel_err(double got, double want) {
  return std::fabs(got - want) / std::fabs(want);
}

TEST(Table2Regression, GoldenValuesReproduceExactly) {
  for (const auto& gset : golden()) {
    for (const auto& row : gset.rows) {
      const auto model = workload::table2_model(row.n, gset.set);
      const Algorithm1Solver solver(model);
      const auto measures = solver.solve();
      EXPECT_LT(rel_err(measures.per_class[0].blocking, row.blocking), 1e-9)
          << gset.set.label << " N=" << row.n;
      EXPECT_LT(rel_err(measures.revenue, row.revenue), 1e-9)
          << gset.set.label << " N=" << row.n;
      const RevenueAnalyzer analyzer(model);
      EXPECT_LT(rel_err(analyzer.d_revenue_d_rho_exact(0), row.d_w_d_rho1),
                1e-8)
          << gset.set.label << " N=" << row.n;
      if (row.n >= 2) {
        EXPECT_LT(rel_err(analyzer.d_revenue_d_x_exact(1), row.d_w_d_x2),
                  1e-7)
            << gset.set.label << " N=" << row.n;
      }
    }
  }
}

TEST(Table2Regression, PaperSmallNRowsMatchToPrintedDigits) {
  const auto sets = workload::table2_sets();
  for (std::size_t s = 0; s < sets.size(); ++s) {
    const auto& paper = paper_rows()[s];
    // N = 1: every printed digit reproduces.
    {
      const auto measures =
          Algorithm1Solver(workload::table2_model(1, sets[s])).solve();
      EXPECT_LT(rel_err(measures.per_class[0].blocking, paper[0].blocking),
                3e-6)
          << sets[s].label;
      // 5e-6 = half-ulp of the paper's 6 printed significant digits.
      EXPECT_LT(rel_err(measures.revenue, paper[0].revenue), 5e-6)
          << sets[s].label;
    }
    // N = 2: W still reproduces to all printed digits; blocking is within
    // the paper's arithmetic noise (~2e-4 relative).
    {
      const auto measures =
          Algorithm1Solver(workload::table2_model(2, sets[s])).solve();
      EXPECT_LT(rel_err(measures.revenue, paper[1].revenue), 2e-5)
          << sets[s].label;
      EXPECT_LT(rel_err(measures.per_class[0].blocking, paper[1].blocking),
                1e-3)
          << sets[s].label;
    }
  }
}

TEST(Table2Regression, PaperTrendsReproduceAtAllSizes) {
  const auto sets = workload::table2_sets();
  for (std::size_t s = 0; s < sets.size(); ++s) {
    const auto& paper = paper_rows()[s];
    for (const auto& row : paper) {
      const auto model = workload::table2_model(row.n, sets[s]);
      const auto measures = Algorithm1Solver(model).solve();
      // Revenue: within 0.2% through N = 128; the paper's N = 256 rows are
      // internally inconsistent (W vs blocking columns), hence 2%.
      EXPECT_LT(rel_err(measures.revenue, row.revenue),
                row.n <= 128 ? 2e-3 : 2e-2)
          << sets[s].label << " N=" << row.n;
      // Blocking: tight at small N; at large N the paper understates the
      // beta sensitivity by a factor 2-4 (its beta -> 0 extrapolation agrees
      // with ours to 6 digits — see EXPERIMENTS.md), so only the order of
      // magnitude is asserted for the bursty-heavy rows.
      const double tol = row.n <= 16 ? 2e-2 : (row.n <= 128 ? 0.3 : 2.5);
      EXPECT_LT(rel_err(measures.per_class[0].blocking, row.blocking), tol)
          << sets[s].label << " N=" << row.n;
      // dW/drho1: the paper prints only 2 digits at N = 1; 0.5% elsewhere
      // through N = 128.
      const RevenueAnalyzer analyzer(model);
      const double g_tol = row.n == 1 ? 1e-2 : (row.n <= 128 ? 5e-3 : 2e-2);
      EXPECT_LT(rel_err(analyzer.d_revenue_d_rho_exact(0), row.d_w_d_rho1),
                g_tol)
          << sets[s].label << " N=" << row.n;
      // dW/d(beta2/mu2): the paper's forward differences are noise-dominated
      // but consistently negative from N = 4 on — check the sign.
      if (row.n >= 4) {
        EXPECT_LT(analyzer.d_revenue_d_x_exact(1), 0.0)
            << sets[s].label << " N=" << row.n;
      }
    }
  }
}

TEST(Table2Regression, HeavierOrBurstierSetsBlockMoreThanBaseline) {
  // Set 2 raises beta~2 over set 1 and set 3 triples rho~2; both must block
  // more than the baseline at every N >= 2.  (Sets 2 and 3 cross each other
  // around N = 200, so no ordering is asserted between them.)
  const auto sets = workload::table2_sets();
  for (const unsigned n : workload::table2_sizes()) {
    if (n < 2) {
      continue;
    }
    const double b1 = Algorithm1Solver(workload::table2_model(n, sets[0]))
                          .solve()
                          .per_class[0]
                          .blocking;
    const double b2 = Algorithm1Solver(workload::table2_model(n, sets[1]))
                          .solve()
                          .per_class[0]
                          .blocking;
    const double b3 = Algorithm1Solver(workload::table2_model(n, sets[2]))
                          .solve()
                          .per_class[0]
                          .blocking;
    EXPECT_GT(b2, b1) << n;
    EXPECT_GT(b3, b1) << n;
  }
}

}  // namespace
}  // namespace xbar::core
