// The fabric dimension of SolverSpec: round-trips over every
// (algorithm x backend x fabric) combination, the canonical omission of the
// default crossbar, typed rejection of bad fabric tokens, and resolution
// (solver choice, crossover, and validation) per fabric.

#include "core/solver_spec.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/model.hpp"

namespace xbar::core {
namespace {

CrossbarModel tiny_model(unsigned n) {
  return CrossbarModel(Dims::square(n),
                       {TrafficClass::bursty("b", 0.01, 0.005)});
}

const std::vector<std::string>& base_specs() {
  static const std::vector<std::string> kBases = {
      "auto",
      "fast",
      "algorithm1",
      "algorithm1/scaled",
      "algorithm1/double-dynamic",
      "algorithm1/long-double",
      "algorithm1/double-raw",
      "algorithm1/log-domain",
      "algorithm2",
      "brute"};
  return kBases;
}

TEST(FabricSpec, RoundTripsEveryAlgorithmBackendFabricCombination) {
  // The priority fabric only composes with "auto" (it owns its solver), so
  // the full grid is every base spec x {crossbar-implicit, speedup-s} plus
  // the one admissible priority spec.
  for (const std::string& base : base_specs()) {
    for (const char* fabric : {"", "@speedup-2", "@speedup-7", "@speedup-16"}) {
      const std::string text = base + fabric;
      const SolverSpec spec = SolverSpec::parse(text);
      EXPECT_EQ(spec.to_string(), text);
      EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec) << text;
    }
  }
  const SolverSpec prio = SolverSpec::parse("auto@priority");
  EXPECT_EQ(prio.fabric.kind, FabricKind::kPriority);
  EXPECT_EQ(prio.to_string(), "auto@priority");
  EXPECT_EQ(SolverSpec::parse(prio.to_string()), prio);
}

TEST(FabricSpec, ExplicitCrossbarCanonicalizesToTheBareSpec) {
  // "@crossbar" parses but is omitted from the canonical rendering, so
  // every legacy spec string (and every cache key derived from one) is
  // byte-identical to its fabric-qualified spelling.
  for (const std::string& base : base_specs()) {
    const SolverSpec spec = SolverSpec::parse(base + "@crossbar");
    EXPECT_EQ(spec.fabric, FabricModel::crossbar());
    EXPECT_EQ(spec.to_string(), base);
    EXPECT_EQ(spec, SolverSpec::parse(base));
  }
}

TEST(FabricSpec, FabricDefaultsToCrossbar) {
  EXPECT_EQ(SolverSpec{}.fabric, FabricModel::crossbar());
  EXPECT_EQ(SolverSpec::fast().fabric, FabricModel::crossbar());
  EXPECT_EQ(FabricModel{}.to_string(), "crossbar");
}

TEST(FabricSpec, RejectionNamesTheBadFabricToken) {
  // Same shape as the CLI's --sizes errors: the offending token plus the
  // accepted grammar, so a typo is self-diagnosing.
  for (const char* text :
       {"auto@banyan", "auto@", "auto@speedup-", "auto@speedup-x",
        "auto@speedup-0", "auto@speedup-17", "fast@speedup-2x",
        "auto@crossbar2"}) {
    try {
      (void)SolverSpec::parse(text);
      FAIL() << "expected xbar::Error for '" << text << "'";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kConfig) << text;
      const std::string what = e.what();
      EXPECT_NE(what.find("unknown fabric '"), std::string::npos) << what;
      EXPECT_NE(what.find("crossbar|speedup-<s>|priority"), std::string::npos)
          << what;
      // The bad token itself must appear, quoted.
      const std::string token(std::string_view(text).substr(
          std::string_view(text).find('@') + 1));
      EXPECT_NE(what.find("'" + token + "'"), std::string::npos) << what;
    }
  }
}

TEST(FabricSpec, SpeedupOneIsRejectedTowardTheCrossbarSpelling) {
  try {
    (void)SolverSpec::parse("auto@speedup-1");
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kConfig);
    EXPECT_NE(std::string(e.what()).find("use 'crossbar'"), std::string::npos)
        << e.what();
  }
}

TEST(FabricSpec, PriorityRequiresTheAutoSpec) {
  for (const char* text : {"fast@priority", "algorithm1@priority",
                           "algorithm1/scaled@priority", "algorithm2@priority",
                           "brute@priority"}) {
    try {
      (void)SolverSpec::parse(text);
      FAIL() << "expected xbar::Error for '" << text << "'";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kConfig) << text;
      EXPECT_NE(std::string(e.what()).find("auto@priority"), std::string::npos)
          << e.what();
    }
  }
}

TEST(FabricSpec, ResolveCarriesTheFabricThrough) {
  const ResolvedSolver r =
      resolve(SolverSpec::parse("algorithm1/long-double@speedup-3"),
              tiny_model(4));
  EXPECT_EQ(r.fabric, FabricModel::speedup_s(3));
  EXPECT_EQ(r.algorithm, SolverAlgorithm::kAlgorithm1);
  EXPECT_EQ(r.backend, NumericBackend::kLongDouble);
}

TEST(FabricSpec, AutoCrossoverUsesTheScaledCapUnderSpeedup) {
  // auto picks Algorithm 1 for small grids and Algorithm 2 past the
  // crossover; under speedup-s the grid actually solved is s times larger,
  // so the crossover must look at the scaled cap.
  const ResolvedSolver small =
      resolve(SolverSpec::parse("auto@speedup-2"), tiny_model(8));
  EXPECT_EQ(small.algorithm, SolverAlgorithm::kAlgorithm1);

  const ResolvedSolver pushed =
      resolve(SolverSpec::parse("auto@speedup-2"), tiny_model(24));
  EXPECT_EQ(pushed.algorithm, SolverAlgorithm::kAlgorithm2);

  // The same 24x24 model without speedup stays below the crossover.
  const ResolvedSolver plain = resolve(SolverSpec{}, tiny_model(24));
  EXPECT_EQ(plain.algorithm, SolverAlgorithm::kAlgorithm1);
}

TEST(FabricSpec, AutoPriorityResolvesToTheDedicatedCtmcSolver) {
  const ResolvedSolver r =
      resolve(SolverSpec::parse("auto@priority"), tiny_model(4));
  EXPECT_EQ(r.algorithm, SolverAlgorithm::kPriorityCtmc);
  EXPECT_EQ(r.backend, NumericBackend::kDense);
  EXPECT_EQ(r.fabric, FabricModel::priority());
  EXPECT_EQ(std::string(to_string(SolverAlgorithm::kPriorityCtmc)),
            "priority-ctmc");
  EXPECT_EQ(std::string(to_string(NumericBackend::kDense)), "dense");
}

TEST(FabricSpec, PriorityCtmcCannotBeRequestedDirectly) {
  SolverSpec spec;
  spec.algorithm = SolverAlgorithm::kPriorityCtmc;  // bypass parse()
  try {
    (void)resolve(spec, tiny_model(4));
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kConfig);
  }
}

TEST(FabricSpec, ResolveRejectsSpeedupPastThePortCeiling) {
  try {
    (void)resolve(SolverSpec::parse("auto@speedup-16"), tiny_model(8192));
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kConfig);
    EXPECT_NE(std::string(e.what()).find("65536"), std::string::npos)
        << e.what();
  }
}

TEST(FabricSpec, ResolveRejectsAPriorityClassThatCanNeverAdmit) {
  // cap = 2 and two classes of bandwidth 2: class 1 must leave one pair
  // reserved, so u + 2 <= 1 is infeasible.
  const CrossbarModel model(Dims::square(2),
                            {TrafficClass::poisson("p0", 0.1, 2),
                             TrafficClass::poisson("p1", 0.1, 2)});
  try {
    (void)resolve(SolverSpec::parse("auto@priority"), model);
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kModel);
  }
}

TEST(FabricSpec, RegistryCoversEveryFabricKind) {
  bool crossbar = false;
  bool speedup = false;
  bool priority = false;
  for (const FabricInfo& info : fabric_registry()) {
    // Every example token must parse to a valid fabric.
    const FabricModel parsed = FabricModel::parse(info.example);
    crossbar |= parsed.kind == FabricKind::kCrossbar;
    speedup |= parsed.kind == FabricKind::kSpeedup;
    priority |= parsed.kind == FabricKind::kPriority;
    EXPECT_FALSE(info.summary.empty());
  }
  EXPECT_TRUE(crossbar);
  EXPECT_TRUE(speedup);
  EXPECT_TRUE(priority);
}

}  // namespace
}  // namespace xbar::core
