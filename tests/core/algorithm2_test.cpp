#include "core/algorithm2.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "numeric/combinatorics.hpp"

namespace xbar::core {
namespace {

CrossbarModel mixed_model(unsigned n) {
  return CrossbarModel(Dims::square(n),
                       {TrafficClass::poisson("p", 0.4),
                        TrafficClass::bursty("pk", 0.3, 0.15, 2)});
}

TEST(Algorithm2, BoundaryRatiosMatchFactorials) {
  const Algorithm2Solver solver(mixed_model(6));
  // F_1(n1, 0) = Q(n1-1,0)/Q(n1,0) = n1; F_2(0, n2) = n2.
  for (unsigned n1 = 1; n1 <= 6; ++n1) {
    EXPECT_DOUBLE_EQ(solver.f1(Dims{n1, 0}), n1);
  }
  for (unsigned n2 = 1; n2 <= 6; ++n2) {
    EXPECT_DOUBLE_EQ(solver.f2(Dims{0, n2}), n2);
  }
}

TEST(Algorithm2, FRatiosMatchAlgorithm1QGrid) {
  const auto model = mixed_model(8);
  const Algorithm2Solver alg2(model);
  const Algorithm1Solver alg1(model);
  for (unsigned n2 = 0; n2 <= 8; ++n2) {
    for (unsigned n1 = 1; n1 <= 8; ++n1) {
      const double expected =
          std::exp(alg1.log_q(Dims{n1 - 1, n2}) - alg1.log_q(Dims{n1, n2}));
      EXPECT_NEAR(alg2.f1(Dims{n1, n2}), expected, 1e-9 * expected)
          << n1 << "," << n2;
    }
  }
  for (unsigned n2 = 1; n2 <= 8; ++n2) {
    for (unsigned n1 = 0; n1 <= 8; ++n1) {
      const double expected =
          std::exp(alg1.log_q(Dims{n1, n2 - 1}) - alg1.log_q(Dims{n1, n2}));
      EXPECT_NEAR(alg2.f2(Dims{n1, n2}), expected, 1e-9 * expected)
          << n1 << "," << n2;
    }
  }
}

TEST(Algorithm2, FDirectionConsistencyIdentity) {
  // F_1(n) F_2(n - 1_1) == F_2(n) F_1(n - 1_2)  (both equal
  // Q(n - 1_1 - 1_2)/Q(n)) — an internal cross-check the recursion must
  // satisfy without ever having been told to.
  const Algorithm2Solver solver(mixed_model(8));
  for (unsigned n2 = 2; n2 <= 8; ++n2) {
    for (unsigned n1 = 2; n1 <= 8; ++n1) {
      const double left =
          solver.f1(Dims{n1, n2}) * solver.f2(Dims{n1 - 1, n2});
      const double right =
          solver.f2(Dims{n1, n2}) * solver.f1(Dims{n1, n2 - 1});
      EXPECT_NEAR(left, right, 1e-9 * left) << n1 << "," << n2;
    }
  }
}

TEST(Algorithm2, HRatioMatchesDefinition) {
  const auto model = mixed_model(8);
  const Algorithm2Solver alg2(model);
  const Algorithm1Solver alg1(model);
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const unsigned a = model.normalized(r).bandwidth;
    for (unsigned n2 = a; n2 <= 8; ++n2) {
      for (unsigned n1 = a; n1 <= 8; ++n1) {
        const double expected = std::exp(alg1.log_q(Dims{n1 - a, n2 - a}) -
                                         alg1.log_q(Dims{n1, n2}));
        EXPECT_NEAR(alg2.h(r, Dims{n1, n2}), expected, 1e-8 * expected)
            << r << " " << n1 << "," << n2;
      }
    }
  }
}

TEST(Algorithm2, HIsZeroWhereClassCannotFit) {
  const Algorithm2Solver solver(mixed_model(4));
  EXPECT_EQ(solver.h(1, Dims{1, 1}), 0.0);  // class 1 has a = 2
  EXPECT_EQ(solver.h(1, Dims{2, 1}), 0.0);
  EXPECT_GT(solver.h(1, Dims{2, 2}), 0.0);
}

TEST(Algorithm2, StableAtVeryLargeSizesWithoutExtendedPrecision) {
  // Algorithm 2 never forms Q itself, so plain double suffices at N = 512.
  const CrossbarModel model(Dims::square(512),
                            {TrafficClass::poisson("t1", 0.0012),
                             TrafficClass::bursty("t2", 0.0012, 0.0012)});
  const Algorithm2Solver solver(model);
  const auto m = solver.solve();
  EXPECT_GT(m.per_class[0].blocking, 0.0);
  EXPECT_LT(m.per_class[0].blocking, 0.05);
  EXPECT_TRUE(std::isfinite(m.revenue));
}

TEST(Algorithm2, NonBlockingBoundedByOne) {
  const Algorithm2Solver solver(mixed_model(16));
  for (unsigned n = 1; n <= 16; ++n) {
    for (std::size_t r = 0; r < 2; ++r) {
      const double b = solver.non_blocking(r, Dims::square(n));
      EXPECT_GE(b, 0.0);
      EXPECT_LE(b, 1.0 + 1e-12);
    }
  }
}

TEST(Algorithm2, MoveSemantics) {
  Algorithm2Solver a(mixed_model(4));
  const auto measures = a.solve();
  Algorithm2Solver b = std::move(a);
  EXPECT_DOUBLE_EQ(b.solve().revenue, measures.revenue);
}

}  // namespace
}  // namespace xbar::core
