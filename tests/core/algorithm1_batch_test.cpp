// Batched-vs-single equivalence: Algorithm1BatchSolver must reproduce the
// single-scenario solver for every backend.  For the double backends the
// batch runs the lane-interleaved kernel whose per-lane op sequence is the
// single kernel's — results must match BIT FOR BIT.  The remaining backends
// fall back to per-lane single solves inside the batch, so they are
// trivially identical, but the suite pins that contract too.

#include "core/algorithm1_batch.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "core/error.hpp"
#include "core/model.hpp"

namespace xbar::core {
namespace {

// Mixed Poisson/bursty sets across bandwidths a in {1, 2, 4}, with enough
// load variation that lanes rescale at different times.
std::vector<CrossbarModel> mixed_scenarios(unsigned n, std::size_t count) {
  std::vector<CrossbarModel> models;
  for (std::size_t i = 0; i < count; ++i) {
    const double bump = 0.0003 * static_cast<double>(i);
    std::vector<TrafficClass> classes;
    classes.push_back(TrafficClass::poisson("p1", 0.01 + bump, 1));
    classes.push_back(TrafficClass::poisson("p4", 0.002 + bump / 4, 4));
    classes.push_back(TrafficClass::bursty("b2", 0.012 + bump, 0.005, 2));
    classes.push_back(TrafficClass::bursty("b1", 0.02, 0.004 + bump, 1));
    models.emplace_back(Dims::square(n), std::move(classes));
  }
  return models;
}

void expect_bitwise_equal(const Measures& batch, const Measures& single) {
  ASSERT_EQ(batch.per_class.size(), single.per_class.size());
  for (std::size_t r = 0; r < batch.per_class.size(); ++r) {
    EXPECT_EQ(batch.per_class[r].non_blocking, single.per_class[r].non_blocking)
        << "class " << r;
    EXPECT_EQ(batch.per_class[r].blocking, single.per_class[r].blocking)
        << "class " << r;
    EXPECT_EQ(batch.per_class[r].concurrency, single.per_class[r].concurrency)
        << "class " << r;
    EXPECT_EQ(batch.per_class[r].throughput, single.per_class[r].throughput)
        << "class " << r;
  }
  EXPECT_EQ(batch.revenue, single.revenue);
  EXPECT_EQ(batch.total_throughput, single.total_throughput);
  EXPECT_EQ(batch.utilization, single.utilization);
}

void expect_close(const Measures& batch, const Measures& single) {
  ASSERT_EQ(batch.per_class.size(), single.per_class.size());
  for (std::size_t r = 0; r < batch.per_class.size(); ++r) {
    EXPECT_NEAR(batch.per_class[r].blocking, single.per_class[r].blocking,
                1e-12)
        << "class " << r;
    EXPECT_NEAR(batch.per_class[r].concurrency,
                single.per_class[r].concurrency,
                1e-12 * (1.0 + std::fabs(single.per_class[r].concurrency)))
        << "class " << r;
  }
  EXPECT_NEAR(batch.revenue, single.revenue,
              1e-12 * (1.0 + std::fabs(single.revenue)));
}

class BatchBackendTest : public ::testing::TestWithParam<Algorithm1Backend> {};

TEST_P(BatchBackendTest, BatchedMatchesSingle) {
  const auto models = mixed_scenarios(48, 6);
  Algorithm1Options opts;
  opts.backend = GetParam();
  Algorithm1BatchSolver batch(models, opts);
  ASSERT_EQ(batch.batch_size(), models.size());
  const bool bitwise = Algorithm1BatchSolver::lane_backend(opts.backend);
  for (std::size_t s = 0; s < models.size(); ++s) {
    const Algorithm1Solver single(models[s], opts);
    EXPECT_EQ(batch.degenerate(s), single.degenerate()) << "lane " << s;
    EXPECT_EQ(batch.scaling_events(s), single.scaling_events())
        << "lane " << s;
    if (bitwise) {
      EXPECT_TRUE(batch.lane_batched(s)) << "lane " << s;
      expect_bitwise_equal(batch.solve(s), single.solve());
      // Subsystem queries walk other grid cells — pin those too.
      const Dims sub{24, 30};
      expect_bitwise_equal(batch.solve_at(s, sub), single.solve_at(sub));
      EXPECT_EQ(batch.solver(s).log_q(sub), single.log_q(sub));
    } else {
      EXPECT_FALSE(batch.lane_batched(s)) << "lane " << s;
      expect_close(batch.solve(s), single.solve());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BatchBackendTest,
    ::testing::Values(Algorithm1Backend::kScaledFloat,
                      Algorithm1Backend::kDoubleDynamicScaling,
                      Algorithm1Backend::kLongDouble,
                      Algorithm1Backend::kDoubleRaw,
                      Algorithm1Backend::kLogDomain),
    [](const auto& info) {
      switch (info.param) {
        case Algorithm1Backend::kScaledFloat:
          return "scaled";
        case Algorithm1Backend::kDoubleDynamicScaling:
          return "dynamic";
        case Algorithm1Backend::kLongDouble:
          return "long_double";
        case Algorithm1Backend::kDoubleRaw:
          return "raw";
        case Algorithm1Backend::kLogDomain:
          return "log_domain";
      }
      return "unknown";
    });

TEST(Algorithm1BatchTest, LargeGridsRescaleIdentically) {
  // n = 96 drives the dynamic-scaling backend through many rescales; per
  // lane they must fire at exactly the same cells as the single solve.
  const auto models = mixed_scenarios(96, 4);
  Algorithm1Options opts;
  opts.backend = Algorithm1Backend::kDoubleDynamicScaling;
  Algorithm1BatchSolver batch(models, opts);
  for (std::size_t s = 0; s < models.size(); ++s) {
    const Algorithm1Solver single(models[s], opts);
    EXPECT_GT(single.scaling_events(), 0u);
    EXPECT_EQ(batch.scaling_events(s), single.scaling_events());
    expect_bitwise_equal(batch.solve(s), single.solve());
  }
}

TEST(Algorithm1BatchTest, HeterogeneousSkeletonsFallBackAndStillAgree) {
  // Different class structures cannot share a traversal; lanes with a
  // unique skeleton take the single-solve path inside the batch.
  std::vector<CrossbarModel> models;
  models.emplace_back(
      Dims::square(32),
      std::vector<TrafficClass>{TrafficClass::poisson("p", 0.01, 1)});
  models.emplace_back(
      Dims::square(32),
      std::vector<TrafficClass>{TrafficClass::bursty("b", 0.01, 0.002, 2)});
  models.emplace_back(
      Dims::square(32),
      std::vector<TrafficClass>{TrafficClass::poisson("p", 0.02, 1)});
  Algorithm1Options opts;
  opts.backend = Algorithm1Backend::kDoubleDynamicScaling;
  Algorithm1BatchSolver batch(models, opts);
  EXPECT_TRUE(batch.lane_batched(0));
  EXPECT_FALSE(batch.lane_batched(1));  // unique skeleton
  EXPECT_TRUE(batch.lane_batched(2));
  for (std::size_t s = 0; s < models.size(); ++s) {
    const Algorithm1Solver single(models[s], opts);
    expect_bitwise_equal(batch.solve(s), single.solve());
  }
}

TEST(Algorithm1BatchTest, ExtractTransfersTheSolver) {
  const auto models = mixed_scenarios(16, 2);
  Algorithm1Options opts;
  opts.backend = Algorithm1Backend::kDoubleRaw;
  Algorithm1BatchSolver batch(models, opts);
  const double expected = batch.solve(1).revenue;
  std::unique_ptr<Algorithm1Solver> owned = batch.extract(1);
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(owned->solve().revenue, expected);
}

TEST(Algorithm1BatchTest, RejectsEmptyAndMismatchedDims) {
  EXPECT_THROW(Algorithm1BatchSolver(std::vector<CrossbarModel>{}), Error);
  std::vector<CrossbarModel> models;
  models.emplace_back(
      Dims::square(8),
      std::vector<TrafficClass>{TrafficClass::poisson("p", 0.01, 1)});
  models.emplace_back(
      Dims::square(16),
      std::vector<TrafficClass>{TrafficClass::poisson("p", 0.01, 1)});
  EXPECT_THROW(Algorithm1BatchSolver{std::move(models)}, Error);
}

}  // namespace
}  // namespace xbar::core
