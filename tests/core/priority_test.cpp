// Priority-arbitrated CTMC solver.  The load-bearing test is the
// reservation_step = 0 oracle: with no reservation the chain *is* the
// paper's crossbar process, so every measure must match brute force (and
// hence Algorithms 1/2) to solver tolerance.

#include "core/priority.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/error.hpp"
#include "core/model.hpp"
#include "core/solver.hpp"
#include "core/state_space.hpp"

namespace xbar::core {
namespace {

// Loads high enough that blocking is well away from zero, mixing Poisson
// and Pascal classes (the regimes where call and time congestion differ).
CrossbarModel mixed_model(unsigned n) {
  return CrossbarModel(Dims::square(n),
                       {TrafficClass::poisson("p", 1.5),
                        TrafficClass::bursty("b", 1.0, 0.4, 2)});
}

TEST(PriorityCtmc, StepZeroReproducesTheProductFormExactly) {
  const CrossbarModel model = mixed_model(6);
  PriorityOptions options;
  options.reservation_step = 0;  // no reservation: the plain crossbar
  const PriorityCtmcSolver ctmc(model, options);
  const BruteForceSolver oracle(model);
  const Measures lhs = ctmc.solve();
  const Measures rhs = oracle.solve();
  ASSERT_EQ(lhs.per_class.size(), rhs.per_class.size());
  for (std::size_t r = 0; r < lhs.per_class.size(); ++r) {
    EXPECT_NEAR(lhs.per_class[r].blocking, rhs.per_class[r].blocking, 1e-9)
        << r;
    EXPECT_NEAR(lhs.per_class[r].concurrency, rhs.per_class[r].concurrency,
                1e-9)
        << r;
    EXPECT_NEAR(lhs.per_class[r].throughput, rhs.per_class[r].throughput,
                1e-9)
        << r;
    EXPECT_NEAR(ctmc.call_congestion(r), oracle.call_congestion(r), 1e-9)
        << r;
  }
  EXPECT_NEAR(lhs.utilization, rhs.utilization, 1e-9);
  EXPECT_NEAR(lhs.revenue, rhs.revenue, 1e-9);
}

TEST(PriorityCtmc, StateSpaceMatchesTheSharedEnumeration) {
  const CrossbarModel model = mixed_model(5);
  const PriorityCtmcSolver ctmc(model);
  std::vector<unsigned> bandwidths;
  for (const auto& cls : model.normalized_classes()) {
    bandwidths.push_back(cls.bandwidth);
  }
  EXPECT_EQ(ctmc.num_states(),
            count_states(bandwidths, model.dims().cap()));
  EXPECT_GT(ctmc.iterations(), 0u);
}

TEST(PriorityCtmc, ReservationOrdersBlockingByPriority) {
  // Three identical classes: with reservation_step = 1 the arbiter gives
  // class 0 the most headroom, so blocking must be strictly ordered by
  // priority index, and every class must block at least as much as in the
  // unreserved chain... except class 0, which can only gain from the
  // others being throttled.
  const CrossbarModel model(Dims::square(5),
                            {TrafficClass::poisson("p0", 1.2),
                             TrafficClass::poisson("p1", 1.2),
                             TrafficClass::poisson("p2", 1.2)});
  const Measures reserved = PriorityCtmcSolver(model).solve();
  EXPECT_LT(reserved.per_class[0].blocking, reserved.per_class[1].blocking);
  EXPECT_LT(reserved.per_class[1].blocking, reserved.per_class[2].blocking);

  PriorityOptions flat;
  flat.reservation_step = 0;
  const Measures unreserved = PriorityCtmcSolver(model, flat).solve();
  // Identical classes, no reservation: symmetric blocking.
  EXPECT_NEAR(unreserved.per_class[0].blocking,
              unreserved.per_class[2].blocking, 1e-9);
  // The reservation throttles the lowest class hardest and shields the top.
  EXPECT_GT(reserved.per_class[2].blocking, unreserved.per_class[2].blocking);
  EXPECT_LT(reserved.per_class[0].blocking, unreserved.per_class[0].blocking);
}

TEST(PriorityCtmc, ReservationBlockingIsZeroForTheTopPriority) {
  const CrossbarModel model = mixed_model(5);
  const PriorityCtmcSolver ctmc(model);
  EXPECT_EQ(ctmc.reservation_blocking(0), 0.0);
  EXPECT_GT(ctmc.reservation_blocking(1), 0.0);
}

TEST(PriorityCtmc, SolveResultRoutesAutoPriorityToTheCtmc) {
  const CrossbarModel model = mixed_model(4);
  const SolveResult result =
      solve_result(model, SolverSpec::parse("auto@priority"));
  EXPECT_EQ(result.diagnostics.algorithm, SolverAlgorithm::kPriorityCtmc);
  EXPECT_EQ(result.diagnostics.backend, NumericBackend::kDense);
  EXPECT_EQ(result.diagnostics.fabric, FabricModel::priority());
  const Measures direct = PriorityCtmcSolver(model).solve();
  EXPECT_EQ(result.measures.per_class[0].blocking,
            direct.per_class[0].blocking);
  EXPECT_EQ(result.measures.revenue, direct.revenue);
}

TEST(PriorityCtmc, RefusesOversizedStateSpaces) {
  PriorityOptions options;
  options.max_states = 4;  // far below the real count
  try {
    (void)PriorityCtmcSolver(mixed_model(6), options);
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kModel);
  }
}

TEST(PriorityCtmc, RefusesAClassThatCanNeverBeAdmitted) {
  // cap = 3, reservation_step = 2: class 1 needs u + 2 <= 3 - 2, which no
  // state satisfies for bandwidth 2.
  const CrossbarModel model(Dims::square(3),
                            {TrafficClass::poisson("p0", 0.5, 2),
                             TrafficClass::poisson("p1", 0.5, 2)});
  PriorityOptions options;
  options.reservation_step = 2;
  try {
    (void)PriorityCtmcSolver(model, options);
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kModel);
  }
}

}  // namespace
}  // namespace xbar::core
