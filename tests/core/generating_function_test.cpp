#include "core/generating_function.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "numeric/kahan.hpp"

namespace xbar::core {
namespace {

// Closed form vs truncated series: Z(t) = sum_N Q(N) t1^N1 t2^N2.  With a
// generous grid and small t the truncation error is negligible, so this
// cross-validates eq. 5 against the Q recurrence end to end.
void check_series_matches_closed_form(const CrossbarModel& model, double t1,
                                      double t2, double tol) {
  const Algorithm1Solver solver(model);
  num::KahanSum sum;
  for (unsigned n2 = 0; n2 <= model.dims().n2; ++n2) {
    for (unsigned n1 = 0; n1 <= model.dims().n1; ++n1) {
      const double log_term = solver.log_q(Dims{n1, n2}) +
                              n1 * std::log(t1) + n2 * std::log(t2);
      sum.add(std::exp(log_term));
    }
  }
  EXPECT_NEAR(std::log(sum.value()), log_z(model, t1, t2), tol);
}

TEST(GeneratingFunction, ClosedFormMatchesSeriesPoisson) {
  const CrossbarModel m(Dims::square(24), {TrafficClass::poisson("p", 0.5)});
  check_series_matches_closed_form(m, 0.3, 0.4, 1e-10);
}

TEST(GeneratingFunction, ClosedFormMatchesSeriesPascal) {
  const CrossbarModel m(Dims::square(24),
                        {TrafficClass::bursty("pk", 0.5, 0.25)});
  check_series_matches_closed_form(m, 0.25, 0.25, 1e-10);
}

TEST(GeneratingFunction, ClosedFormMatchesSeriesBernoulli) {
  const CrossbarModel m(Dims::square(24),
                        {TrafficClass::bursty("sm", 0.6, -0.01)});
  check_series_matches_closed_form(m, 0.3, 0.3, 1e-10);
}

TEST(GeneratingFunction, ClosedFormMatchesSeriesMultiRateMix) {
  const CrossbarModel m(Dims::square(24),
                        {TrafficClass::poisson("p", 0.4, 2),
                         TrafficClass::bursty("pk", 0.3, 0.1)});
  check_series_matches_closed_form(m, 0.2, 0.35, 1e-10);
}

TEST(GeneratingFunction, LogZAtOriginCountsOnlyEmptyState) {
  // Z(0,0) = Q(0,0) = 1 -> log 1 = 0... but the exp(t1+t2) factor means
  // log_z(0,0) = 0 exactly.
  const CrossbarModel m(Dims::square(4), {TrafficClass::poisson("p", 0.7)});
  EXPECT_DOUBLE_EQ(log_z(m, 0.0, 0.0), 0.0);
}

TEST(GeneratingFunction, PascalRadiusOfConvergenceEnforced) {
  // beta/mu * (t1 t2)^a >= 1 must throw.
  const CrossbarModel m(Dims::square(2),
                        {TrafficClass::bursty("pk", 1.0, 1.8)});
  // per-tuple x = 1.8/2 = 0.9; t1 t2 = 4 -> y = 3.6 >= 1.
  EXPECT_THROW((void)log_z(m, 2.0, 2.0), std::domain_error);
  EXPECT_NO_THROW((void)log_z(m, 0.5, 0.5));
}

TEST(GeneratingFunction, SeriesGridSelfConsistentUnderClassOrder) {
  // Convolution order must not matter.
  const CrossbarModel ab(Dims::square(6),
                         {TrafficClass::poisson("a", 0.5),
                          TrafficClass::bursty("b", 0.4, 0.2, 2)});
  const CrossbarModel ba(Dims::square(6),
                         {TrafficClass::bursty("b", 0.4, 0.2, 2),
                          TrafficClass::poisson("a", 0.5)});
  const auto ga = series_log_q_grid(ab);
  const auto gb = series_log_q_grid(ba);
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_NEAR(ga[i], gb[i], 1e-10 * (std::fabs(ga[i]) + 1.0));
  }
}

TEST(GeneratingFunction, SeriesLogQZeroDims) {
  const CrossbarModel m(Dims{1, 1}, {TrafficClass::poisson("p", 0.3)});
  const auto grid = series_log_q_grid(m);
  EXPECT_NEAR(grid[0], 0.0, 1e-14);  // Q(0,0) = 1
}

}  // namespace
}  // namespace xbar::core
