#include "core/state_space.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace xbar::core {
namespace {

TEST(StateSpace, SingleClassUnitBandwidth) {
  const std::vector<unsigned> a = {1};
  // k in {0..cap}
  EXPECT_EQ(count_states(a, 5), 6u);
  EXPECT_EQ(count_states(a, 0), 1u);
}

TEST(StateSpace, SingleClassWideBandwidth) {
  const std::vector<unsigned> a = {3};
  // k*3 <= 7 -> k in {0,1,2}
  EXPECT_EQ(count_states(a, 7), 3u);
}

TEST(StateSpace, TwoClassesTriangleCount) {
  const std::vector<unsigned> a = {1, 1};
  // k1 + k2 <= 3: C(5,2) = 10 lattice points
  EXPECT_EQ(count_states(a, 3), 10u);
}

TEST(StateSpace, MixedBandwidths) {
  const std::vector<unsigned> a = {1, 2};
  // k1 + 2 k2 <= 4: k2=0: 5, k2=1: 3, k2=2: 1 -> 9
  EXPECT_EQ(count_states(a, 4), 9u);
}

TEST(StateSpace, VisitorReceivesCorrectUsage) {
  const std::vector<unsigned> a = {2, 3};
  for_each_state(a, 9, [&](std::span<const unsigned> k, unsigned usage) {
    EXPECT_EQ(usage, k[0] * 2 + k[1] * 3);
    EXPECT_LE(usage, 9u);
  });
}

TEST(StateSpace, VisitsEveryFeasibleStateExactlyOnce) {
  const std::vector<unsigned> a = {1, 2};
  std::vector<std::vector<unsigned>> seen;
  for_each_state(a, 3, [&](std::span<const unsigned> k, unsigned) {
    seen.emplace_back(k.begin(), k.end());
  });
  // Enumerate independently.
  std::vector<std::vector<unsigned>> expected;
  for (unsigned k1 = 0; k1 <= 3; ++k1) {
    for (unsigned k2 = 0; k1 + 2 * k2 <= 3; ++k2) {
      expected.push_back({k1, k2});
    }
  }
  ASSERT_EQ(seen.size(), expected.size());
  for (const auto& s : expected) {
    EXPECT_NE(std::find(seen.begin(), seen.end(), s), seen.end());
  }
}

TEST(StateSpace, LexicographicOrder) {
  const std::vector<unsigned> a = {1, 1};
  std::vector<std::vector<unsigned>> seen;
  for_each_state(a, 1, [&](std::span<const unsigned> k, unsigned) {
    seen.emplace_back(k.begin(), k.end());
  });
  const std::vector<std::vector<unsigned>> expected = {
      {0, 0}, {0, 1}, {1, 0}};
  EXPECT_EQ(seen, expected);
}

TEST(StateSpace, ThreeClassesCountMatchesDirectEnumeration) {
  const std::vector<unsigned> a = {1, 2, 3};
  std::uint64_t direct = 0;
  for (unsigned k1 = 0; k1 <= 12; ++k1) {
    for (unsigned k2 = 0; k1 + 2 * k2 <= 12; ++k2) {
      for (unsigned k3 = 0; k1 + 2 * k2 + 3 * k3 <= 12; ++k3) {
        ++direct;
      }
    }
  }
  EXPECT_EQ(count_states(a, 12), direct);
}

TEST(StateSpace, EmptyClassListHasOneState) {
  const std::vector<unsigned> a = {};
  EXPECT_EQ(count_states(a, 10), 1u);
}

}  // namespace
}  // namespace xbar::core
