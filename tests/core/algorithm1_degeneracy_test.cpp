// Regression tests for the degeneracy scan.
//
// The scan used to inspect only the Q grid.  A Bernoulli-class cancellation
// (x = beta/mu < 0 makes the V-recursion an alternating sum) can leave a V
// plane negative while every Q entry is still positive and finite — Q only
// *adds* coeff * V, so a small negative V passes unnoticed — and the class
// measures then silently evaluate log of a negative number.  The scan now
// covers the V planes; these tests pin that.
//
// Reaching the cancellation through the public constructor requires a model
// the validator rejects (smooth-traffic admissibility forces K >= N, which
// keeps the V series first-term dominated; a randomized search over 10^5
// admissible models produced no negative V), so the regression is pinned
// white-box: fill healthy grids with the real kernel, poison one V entry
// with the tiny negative value cancellation would leave, and assert the
// scan flags what a Q-only scan misses.

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "core/algorithm1_internal.hpp"
#include "core/model.hpp"

namespace xbar::core {
namespace {

CrossbarModel bernoulli_model(unsigned n) {
  std::vector<TrafficClass> classes;
  classes.push_back(TrafficClass::bursty("b", 2.0 * static_cast<double>(n),
                                         -1.0, 1, 0.5));
  classes.push_back(TrafficClass::poisson("p", 0.1 * n, 1));
  return CrossbarModel(Dims::square(n), std::move(classes));
}

template <typename G>
bool q_only_scan(const G& g) {
  if constexpr (std::is_same_v<G, alg1::DynGrids>) {
    for (const double qv : g.q) {
      if (!(qv > 0.0) || !std::isfinite(qv)) {
        return true;
      }
    }
  } else {
    using Ops = alg1::RealOps<typename G::real_type>;
    for (const auto& qv : g.q) {
      if (!Ops::positive_finite(qv)) {
        return true;
      }
    }
  }
  return false;
}

TEST(DegeneracyScanTest, NegativeVPlaneEntryIsFlaggedThoughQIsHealthy) {
  const CrossbarModel model = bernoulli_model(12);
  const auto part = alg1::partition_classes(model);
  alg1::Grids<double> g = alg1::build_grid<double>(model, part);
  ASSERT_FALSE(q_only_scan(g));
  ASSERT_FALSE(alg1::scan_degenerate(alg1::GridStore{std::move(g)}));

  // Rebuild and poison one interior V cell with the tiny negative residue a
  // catastrophic cancellation leaves: Q stays untouched (healthy), so the
  // old Q-only scan reports a clean grid — the regression.
  alg1::Grids<double> bad = alg1::build_grid<double>(model, part);
  bad.v[bad.v.size() / 2] = -1e-300;
  EXPECT_FALSE(q_only_scan(bad));
  EXPECT_TRUE(alg1::scan_degenerate(alg1::GridStore{std::move(bad)}));
}

TEST(DegeneracyScanTest, NonFiniteVPlaneEntryIsFlagged) {
  const CrossbarModel model = bernoulli_model(10);
  const auto part = alg1::partition_classes(model);
  alg1::Grids<double> g = alg1::build_grid<double>(model, part);
  g.v[g.v.size() - 1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(alg1::scan_degenerate(alg1::GridStore{std::move(g)}));
}

TEST(DegeneracyScanTest, DynamicScalingVPlanesAreScannedToo) {
  const CrossbarModel model = bernoulli_model(12);
  const auto part = alg1::partition_classes(model);
  Algorithm1Options opts;
  unsigned events = 0;
  alg1::DynGrids g =
      alg1::build_grid_dynamic_scaling(model, opts, part, events);
  ASSERT_FALSE(alg1::scan_degenerate(alg1::GridStore{std::move(g)}));

  unsigned events2 = 0;
  alg1::DynGrids bad =
      alg1::build_grid_dynamic_scaling(model, opts, part, events2);
  bad.v[bad.v.size() / 3] = -4.2e-290;
  EXPECT_FALSE(q_only_scan(bad));
  EXPECT_TRUE(alg1::scan_degenerate(alg1::GridStore{std::move(bad)}));
}

TEST(DegeneracyScanTest, ScaledFloatNegativeVIsFlagged) {
  const CrossbarModel model = bernoulli_model(8);
  const auto part = alg1::partition_classes(model);
  alg1::Grids<num::ScaledFloat> g =
      alg1::build_grid<num::ScaledFloat>(model, part);
  g.v[g.v.size() / 2] = num::ScaledFloat{-1e-12};
  EXPECT_FALSE(q_only_scan(g));
  EXPECT_TRUE(alg1::scan_degenerate(alg1::GridStore{std::move(g)}));
}

// Zero V entries are the normal "subsystem too small for this class" state
// and must never be flagged; likewise a hard alternating Bernoulli load
// (x close to -1) that still resolves positively.
TEST(DegeneracyScanTest, HealthyAlternatingBernoulliIsNotFlagged) {
  for (unsigned n : {8u, 16u, 32u}) {
    std::vector<TrafficClass> classes;
    // mu = 1/n makes x = beta/mu = -0.98: a maximally alternating V series.
    classes.push_back(TrafficClass::bursty(
        "b", static_cast<double>(n) * 0.98 * 1.02, -0.98, 1,
        1.0 / static_cast<double>(n)));
    const CrossbarModel model(Dims::square(n), std::move(classes));
    for (const Algorithm1Backend backend :
         {Algorithm1Backend::kScaledFloat, Algorithm1Backend::kDoubleRaw,
          Algorithm1Backend::kDoubleDynamicScaling}) {
      Algorithm1Options opts;
      opts.backend = backend;
      const Algorithm1Solver solver(model, opts);
      EXPECT_FALSE(solver.degenerate())
          << "n=" << n << " backend=" << static_cast<int>(backend);
    }
  }
}

}  // namespace
}  // namespace xbar::core
