// Property tests on the model's qualitative behaviour — the claims the
// paper's figures make, checked as invariants over parameter sweeps.

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/measures.hpp"
#include "core/solver.hpp"

namespace xbar::core {
namespace {

double blocking(unsigned n, double alpha_tilde, double beta_tilde,
                unsigned a = 1) {
  const CrossbarModel m(Dims::square(n),
                        {TrafficClass::bursty("c", alpha_tilde, beta_tilde, a)});
  return solve(m).per_class[0].blocking;
}

TEST(ModelProperties, BlockingIncreasesWithLoad) {
  for (const unsigned n : {2u, 8u, 32u}) {
    double prev = -1.0;
    for (double alpha = 0.001; alpha < 3.0; alpha *= 3.0) {
      const double b = blocking(n, alpha, 0.0);
      EXPECT_GT(b, prev) << "n=" << n << " alpha=" << alpha;
      prev = b;
    }
  }
}

TEST(ModelProperties, BlockingIncreasesWithPeakedness) {
  // Figure 2's claim: peaky (Pascal) traffic blocks more at equal alpha.
  for (const unsigned n : {4u, 16u, 64u}) {
    double prev = -1.0;
    for (const double beta : {0.0, 0.0006, 0.0012, 0.0024}) {
      const double b = blocking(n, 0.0024, beta);
      EXPECT_GT(b, prev) << "n=" << n << " beta=" << beta;
      prev = b;
    }
  }
}

TEST(ModelProperties, PoissonIsUpperBoundForSmoothTraffic) {
  // Figure 1's claim: the degenerate (Poisson) case bounds Bernoulli
  // blocking from above.
  for (const unsigned n : {4u, 16u, 64u, 128u}) {
    const double poisson = blocking(n, 0.0024, 0.0);
    for (const double beta : {-1e-6, -2e-6, -4e-6}) {
      EXPECT_LT(blocking(n, 0.0024, beta), poisson)
          << "n=" << n << " beta=" << beta;
    }
  }
}

TEST(ModelProperties, SmoothRegularPeakyOrderingAtEqualMeanLoad) {
  const unsigned n = 16;
  const double smooth = blocking(n, 0.01, -1e-4);
  const double regular = blocking(n, 0.01, 0.0);
  const double peaky = blocking(n, 0.01, 5e-3);
  EXPECT_LT(smooth, regular);
  EXPECT_LT(regular, peaky);
}

TEST(ModelProperties, WiderBandwidthBlocksMoreAtEqualPortLoad) {
  // Figure 4's claim, at the paper's Table 1 loads: the a=2 class sees
  // far higher blocking than the a=1 class carrying the same port load.
  for (const unsigned n : {4u, 8u, 16u, 32u, 64u}) {
    const double tau = 0.0048;
    const double rho1 = tau * 1.0 / (2.0 * n);
    const double rho2 =
        tau * 2.0 / (2.0 * (n * (n - 1.0) / 2.0));
    const double b1 = blocking(n, rho1, 0.0, 1);
    const double b2 = blocking(n, rho2, 0.0, 2);
    EXPECT_GT(b2, b1) << "n=" << n;
  }
}

TEST(ModelProperties, PoissonClassShiftsOperatingPoint) {
  // Figure 3's claim: adding a Poisson class raises blocking for the bursty
  // class (shifts the operating point) at every size.
  for (const unsigned n : {2u, 8u, 32u, 128u}) {
    const CrossbarModel alone(Dims::square(n),
                              {TrafficClass::bursty("b", 0.0012, 0.0012)});
    const CrossbarModel with_poisson(
        Dims::square(n), {TrafficClass::poisson("p", 0.0012),
                          TrafficClass::bursty("b", 0.0012, 0.0012)});
    const double b_alone = solve(alone).per_class[0].blocking;
    const double b_with = solve(with_poisson).per_class[1].blocking;
    EXPECT_GT(b_with, b_alone) << "n=" << n;
  }
}

TEST(ModelProperties, EqualBandwidthClassesSeeEqualBlocking) {
  // B_r depends on the class only through a_r.
  const CrossbarModel m(Dims::square(8),
                        {TrafficClass::poisson("p", 0.7),
                         TrafficClass::bursty("pk", 0.2, 0.1),
                         TrafficClass::bursty("sm", 0.5, -0.05)});
  const auto measures = solve(m);
  EXPECT_NEAR(measures.per_class[0].blocking, measures.per_class[1].blocking,
              1e-12);
  EXPECT_NEAR(measures.per_class[0].blocking, measures.per_class[2].blocking,
              1e-12);
}

TEST(ModelProperties, UtilizationBoundedByOne) {
  for (const double load : {0.1, 1.0, 10.0, 100.0}) {
    const CrossbarModel m(Dims::square(8),
                          {TrafficClass::poisson("p", load)});
    const auto measures = solve(m);
    EXPECT_GE(measures.utilization, 0.0);
    EXPECT_LE(measures.utilization, 1.0);
  }
}

TEST(ModelProperties, UtilizationSaturatesTowardOneUnderOverload) {
  const CrossbarModel m(Dims::square(4),
                        {TrafficClass::poisson("hot", 500.0)});
  EXPECT_GT(solve(m).utilization, 0.95);
}

TEST(ModelProperties, ThroughputEqualsConcurrencyTimesMu) {
  const CrossbarModel m(Dims::square(6),
                        {TrafficClass::poisson("f", 0.5, 1, 2.5)});
  const auto measures = solve(m);
  EXPECT_NEAR(measures.per_class[0].throughput,
              2.5 * measures.per_class[0].concurrency, 1e-12);
}

TEST(ModelProperties, RevenueIsWeightedConcurrency) {
  const CrossbarModel m(
      Dims::square(6),
      {TrafficClass::poisson("a", 0.5, 1, 1.0, 2.0),
       TrafficClass::bursty("b", 0.4, 0.2, 1, 1.0, 0.5)});
  const auto measures = solve(m);
  EXPECT_NEAR(measures.revenue,
              2.0 * measures.per_class[0].concurrency +
                  0.5 * measures.per_class[1].concurrency,
              1e-12);
}

TEST(ModelProperties, BlockingInsensitiveToMuAtFixedRho) {
  // The product form depends on alpha and beta only through rho = alpha/mu
  // and x = beta/mu.
  const CrossbarModel slow(Dims::square(8),
                           {TrafficClass::bursty("s", 0.4, 0.2, 1, 1.0)});
  const CrossbarModel fast(Dims::square(8),
                           {TrafficClass::bursty("f", 2.0, 1.0, 1, 5.0)});
  EXPECT_NEAR(solve(slow).per_class[0].blocking,
              solve(fast).per_class[0].blocking, 1e-12);
}

TEST(ModelProperties, RectangularSwitchSymmetry) {
  // Swapping N1 and N2 leaves single-class measures unchanged when the
  // per-tuple rates are pinned (use a=1 where C(N2,1) normalization makes
  // tilde rates asymmetric, so pin via equal per-tuple alpha).
  const double alpha_tuple = 0.05;
  const CrossbarModel wide(Dims{3, 7},
                           {TrafficClass::bursty("c", alpha_tuple * 7, 0.0)});
  const CrossbarModel tall(Dims{7, 3},
                           {TrafficClass::bursty("c", alpha_tuple * 3, 0.0)});
  EXPECT_NEAR(solve(wide).per_class[0].blocking,
              solve(tall).per_class[0].blocking, 1e-12);
}

TEST(ValidateMeasures, AcceptsHealthySolves) {
  const CrossbarModel m(Dims::square(4),
                        {TrafficClass::poisson("p", 0.5),
                         TrafficClass::bursty("b", 0.3, 0.1)});
  EXPECT_EQ(validate_measures(solve(m)), std::nullopt);
}

TEST(ValidateMeasures, RejectsNonFiniteAndNamesField) {
  const CrossbarModel m(Dims::square(2), {TrafficClass::poisson("p", 0.4)});
  Measures good = solve(m);

  Measures bad = good;
  bad.revenue = std::numeric_limits<double>::quiet_NaN();
  auto verdict = validate_measures(bad);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_NE(verdict->find("revenue"), std::string::npos);

  bad = good;
  bad.per_class[0].blocking = std::numeric_limits<double>::infinity();
  verdict = validate_measures(bad);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_NE(verdict->find("blocking"), std::string::npos);
}

TEST(ValidateMeasures, RejectsOutOfRangeProbabilities) {
  const CrossbarModel m(Dims::square(2), {TrafficClass::poisson("p", 0.4)});
  Measures bad = solve(m);
  bad.per_class[0].non_blocking = 1.5;
  EXPECT_TRUE(validate_measures(bad).has_value());
  bad = solve(m);
  bad.per_class[0].blocking = -0.2;
  EXPECT_TRUE(validate_measures(bad).has_value());
  // Tiny roundoff excursions are tolerated.
  bad = solve(m);
  bad.per_class[0].blocking = -1e-12;
  EXPECT_EQ(validate_measures(bad), std::nullopt);
  bad.per_class[0].non_blocking = 1.0 + 1e-12;
  EXPECT_EQ(validate_measures(bad), std::nullopt);
}

TEST(ValidateMeasures, RejectsNegativeQuantities) {
  const CrossbarModel m(Dims::square(2), {TrafficClass::poisson("p", 0.4)});
  Measures bad = solve(m);
  bad.per_class[0].concurrency = -1.0;
  EXPECT_TRUE(validate_measures(bad).has_value());
  bad = solve(m);
  bad.total_throughput = -0.5;
  auto verdict = validate_measures(bad);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_NE(verdict->find("total throughput"), std::string::npos);
}

TEST(MeasuresOstream, PrintsSummary) {
  const CrossbarModel m(Dims::square(2), {TrafficClass::poisson("p", 0.4)});
  std::ostringstream os;
  os << solve(m);
  EXPECT_NE(os.str().find("revenue"), std::string::npos);
  EXPECT_NE(os.str().find("class0"), std::string::npos);
}

}  // namespace
}  // namespace xbar::core
