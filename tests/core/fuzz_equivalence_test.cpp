// Randomized cross-validation: generate a few dozen random-but-admissible
// models (seeded, reproducible) and require Algorithm 1 and Algorithm 2 to
// agree everywhere — and brute force too whenever the state space is small
// enough.  This catches corner interactions the curated sweep might miss
// (odd bandwidth mixes, near-critical Pascal ratios, tiny Bernoulli
// populations, rectangular switches).

#include <cmath>

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "core/algorithm2.hpp"
#include "core/brute_force.hpp"
#include "core/state_space.hpp"
#include "dist/rng.hpp"

namespace xbar::core {
namespace {

// Build a random admissible model from the given RNG.
CrossbarModel random_model(dist::Xoshiro256& rng) {
  const unsigned n1 = 2 + static_cast<unsigned>(rng.uniform_below(9));
  const unsigned n2 = 2 + static_cast<unsigned>(rng.uniform_below(9));
  const unsigned cap = std::min(n1, n2);
  const auto num_classes = 1 + rng.uniform_below(3);
  std::vector<TrafficClass> classes;
  for (std::uint64_t r = 0; r < num_classes; ++r) {
    const unsigned a =
        1 + static_cast<unsigned>(rng.uniform_below(std::min(cap, 3u)));
    const double mu = 0.25 + 2.0 * rng.uniform01();
    const double rho_tilde = 0.02 + 3.0 * rng.uniform01();
    const double alpha_tilde = rho_tilde * mu;
    const int shape = static_cast<int>(rng.uniform_below(3));
    double beta_tilde = 0.0;
    if (shape == 1) {
      // Pascal: keep the per-tuple ratio beta/mu safely subcritical even
      // for the smallest normalization C(n2, a) >= 1.
      beta_tilde = 0.8 * mu * rng.uniform01();
    } else if (shape == 2) {
      // Bernoulli: population = 2 * max(n1, n2) sources keeps intensity
      // positive across the feasible range.
      beta_tilde = -alpha_tilde / (2.0 * std::max(n1, n2));
    }
    classes.push_back(TrafficClass::bursty("c" + std::to_string(r),
                                           alpha_tilde, beta_tilde, a, mu,
                                           rng.uniform01()));
  }
  return CrossbarModel(Dims{n1, n2}, std::move(classes));
}

TEST(FuzzEquivalence, RandomModelsAgreeAcrossSolvers) {
  dist::Xoshiro256 rng(0xF0CCAC1A);
  for (int trial = 0; trial < 60; ++trial) {
    const CrossbarModel model = random_model(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                 std::to_string(model.dims().n1) + "x" +
                 std::to_string(model.dims().n2) + ", R=" +
                 std::to_string(model.num_classes()));

    const Algorithm1Solver alg1(model);
    const Algorithm2Solver alg2(model);
    ASSERT_FALSE(alg1.degenerate());

    const double lq1 = alg1.log_q(model.dims());
    const double lq2 = alg2.log_q(model.dims());
    EXPECT_NEAR(lq1, lq2, 1e-8 * (std::fabs(lq1) + 1.0));

    const auto m1 = alg1.solve();
    const auto m2 = alg2.solve();
    for (std::size_t r = 0; r < model.num_classes(); ++r) {
      EXPECT_NEAR(m1.per_class[r].blocking, m2.per_class[r].blocking, 1e-8)
          << "class " << r;
      EXPECT_NEAR(m1.per_class[r].concurrency, m2.per_class[r].concurrency,
                  1e-8 * (1.0 + m2.per_class[r].concurrency))
          << "class " << r;
    }
    EXPECT_NEAR(m1.revenue, m2.revenue, 1e-8 * (1.0 + m2.revenue));

    // Brute-force check when affordable.
    std::vector<unsigned> bandwidths;
    for (const auto& c : model.normalized_classes()) {
      bandwidths.push_back(c.bandwidth);
    }
    if (count_states(bandwidths, model.dims().cap()) <= 2000) {
      const auto mb = BruteForceSolver(model).solve();
      for (std::size_t r = 0; r < model.num_classes(); ++r) {
        EXPECT_NEAR(m1.per_class[r].blocking, mb.per_class[r].blocking, 1e-8)
            << "brute class " << r;
        EXPECT_NEAR(m1.per_class[r].concurrency,
                    mb.per_class[r].concurrency,
                    1e-8 * (1.0 + mb.per_class[r].concurrency))
            << "brute class " << r;
      }
    }
  }
}

TEST(FuzzEquivalence, SubsystemQueriesAgreeOnRandomModels) {
  dist::Xoshiro256 rng(0xBEEFCAFE);
  for (int trial = 0; trial < 20; ++trial) {
    const CrossbarModel model = random_model(rng);
    const Algorithm1Solver alg1(model);
    const Algorithm2Solver alg2(model);
    // Probe a random interior subsystem.
    const Dims at{
        1 + static_cast<unsigned>(rng.uniform_below(model.dims().n1)),
        1 + static_cast<unsigned>(rng.uniform_below(model.dims().n2))};
    const auto m1 = alg1.solve_at(at);
    const auto m2 = alg2.solve_at(at);
    for (std::size_t r = 0; r < model.num_classes(); ++r) {
      EXPECT_NEAR(m1.per_class[r].blocking, m2.per_class[r].blocking, 1e-8)
          << trial;
    }
  }
}

}  // namespace
}  // namespace xbar::core
