// Randomized cross-validation: generate a few dozen random-but-admissible
// models (seeded, reproducible) and require Algorithm 1 and Algorithm 2 to
// agree everywhere — and brute force too whenever the state space is small
// enough.  This catches corner interactions the curated sweep might miss
// (odd bandwidth mixes, near-critical Pascal ratios, tiny Bernoulli
// populations, rectangular switches).

#include <cmath>

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "core/algorithm2.hpp"
#include "core/brute_force.hpp"
#include "core/state_space.hpp"
#include "dist/rng.hpp"

namespace xbar::core {
namespace {

// Build a random admissible model from the given RNG.
CrossbarModel random_model(dist::Xoshiro256& rng) {
  const unsigned n1 = 2 + static_cast<unsigned>(rng.uniform_below(9));
  const unsigned n2 = 2 + static_cast<unsigned>(rng.uniform_below(9));
  const unsigned cap = std::min(n1, n2);
  const auto num_classes = 1 + rng.uniform_below(3);
  std::vector<TrafficClass> classes;
  for (std::uint64_t r = 0; r < num_classes; ++r) {
    const unsigned a =
        1 + static_cast<unsigned>(rng.uniform_below(std::min(cap, 3u)));
    const double mu = 0.25 + 2.0 * rng.uniform01();
    const double rho_tilde = 0.02 + 3.0 * rng.uniform01();
    const double alpha_tilde = rho_tilde * mu;
    const int shape = static_cast<int>(rng.uniform_below(3));
    double beta_tilde = 0.0;
    if (shape == 1) {
      // Pascal: keep the per-tuple ratio beta/mu safely subcritical even
      // for the smallest normalization C(n2, a) >= 1.
      beta_tilde = 0.8 * mu * rng.uniform01();
    } else if (shape == 2) {
      // Bernoulli: population = 2 * max(n1, n2) sources keeps intensity
      // positive across the feasible range.
      beta_tilde = -alpha_tilde / (2.0 * std::max(n1, n2));
    }
    classes.push_back(TrafficClass::bursty("c" + std::to_string(r),
                                           alpha_tilde, beta_tilde, a, mu,
                                           rng.uniform01()));
  }
  return CrossbarModel(Dims{n1, n2}, std::move(classes));
}

TEST(FuzzEquivalence, RandomModelsAgreeAcrossSolvers) {
  dist::Xoshiro256 rng(0xF0CCAC1A);
  for (int trial = 0; trial < 60; ++trial) {
    const CrossbarModel model = random_model(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                 std::to_string(model.dims().n1) + "x" +
                 std::to_string(model.dims().n2) + ", R=" +
                 std::to_string(model.num_classes()));

    const Algorithm1Solver alg1(model);
    const Algorithm2Solver alg2(model);
    ASSERT_FALSE(alg1.degenerate());

    const double lq1 = alg1.log_q(model.dims());
    const double lq2 = alg2.log_q(model.dims());
    EXPECT_NEAR(lq1, lq2, 1e-8 * (std::fabs(lq1) + 1.0));

    const auto m1 = alg1.solve();
    const auto m2 = alg2.solve();
    for (std::size_t r = 0; r < model.num_classes(); ++r) {
      EXPECT_NEAR(m1.per_class[r].blocking, m2.per_class[r].blocking, 1e-8)
          << "class " << r;
      EXPECT_NEAR(m1.per_class[r].concurrency, m2.per_class[r].concurrency,
                  1e-8 * (1.0 + m2.per_class[r].concurrency))
          << "class " << r;
    }
    EXPECT_NEAR(m1.revenue, m2.revenue, 1e-8 * (1.0 + m2.revenue));

    // Brute-force check when affordable.
    std::vector<unsigned> bandwidths;
    for (const auto& c : model.normalized_classes()) {
      bandwidths.push_back(c.bandwidth);
    }
    if (count_states(bandwidths, model.dims().cap()) <= 2000) {
      const auto mb = BruteForceSolver(model).solve();
      for (std::size_t r = 0; r < model.num_classes(); ++r) {
        EXPECT_NEAR(m1.per_class[r].blocking, mb.per_class[r].blocking, 1e-8)
            << "brute class " << r;
        EXPECT_NEAR(m1.per_class[r].concurrency,
                    mb.per_class[r].concurrency,
                    1e-8 * (1.0 + mb.per_class[r].concurrency))
            << "brute class " << r;
      }
    }
  }
}

TEST(FuzzEquivalence, AllBackendsAgreeWithBruteForce) {
  // The kernel rewrite (class partition, lazy logs, cached scale
  // adjustments) must leave every numeric backend on the same answers.
  // Brute force is the oracle whenever the state space is affordable;
  // otherwise the default ScaledFloat backend (validated above against
  // Algorithm 2 and brute force) stands in.  Backends whose plain
  // arithmetic degenerates on a draw (possible for kDoubleRaw /
  // kLongDouble) are skipped for that draw — that is exactly what the
  // degenerate() flag is for.
  constexpr Algorithm1Backend kBackends[] = {
      Algorithm1Backend::kScaledFloat,
      Algorithm1Backend::kDoubleDynamicScaling,
      Algorithm1Backend::kLongDouble,
      Algorithm1Backend::kDoubleRaw,
  };
  dist::Xoshiro256 rng(0xBACC0F1A);
  for (int trial = 0; trial < 40; ++trial) {
    const CrossbarModel model = random_model(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                 std::to_string(model.dims().n1) + "x" +
                 std::to_string(model.dims().n2) + ", R=" +
                 std::to_string(model.num_classes()));

    std::vector<unsigned> bandwidths;
    for (const auto& c : model.normalized_classes()) {
      bandwidths.push_back(c.bandwidth);
    }
    const bool affordable =
        count_states(bandwidths, model.dims().cap()) <= 2000;
    const Measures oracle =
        affordable ? BruteForceSolver(model).solve()
                   : Algorithm1Solver(model).solve();

    for (const Algorithm1Backend backend : kBackends) {
      Algorithm1Options options;
      options.backend = backend;
      const Algorithm1Solver solver(model, options);
      if (solver.degenerate()) {
        continue;
      }
      SCOPED_TRACE("backend " +
                   std::to_string(static_cast<int>(backend)));
      const auto m = solver.solve();
      for (std::size_t r = 0; r < model.num_classes(); ++r) {
        EXPECT_NEAR(m.per_class[r].blocking, oracle.per_class[r].blocking,
                    1e-8)
            << "class " << r;
        EXPECT_NEAR(m.per_class[r].concurrency,
                    oracle.per_class[r].concurrency,
                    1e-8 * (1.0 + oracle.per_class[r].concurrency))
            << "class " << r;
      }
      EXPECT_NEAR(m.revenue, oracle.revenue, 1e-8 * (1.0 + oracle.revenue));

      // Subsystem queries must agree too (the dimension-sweep serving path
      // relies on solve_at over a shared grid).
      const Dims at{(model.dims().n1 + 1) / 2, (model.dims().n2 + 1) / 2};
      const auto ms = solver.solve_at(at);
      const auto os = Algorithm1Solver(model).solve_at(at);
      for (std::size_t r = 0; r < model.num_classes(); ++r) {
        EXPECT_NEAR(ms.per_class[r].blocking, os.per_class[r].blocking, 1e-8)
            << "subsystem class " << r;
      }
    }
  }
}

TEST(FuzzEquivalence, SubsystemQueriesAgreeOnRandomModels) {
  dist::Xoshiro256 rng(0xBEEFCAFE);
  for (int trial = 0; trial < 20; ++trial) {
    const CrossbarModel model = random_model(rng);
    const Algorithm1Solver alg1(model);
    const Algorithm2Solver alg2(model);
    // Probe a random interior subsystem.
    const Dims at{
        1 + static_cast<unsigned>(rng.uniform_below(model.dims().n1)),
        1 + static_cast<unsigned>(rng.uniform_below(model.dims().n2))};
    const auto m1 = alg1.solve_at(at);
    const auto m2 = alg2.solve_at(at);
    for (std::size_t r = 0; r < model.num_classes(); ++r) {
      EXPECT_NEAR(m1.per_class[r].blocking, m2.per_class[r].blocking, 1e-8)
          << trial;
    }
  }
}

}  // namespace
}  // namespace xbar::core
