// The brute-force solver is the root of the validation chain, so it gets
// hand-computed ground truth of its own: tiny systems evaluated with pencil
// and paper from the product form (paper eq. 2).

#include "core/brute_force.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/state_space.hpp"
#include "numeric/combinatorics.hpp"

namespace xbar::core {
namespace {

// 1x1 switch, single Poisson class, per-tuple rho (C(1,1)=1 so tilde ==
// per-tuple).  States: k=0, k=1 with weights 1 and rho.
TEST(BruteForce, OneByOnePoissonHandComputed) {
  const double rho = 0.25;
  const CrossbarModel m(Dims::square(1), {TrafficClass::poisson("p", rho)});
  const BruteForceSolver solver(m);
  const auto measures = solver.solve();
  const double pi1 = rho / (1.0 + rho);
  EXPECT_NEAR(measures.per_class[0].concurrency, pi1, 1e-12);
  // B = G(0)/G(1) = 1/(1+rho)
  EXPECT_NEAR(measures.per_class[0].non_blocking, 1.0 / (1.0 + rho), 1e-12);
  EXPECT_NEAR(measures.per_class[0].blocking, pi1, 1e-12);
  EXPECT_NEAR(measures.utilization, pi1, 1e-12);
}

// 2x2 switch, single Poisson class a=1.  G(2) over k=0,1,2:
// Psi(0)=1, Psi(1)=2*2=4, Psi(2)=2*2=4... Psi(k)=P(2,k)^2.
// weights: 1, 4 rho, 4 rho^2/2 = 2 rho^2.
TEST(BruteForce, TwoByTwoPoissonHandComputed) {
  const double rho_tilde = 0.3;
  const double rho = rho_tilde / 2.0;  // C(2,1) = 2
  const CrossbarModel m(Dims::square(2),
                        {TrafficClass::poisson("p", rho_tilde)});
  const BruteForceSolver solver(m);
  const double g2 = 1.0 + 4.0 * rho + 2.0 * rho * rho;
  const double g1 = 1.0 + rho;  // 1x1 subsystem: Psi(1) = 1
  const auto measures = solver.solve();
  EXPECT_NEAR(measures.per_class[0].non_blocking, g1 / g2, 1e-12);
  const double e = (4.0 * rho + 4.0 * rho * rho) / g2;
  EXPECT_NEAR(measures.per_class[0].concurrency, e, 1e-12);
}

// 2x2 switch, one class with a=2: states k=0 (weight 1) and k=1
// (weight Psi = P(2,2)^2 = 4, Phi = alpha/mu), alpha = alpha~/C(2,2).
TEST(BruteForce, WideBandwidthHandComputed) {
  const double alpha_tilde = 0.5;
  const CrossbarModel m(Dims::square(2),
                        {TrafficClass::bursty("w", alpha_tilde, 0.0, 2)});
  const BruteForceSolver solver(m);
  const double rho = alpha_tilde;  // C(2,2) = 1
  const double g = 1.0 + 4.0 * rho;
  const auto measures = solver.solve();
  EXPECT_NEAR(measures.per_class[0].concurrency, 4.0 * rho / g, 1e-12);
  // B = G(N - 2I)/G(N) = G(0)/G(2) = 1/g
  EXPECT_NEAR(measures.per_class[0].non_blocking, 1.0 / g, 1e-12);
  EXPECT_NEAR(measures.per_class[0].port_usage,
              2.0 * measures.per_class[0].concurrency, 1e-12);
}

// Pascal class on 1x1: lambda(0) = alpha (only state 0 -> 1 transition).
TEST(BruteForce, PascalOneByOneHandComputed) {
  const CrossbarModel m(Dims::square(1),
                        {TrafficClass::bursty("b", 0.2, 0.1)});
  const auto measures = BruteForceSolver(m).solve();
  EXPECT_NEAR(measures.per_class[0].concurrency, 0.2 / 1.2, 1e-12);
}

TEST(BruteForce, PiIsNormalized) {
  const CrossbarModel m(
      Dims{3, 4},
      {TrafficClass::poisson("p", 0.4), TrafficClass::bursty("b", 0.3, 0.1, 2)});
  const BruteForceSolver solver(m);
  std::vector<unsigned> bandwidths;
  for (const auto& c : m.normalized_classes()) {
    bandwidths.push_back(c.bandwidth);
  }
  double total = 0.0;
  for_each_state(bandwidths, m.dims().cap(),
                 [&](std::span<const unsigned> k, unsigned) {
                   total += std::exp(solver.log_pi(k));
                 });
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(BruteForce, InfeasibleStateHasZeroProbability) {
  const CrossbarModel m(Dims::square(2), {TrafficClass::poisson("p", 0.4)});
  const BruteForceSolver solver(m);
  const std::vector<unsigned> k = {3};  // 3 > cap = 2
  EXPECT_EQ(solver.log_pi(k), -std::numeric_limits<double>::infinity());
}

// Detailed balance: pi(k) q(k, k+1_r) == pi(k+1_r) q(k+1_r, k) with
// q(k, k+1_r) = P(N1-u, a) P(N2-u, a) lambda_r(k_r), q(k+1_r, k) =
// (k_r+1) mu_r.
TEST(BruteForce, DetailedBalanceHoldsAcrossStateSpace) {
  const CrossbarModel m(
      Dims{4, 5},
      {TrafficClass::poisson("p", 0.4), TrafficClass::bursty("b", 0.5, 0.2, 2)});
  const BruteForceSolver solver(m);
  std::vector<unsigned> bandwidths;
  for (const auto& c : m.normalized_classes()) {
    bandwidths.push_back(c.bandwidth);
  }
  const unsigned cap = m.dims().cap();
  for_each_state(
      bandwidths, cap, [&](std::span<const unsigned> k, unsigned usage) {
        for (std::size_t r = 0; r < bandwidths.size(); ++r) {
          const unsigned a = bandwidths[r];
          if (usage + a > cap) {
            continue;
          }
          std::vector<unsigned> up(k.begin(), k.end());
          ++up[r];
          const NormalizedClass& c = m.normalized(r);
          const double lam = c.intensity(k[r]);
          if (!(lam > 0.0)) {
            continue;
          }
          const double forward =
              std::exp(solver.log_pi(k)) * lam *
              num::falling_factorial(m.dims().n1 - usage, a) *
              num::falling_factorial(m.dims().n2 - usage, a);
          const double backward =
              std::exp(solver.log_pi(up)) * (k[r] + 1) * c.mu;
          EXPECT_NEAR(forward, backward, 1e-12 * (forward + backward));
        }
      });
}

// Call congestion equals 1 - B_r for Poisson classes (PASTA) but exceeds it
// for peaky classes and falls below it for smooth classes.
TEST(BruteForce, CallCongestionVersusTimeCongestion) {
  const CrossbarModel poisson(Dims::square(3),
                              {TrafficClass::poisson("p", 1.2)});
  const BruteForceSolver ps(poisson);
  EXPECT_NEAR(ps.call_congestion(0), ps.solve().per_class[0].blocking, 1e-10);

  const CrossbarModel peaky(Dims::square(3),
                            {TrafficClass::bursty("pk", 1.2, 1.2)});
  const BruteForceSolver ks(peaky);
  EXPECT_GT(ks.call_congestion(0), ks.solve().per_class[0].blocking);

  const CrossbarModel smooth(Dims::square(3),
                             {TrafficClass::bursty("sm", 1.2, -0.3)});
  const BruteForceSolver ss(smooth);
  EXPECT_LT(ss.call_congestion(0), ss.solve().per_class[0].blocking);
}

TEST(BruteForce, LogQAtZeroDimsIsZero) {
  const CrossbarModel m(Dims::square(2), {TrafficClass::poisson("p", 0.4)});
  // Q(0,0) = 1.
  EXPECT_NEAR(BruteForceSolver(m).log_q(Dims{0, 0}), 0.0, 1e-12);
}

}  // namespace
}  // namespace xbar::core
