#include "core/algorithm1.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "numeric/combinatorics.hpp"

namespace xbar::core {
namespace {

CrossbarModel big_model(unsigned n) {
  return CrossbarModel(Dims::square(n),
                       {TrafficClass::poisson("t1", 0.0012),
                        TrafficClass::bursty("t2", 0.0012, 0.0012)});
}

TEST(Algorithm1, QBoundaryRowIsInverseFactorial) {
  const CrossbarModel m(Dims{6, 4}, {TrafficClass::poisson("p", 0.5)});
  const Algorithm1Solver solver(m);
  // Q(n1, 0) = 1/n1!, Q(0, n2) = 1/n2!.
  for (unsigned n1 = 0; n1 <= 6; ++n1) {
    EXPECT_NEAR(solver.log_q(Dims{n1, 0}), -num::log_factorial(n1), 1e-12);
  }
  for (unsigned n2 = 0; n2 <= 4; ++n2) {
    EXPECT_NEAR(solver.log_q(Dims{0, n2}), -num::log_factorial(n2), 1e-12);
  }
}

TEST(Algorithm1, RawDoubleUnderflowsWhereScaledFloatDoesNot) {
  // Q(N) ~ G/(N!^2) ~ 1e-431 at N = 128: below double's 1e-308 floor.
  const auto model = big_model(128);
  const Algorithm1Solver raw(model, {Algorithm1Backend::kDoubleRaw});
  EXPECT_TRUE(raw.degenerate());
  const Algorithm1Solver scaled(model, {Algorithm1Backend::kScaledFloat});
  EXPECT_FALSE(scaled.degenerate());
  EXPECT_TRUE(std::isfinite(scaled.log_q(model.dims())));
}

TEST(Algorithm1, DynamicScalingRescuesDoubleArithmeticAt128) {
  // Raw double dies at N = 128 (previous test); §6 scaling rescues it.
  const auto model = big_model(128);
  const Algorithm1Solver dynamic(model,
                                 {Algorithm1Backend::kDoubleDynamicScaling});
  EXPECT_FALSE(dynamic.degenerate());
  EXPECT_GT(dynamic.scaling_events(), 0u);
  // Paper §6: "the scaling factor does not affect the performance measure
  // results" — verify against the ScaledFloat backend.
  const Algorithm1Solver scaled(model, {Algorithm1Backend::kScaledFloat});
  const auto md = dynamic.solve();
  const auto ms = scaled.solve();
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(md.per_class[r].blocking, ms.per_class[r].blocking, 1e-9);
    EXPECT_NEAR(md.per_class[r].concurrency, ms.per_class[r].concurrency,
                1e-9);
  }
  EXPECT_NEAR(dynamic.log_q(model.dims()), scaled.log_q(model.dims()), 1e-6);
}

TEST(Algorithm1, DynamicScalingHasItsOwnCeiling) {
  // A single Q-grid row at N = 256 spans ~500 decades (the 1/n1! factor),
  // which exceeds what any uniform per-row scale can fit inside binary64.
  // §6 scaling therefore extends plain double from N ~ 110 to N ~ 150 but
  // cannot reach the paper's N = 256 — the reason this library defaults to
  // the per-value ScaledFloat backend (and why the paper recommends
  // Algorithm 2 for large switches).
  const Algorithm1Solver dynamic(big_model(256),
                                 {Algorithm1Backend::kDoubleDynamicScaling});
  EXPECT_TRUE(dynamic.degenerate());
  const Algorithm1Solver scaled(big_model(256),
                                {Algorithm1Backend::kScaledFloat});
  EXPECT_FALSE(scaled.degenerate());
}

TEST(Algorithm1, ScalingEventsAreZeroForOtherBackends) {
  const auto model = big_model(16);
  EXPECT_EQ(Algorithm1Solver(model).scaling_events(), 0u);
}

TEST(Algorithm1, NonBlockingDecreasesWithSubsystemSizeAtFixedTupleRates) {
  // With per-tuple rates held fixed, the offered load grows ~n^2 while
  // capacity grows ~n, so blocking rises (non-blocking falls) with size.
  const auto model = big_model(32);
  const Algorithm1Solver solver(model);
  double prev = 1.0 + 1e-12;
  for (unsigned n = 1; n <= 32; ++n) {
    const double b = solver.non_blocking(0, Dims::square(n));
    EXPECT_GT(b, 0.0);
    EXPECT_LE(b, prev) << n;
    prev = b;
  }
}

TEST(Algorithm1, ClassTooWideForSubsystemIsFullyBlocked) {
  const CrossbarModel m(Dims::square(4),
                        {TrafficClass::poisson("w", 0.5, 2)});
  const Algorithm1Solver solver(m);
  EXPECT_EQ(solver.non_blocking(0, Dims{1, 1}), 0.0);
  const auto measures = solver.solve_at(Dims{1, 1});
  EXPECT_EQ(measures.per_class[0].concurrency, 0.0);
  EXPECT_EQ(measures.per_class[0].blocking, 1.0);
}

TEST(Algorithm1, MoveSemantics) {
  Algorithm1Solver a(big_model(8));
  const double lq = a.log_q(Dims::square(8));
  Algorithm1Solver b = std::move(a);
  EXPECT_DOUBLE_EQ(b.log_q(Dims::square(8)), lq);
  EXPECT_EQ(b.model().dims(), Dims::square(8));
}

TEST(Algorithm1, HugeSystemStaysFinite) {
  // 512x512 with mixed traffic: far beyond double range, still exact.
  const CrossbarModel model(Dims::square(512),
                            {TrafficClass::poisson("p", 0.01),
                             TrafficClass::bursty("b", 0.01, 0.005)});
  const Algorithm1Solver solver(model);
  EXPECT_FALSE(solver.degenerate());
  const auto m = solver.solve();
  EXPECT_GT(m.per_class[0].blocking, 0.0);
  EXPECT_LT(m.per_class[0].blocking, 1.0);
}

}  // namespace
}  // namespace xbar::core
