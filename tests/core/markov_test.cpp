#include "core/markov.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/solver.hpp"

namespace xbar::core {
namespace {

CrossbarModel small_mixed() {
  return CrossbarModel(Dims::square(3),
                       {TrafficClass::poisson("p", 0.6),
                        TrafficClass::bursty("pk", 0.5, 0.25)});
}

TEST(MarkovChain, StateSpaceEnumerationAndLookup) {
  const MarkovChain chain(small_mixed());
  // |Γ| for two unit-bandwidth classes with cap 3: C(5,2) = 10.
  EXPECT_EQ(chain.num_states(), 10u);
  EXPECT_EQ(chain.empty_state(), 0u);
  const std::vector<unsigned> k = {1, 2};
  const auto idx = chain.state_index(k);
  EXPECT_EQ(chain.state(idx)[0], 1u);
  EXPECT_EQ(chain.state(idx)[1], 2u);
  EXPECT_THROW((void)chain.state_index(std::vector<unsigned>{4, 0}),
               std::out_of_range);
}

TEST(MarkovChain, SaturatedStateUsesAllCapacity) {
  const MarkovChain chain(small_mixed());
  const auto k = chain.state(chain.saturated_state());
  EXPECT_EQ(k[0] + k[1], 3u);
}

TEST(MarkovChain, GuardsAgainstStateExplosion) {
  EXPECT_THROW(MarkovChain(small_mixed(), /*max_states=*/5),
               std::invalid_argument);
}

// The fifth independent validation path: power iteration on the explicit
// generator must reproduce the product form.
TEST(MarkovChain, StationaryMatchesProductForm) {
  const auto model = small_mixed();
  const MarkovChain chain(model);
  const BruteForceSolver brute(model);
  const auto pi = chain.stationary();
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    const double expected = std::exp(brute.log_pi(chain.state(s)));
    EXPECT_NEAR(pi[s], expected, 1e-9) << s;
  }
}

TEST(MarkovChain, StationaryMeasuresMatchSolvers) {
  const auto model = CrossbarModel(Dims{4, 5},
                                   {TrafficClass::poisson("p", 0.8),
                                    TrafficClass::bursty("w", 0.5, 0.2, 2)});
  const MarkovChain chain(model);
  const auto pi = chain.stationary();
  const auto measures = solve(model);
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    EXPECT_NEAR(chain.non_blocking_under(pi, r),
                measures.per_class[r].non_blocking, 1e-8)
        << r;
    EXPECT_NEAR(chain.concurrency_under(pi, r),
                measures.per_class[r].concurrency, 1e-8)
        << r;
  }
}

TEST(MarkovChain, TransientAtZeroIsInitialState) {
  const MarkovChain chain(small_mixed());
  const auto p = chain.transient(0.0, chain.empty_state());
  EXPECT_DOUBLE_EQ(p[chain.empty_state()], 1.0);
}

TEST(MarkovChain, TransientIsDistributionAtAllTimes) {
  const MarkovChain chain(small_mixed());
  for (const double t : {0.01, 0.5, 2.0, 10.0}) {
    const auto p = chain.transient(t, chain.empty_state());
    double total = 0.0;
    for (const double v : p) {
      EXPECT_GE(v, -1e-15);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << t;
  }
}

TEST(MarkovChain, TransientConvergesToStationaryFromBothExtremes) {
  const MarkovChain chain(small_mixed());
  const auto pi = chain.stationary();
  for (const std::size_t start :
       {chain.empty_state(), chain.saturated_state()}) {
    const auto p = chain.transient(50.0, start);
    for (std::size_t s = 0; s < pi.size(); ++s) {
      EXPECT_NEAR(p[s], pi[s], 1e-6) << "start " << start << " state " << s;
    }
  }
}

TEST(MarkovChain, ColdStartBlockingRisesTowardSteadyState) {
  // From an empty switch the blocking probe starts at 0 and relaxes upward.
  const auto model = CrossbarModel(Dims::square(4),
                                   {TrafficClass::poisson("p", 2.0)});
  const MarkovChain chain(model);
  const auto pi = chain.stationary();
  const double steady = 1.0 - chain.non_blocking_under(pi, 0);
  double prev = -1.0;
  for (const double t : {0.0, 0.1, 0.3, 1.0, 3.0, 10.0}) {
    const auto p = chain.transient(t, chain.empty_state());
    const double blocking = 1.0 - chain.non_blocking_under(p, 0);
    EXPECT_GE(blocking, prev - 1e-9) << t;
    prev = blocking;
  }
  EXPECT_NEAR(prev, steady, 1e-6);
}

TEST(MarkovChain, SurgeDecaysTowardSteadyState) {
  // From saturation the blocking probe starts at 1 and relaxes downward.
  const auto model = CrossbarModel(Dims::square(4),
                                   {TrafficClass::poisson("p", 2.0)});
  const MarkovChain chain(model);
  const auto p0 = chain.transient(0.0, chain.saturated_state());
  EXPECT_NEAR(1.0 - chain.non_blocking_under(p0, 0), 1.0, 1e-12);
  const auto p_late = chain.transient(20.0, chain.saturated_state());
  const auto pi = chain.stationary();
  EXPECT_NEAR(chain.non_blocking_under(p_late, 0),
              chain.non_blocking_under(pi, 0), 1e-6);
}

TEST(MarkovChain, UniformizationRateBoundsExitRates) {
  const MarkovChain chain(small_mixed());
  EXPECT_GT(chain.uniformization_rate(), 0.0);
}

TEST(MarkovChain, BernoulliClassChainIsWellFormed) {
  // Bernoulli population truncation must not create dangling transitions.
  const auto model = CrossbarModel(Dims::square(4),
                                   {TrafficClass::bursty("sm", 2.0, -0.5)});
  const MarkovChain chain(model);
  const auto pi = chain.stationary();
  const BruteForceSolver brute(model);
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    EXPECT_NEAR(pi[s], std::exp(brute.log_pi(chain.state(s))), 1e-9);
  }
}

}  // namespace
}  // namespace xbar::core
