#include "core/knapsack.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/erlang.hpp"
#include "core/solver.hpp"
#include "numeric/kahan.hpp"

namespace xbar::core {
namespace {

TEST(Knapsack, SingleUnitClassIsErlangB) {
  // One Poisson class with a = 1 on C trunks is exactly M/M/C/C.
  const std::vector<KnapsackClass> classes = {{1, 6.0, 0.0, 1.0}};
  const auto result = solve_knapsack(10, classes);
  EXPECT_NEAR(result.time_congestion[0], erlang_b(6.0, 10), 1e-12);
  // Carried load = A (1 - B).
  EXPECT_NEAR(result.concurrency[0], 6.0 * (1.0 - erlang_b(6.0, 10)),
              1e-10);
}

TEST(Knapsack, OccupancyIsNormalizedDistribution) {
  const std::vector<KnapsackClass> classes = {{1, 3.0, 0.5, 1.0},
                                              {2, 1.0, 0.0, 2.0}};
  const auto result = solve_knapsack(12, classes);
  num::KahanSum total;
  for (const double q : result.occupancy) {
    EXPECT_GE(q, 0.0);
    total.add(q);
  }
  EXPECT_NEAR(total.value(), 1.0, 1e-12);
}

TEST(Knapsack, HandComputedTwoTrunkSystem) {
  // C = 2, one Poisson class a = 1, rho = 1: truncated Poisson.
  const std::vector<KnapsackClass> classes = {{1, 1.0, 0.0, 1.0}};
  const auto result = solve_knapsack(2, classes);
  const double g = 1.0 + 1.0 + 0.5;
  EXPECT_NEAR(result.occupancy[0], 1.0 / g, 1e-12);
  EXPECT_NEAR(result.occupancy[1], 1.0 / g, 1e-12);
  EXPECT_NEAR(result.occupancy[2], 0.5 / g, 1e-12);
  EXPECT_NEAR(result.time_congestion[0], 0.5 / g, 1e-12);
}

TEST(Knapsack, WideClassBlocksMoreThanUnitClass) {
  const std::vector<KnapsackClass> classes = {{1, 2.0, 0.0, 1.0},
                                              {3, 2.0 / 3.0, 0.0, 1.0}};
  const auto result = solve_knapsack(12, classes);
  EXPECT_GT(result.time_congestion[1], result.time_congestion[0]);
}

TEST(Knapsack, PeakyClassRaisesCongestion) {
  const std::vector<KnapsackClass> poisson = {{1, 4.0, 0.0, 1.0}};
  const std::vector<KnapsackClass> peaky = {{1, 4.0, 0.5, 1.0}};
  EXPECT_GT(solve_knapsack(8, peaky).time_congestion[0],
            solve_knapsack(8, poisson).time_congestion[0]);
}

TEST(Knapsack, BppMeanMatchesInfiniteServerWhenUncongested) {
  // Huge capacity: E[k] -> alpha/(mu - beta).
  const std::vector<KnapsackClass> classes = {{1, 2.0, 0.5, 1.0}};
  const auto result = solve_knapsack(200, classes);
  EXPECT_NEAR(result.concurrency[0], 2.0 / (1.0 - 0.5), 1e-6);
  EXPECT_LT(result.time_congestion[0], 1e-10);
}

TEST(Knapsack, RejectsBadParameters) {
  EXPECT_THROW(solve_knapsack(4, std::vector<KnapsackClass>{{0, 1.0, 0.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(solve_knapsack(4, std::vector<KnapsackClass>{{5, 1.0, 0.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      solve_knapsack(4, std::vector<KnapsackClass>{{1, 0.0, 0.0, 1.0}}),
      std::invalid_argument);  // alpha <= 0
  EXPECT_THROW(
      solve_knapsack(4, std::vector<KnapsackClass>{{1, 1.0, -0.5, 1.0}}),
      std::invalid_argument);  // smooth intensity negative within range
}

TEST(KnapsackApproximation, UnderestimatesCrossbarBlocking) {
  // The knapsack keeps the capacity constraint but drops the port-matching
  // thinning, so it must underestimate blocking — at every load level.
  for (const double load : {0.2, 0.5, 1.0, 2.0}) {
    const CrossbarModel model(Dims::square(8),
                              {TrafficClass::poisson("p", load)});
    const double exact = solve(model).per_class[0].blocking;
    const double approx = knapsack_approximation(model).time_congestion[0];
    EXPECT_LT(approx, exact) << load;
    EXPECT_GT(approx, 0.0) << load;
  }
}

TEST(KnapsackApproximation, TightAtHighUtilizationLooseInBetween) {
  // At saturation the capacity constraint dominates and the gap narrows
  // (relatively); the interesting regime is moderate load.
  const CrossbarModel light(Dims::square(8),
                            {TrafficClass::poisson("p", 0.1)});
  const CrossbarModel heavy(Dims::square(8),
                            {TrafficClass::poisson("p", 20.0)});
  const double gap_light =
      solve(light).per_class[0].blocking /
      knapsack_approximation(light).time_congestion[0];
  const double gap_heavy =
      solve(heavy).per_class[0].blocking /
      knapsack_approximation(heavy).time_congestion[0];
  EXPECT_GT(gap_light, gap_heavy);
  EXPECT_LT(gap_heavy, 1.6);
}

TEST(KnapsackApproximation, HandlesRectangularBurstyClasses) {
  // The mapping is anchored at the empty switch: alpha_K equals the
  // crossbar's empty-state total arrival intensity P(N1,a)P(N2,a) alpha.
  const CrossbarModel model(Dims{4, 6},
                            {TrafficClass::bursty("b", 0.6, 0.03, 2)});
  const auto result = knapsack_approximation(model);
  EXPECT_EQ(result.occupancy.size(), model.dims().cap() + 1u);
  EXPECT_GT(result.concurrency[0], 0.0);
}

TEST(Knapsack, SupercriticalPeakyClassStillSolvable) {
  // x >= 1 diverges on an infinite server but the C-trunk truncation keeps
  // the knapsack chain ergodic; verify against direct enumeration of the
  // product form g(j) = sum_{k a = j} prod_l (alpha + beta(l-1))/(l mu).
  const KnapsackClass c{1, 1.0, 2.0, 1.0};  // x = 2
  const unsigned cap = 6;
  const auto result = solve_knapsack(cap, std::vector<KnapsackClass>{c});
  std::vector<double> g(cap + 1, 0.0);
  for (unsigned k = 0; k <= cap; ++k) {
    double phi = 1.0;
    for (unsigned l = 1; l <= k; ++l) {
      phi *= (c.alpha + c.beta * (l - 1.0)) / (l * c.mu);
    }
    g[k] = phi;
  }
  double total = 0.0;
  for (const double v : g) {
    total += v;
  }
  for (unsigned j = 0; j <= cap; ++j) {
    EXPECT_NEAR(result.occupancy[j], g[j] / total, 1e-12) << j;
  }
}

TEST(KnapsackApproximation, StrongBurstinessMapsToSupercriticalKnapsack) {
  // The mapping multiplies beta by the tuple count, so a bursty class the
  // crossbar handles easily maps to a supercritical (x_K >= 1) knapsack
  // class — still solvable thanks to truncation, and still an
  // underestimate of the true crossbar blocking.
  const CrossbarModel model(Dims{4, 6},
                            {TrafficClass::bursty("b", 0.6, 0.3, 2)});
  const auto approx = knapsack_approximation(model);
  const double exact = solve(model).per_class[0].blocking;
  EXPECT_LT(approx.time_congestion[0], exact);
}

TEST(Knapsack, CallCongestionMatchesTimeCongestionForPoisson) {
  // PASTA in one dimension.
  const std::vector<KnapsackClass> classes = {{1, 5.0, 0.0, 1.0},
                                              {2, 1.0, 0.0, 1.0}};
  const auto result = solve_knapsack(10, classes);
  for (std::size_t r = 0; r < classes.size(); ++r) {
    EXPECT_NEAR(result.call_congestion[r], result.time_congestion[r], 1e-12)
        << r;
  }
}

TEST(Knapsack, CallCongestionOrderingByShape) {
  // Peaky arrivals see worse-than-average states; smooth see better.
  const auto peaky = solve_knapsack(
      8, std::vector<KnapsackClass>{{1, 2.0, 0.5, 1.0}});
  EXPECT_GT(peaky.call_congestion[0], peaky.time_congestion[0]);
  const auto smooth = solve_knapsack(
      8, std::vector<KnapsackClass>{{1, 8.0, -1.0, 1.0}});
  EXPECT_LT(smooth.call_congestion[0], smooth.time_congestion[0]);
}

TEST(KnapsackReservation, ZeroReservationsBitIdenticalToPlainSolve) {
  // The reservation-aware recursion with an all-zero reservation vector
  // must reproduce the unreserved solver exactly — same product form, same
  // truncation, no approximation slack allowed.
  const std::vector<KnapsackClass> classes = {{1, 3.0, 0.5, 1.0},
                                              {2, 1.0, 0.0, 2.0},
                                              {3, 0.4, 0.1, 0.7}};
  const auto plain = solve_knapsack(12, classes);
  const auto reserved =
      solve_knapsack(12, classes, std::vector<unsigned>{0, 0, 0});
  for (std::size_t j = 0; j < plain.occupancy.size(); ++j) {
    EXPECT_EQ(plain.occupancy[j], reserved.occupancy[j]) << j;
  }
  for (std::size_t r = 0; r < classes.size(); ++r) {
    EXPECT_EQ(plain.time_congestion[r], reserved.time_congestion[r]) << r;
    EXPECT_EQ(plain.call_congestion[r], reserved.call_congestion[r]) << r;
    EXPECT_EQ(plain.concurrency[r], reserved.concurrency[r]) << r;
  }
  EXPECT_EQ(plain.utilization, reserved.utilization);
}

TEST(KnapsackReservation, ReservationRaisesOwnBlockingProtectsOther) {
  // Trunk reservation (Roberts' 1-D approximation): reserving r trunks
  // against class 0 must raise class 0's congestion and lower class 1's —
  // monotonically in the reservation size.
  const std::vector<KnapsackClass> classes = {{1, 4.0, 0.0, 1.0},
                                              {1, 4.0, 0.0, 1.0}};
  double prev_own = 0.0;
  double prev_other = 1.0;
  for (const unsigned res : {0u, 2u, 4u}) {
    const auto result =
        solve_knapsack(8, classes, std::vector<unsigned>{res, 0});
    EXPECT_GE(result.time_congestion[0], prev_own) << res;
    EXPECT_LE(result.time_congestion[1], prev_other) << res;
    prev_own = result.time_congestion[0];
    prev_other = result.time_congestion[1];
  }
  // A non-trivial reservation strictly separates the two symmetric classes.
  const auto split =
      solve_knapsack(8, classes, std::vector<unsigned>{4, 0});
  EXPECT_GT(split.time_congestion[0], split.time_congestion[1]);
}

TEST(KnapsackReservation, FullReservationBlocksClassCompletely) {
  const std::vector<KnapsackClass> classes = {{1, 2.0, 0.0, 1.0},
                                              {1, 2.0, 0.0, 1.0}};
  const auto result =
      solve_knapsack(6, classes, std::vector<unsigned>{6, 0});
  // Class 0 may never accept (ceiling at 0): congestion 1, carries nothing.
  EXPECT_NEAR(result.time_congestion[0], 1.0, 1e-12);
  EXPECT_NEAR(result.concurrency[0], 0.0, 1e-12);
  // Class 1 then sees a private Erlang system.
  EXPECT_NEAR(result.time_congestion[1], erlang_b(2.0, 6), 1e-10);
}

TEST(KnapsackReservation, RejectsWrongReservationVectorLength) {
  const std::vector<KnapsackClass> classes = {{1, 2.0, 0.0, 1.0}};
  EXPECT_THROW(
      solve_knapsack(4, classes, std::vector<unsigned>{1, 1}),
      std::invalid_argument);
}

TEST(Knapsack, UtilizationBounded) {
  const std::vector<KnapsackClass> classes = {{1, 50.0, 0.0, 1.0}};
  const auto result = solve_knapsack(10, classes);
  EXPECT_GT(result.utilization, 0.9);
  EXPECT_LE(result.utilization, 1.0);
}

}  // namespace
}  // namespace xbar::core
