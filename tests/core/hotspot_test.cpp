#include "core/hotspot.hpp"

#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "fabric/crossbar.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic_pattern.hpp"

namespace xbar::core {
namespace {

TEST(Hotspot, RejectsInvalidParameters) {
  EXPECT_THROW((void)solve_hotspot({.ports = 1}), std::invalid_argument);
  EXPECT_THROW((void)solve_hotspot({.ports = 4, .arrival_rate = 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)solve_hotspot({.ports = 4,
                                    .arrival_rate = 1.0,
                                    .mu = 1.0,
                                    .hot_fraction = 1.5}),
               std::invalid_argument);
}

TEST(Hotspot, ZeroHotFractionReducesToUniformModel) {
  // At h = 0 the (b,k) chain is the uniform single-class model in disguise.
  for (const unsigned n : {4u, 8u, 16u}) {
    for (const double rho : {0.2, 1.0, 4.0}) {
      const auto hot = hotspot_crossbar(n, rho, 0.0);
      const CrossbarModel uniform(Dims::square(n),
                                  {TrafficClass::poisson("p", rho)});
      const auto exact = solve(uniform).per_class[0];
      EXPECT_NEAR(hot.blocking_overall, exact.blocking, 1e-8)
          << n << " " << rho;
      EXPECT_NEAR(hot.mean_circuits, exact.concurrency, 1e-7)
          << n << " " << rho;
      // With no hot spot both streams see identical blocking.
      EXPECT_NEAR(hot.blocking_hot, hot.blocking_cold, 1e-8);
    }
  }
}

TEST(Hotspot, BlockingMonotoneInHotFraction) {
  double prev = -1.0;
  for (const double h : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto r = hotspot_crossbar(16, 1.0, h);
    EXPECT_GT(r.blocking_overall, prev) << h;
    prev = r.blocking_overall;
  }
}

TEST(Hotspot, HotStreamSuffersMoreThanColdStream) {
  const auto r = hotspot_crossbar(16, 1.0, 0.5);
  EXPECT_GT(r.blocking_hot, r.blocking_cold);
  EXPECT_GT(r.hot_utilization, r.cold_utilization);
}

TEST(Hotspot, SevereHotSpotSaturatesHotPortAndStrandsSwitch) {
  const auto mild = hotspot_crossbar(16, 1.0, 0.1);
  const auto severe = hotspot_crossbar(16, 1.0, 0.9);
  EXPECT_GT(severe.hot_utilization, 0.9);
  // Total carried traffic collapses as the hot port becomes the bottleneck.
  EXPECT_LT(severe.mean_circuits, mild.mean_circuits);
}

TEST(Hotspot, MatchesHotspotSimulatorWithinCI) {
  // The headline validation: the exact (b,k) chain against the event-driven
  // simulator running sim::make_hotspot_selector.
  const unsigned n = 8;
  const double rho = 1.0;
  for (const double h : {0.0, 0.3, 0.6}) {
    const auto analytic = hotspot_crossbar(n, rho, h);
    const CrossbarModel model(Dims::square(n),
                              {TrafficClass::poisson("p", rho)});
    fabric::CrossbarFabric fabric(n, n);
    sim::SimulationConfig cfg;
    cfg.warmup_time = 400.0;
    cfg.measurement_time = 12'000.0;
    cfg.num_batches = 20;
    cfg.seed = 4242;
    sim::Simulator simulator(model, fabric, cfg);
    simulator.set_output_selector(sim::make_hotspot_selector(h, 0));
    const auto run = simulator.run();
    const auto& cc = run.per_class[0].call_congestion;
    EXPECT_NEAR(cc.mean, analytic.blocking_overall,
                3.0 * cc.half_width + 5e-3)
        << "h=" << h;
    EXPECT_NEAR(run.utilization.mean, analytic.utilization, 0.01)
        << "h=" << h;
  }
}

TEST(Hotspot, FullyHotTrafficIsSingleServerLoss) {
  // h = 1: every request targets the hot port; the system is M/M/1/1 with
  // an input-availability thinning that is negligible at large N.
  const double lambda = 2.0;
  const auto r = solve_hotspot(
      {.ports = 256, .arrival_rate = lambda, .mu = 1.0, .hot_fraction = 1.0});
  const double erlang_1 = lambda / (1.0 + lambda);  // M/M/1/1 blocking
  EXPECT_NEAR(r.blocking_overall, erlang_1, 5e-3);
  EXPECT_NEAR(r.hot_utilization, erlang_1, 5e-3);
}

}  // namespace
}  // namespace xbar::core
