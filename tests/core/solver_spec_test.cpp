// SolverSpec: string round-trips, resolution against concrete models, and
// the typed errors bad specs raise.

#include "core/solver_spec.hpp"

#include <string>

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace xbar::core {
namespace {

CrossbarModel tiny_model(unsigned n) {
  return CrossbarModel(Dims::square(n),
                       {TrafficClass::bursty("b", 0.01, 0.005)});
}

TEST(SolverSpec, CanonicalStringsRoundTrip) {
  for (const char* text :
       {"auto", "fast", "algorithm1", "algorithm1/scaled",
        "algorithm1/double-dynamic", "algorithm1/long-double",
        "algorithm1/double-raw", "algorithm1/log-domain", "algorithm2",
        "brute"}) {
    const SolverSpec spec = SolverSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec) << text;
  }
}

TEST(SolverSpec, DefaultIsAuto) {
  const SolverSpec spec;
  EXPECT_EQ(spec.algorithm, SolverAlgorithm::kAuto);
  EXPECT_FALSE(spec.backend.has_value());
  EXPECT_EQ(spec.to_string(), "auto");
}

TEST(SolverSpec, ParseRejectsUnknownNames) {
  for (const char* text : {"", "magic", "algorithm3", "fast/scaled",
                           "algorithm2/ratio", "algorithm1/float",
                           "algorithm1/"}) {
    try {
      (void)SolverSpec::parse(text);
      FAIL() << "expected xbar::Error for '" << text << "'";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kConfig) << text;
      EXPECT_GT(e.source_line(), 0u);
      EXPECT_NE(e.source_file().find("solver_spec.cpp"), std::string::npos);
    }
  }
}

TEST(SolverSpec, AutoResolvesPerPaperSection5) {
  const ResolvedSolver small = resolve(SolverSpec{}, tiny_model(8));
  EXPECT_EQ(small.algorithm, SolverAlgorithm::kAlgorithm1);
  EXPECT_EQ(small.backend, NumericBackend::kScaledFloat);
  EXPECT_FALSE(small.fallback_on_degenerate);

  const ResolvedSolver large = resolve(SolverSpec{}, tiny_model(64));
  EXPECT_EQ(large.algorithm, SolverAlgorithm::kAlgorithm2);
  EXPECT_EQ(large.backend, NumericBackend::kRatio);
}

TEST(SolverSpec, FastResolvesToDynamicScalingWithFallback) {
  const ResolvedSolver r = resolve(SolverSpec::fast(), tiny_model(8));
  EXPECT_EQ(r.algorithm, SolverAlgorithm::kAlgorithm1);
  EXPECT_EQ(r.backend, NumericBackend::kDoubleDynamicScaling);
  EXPECT_TRUE(r.fallback_on_degenerate);
}

TEST(SolverSpec, ExplicitBackendIsHonored) {
  const SolverSpec spec = SolverSpec::parse("algorithm1/long-double");
  const ResolvedSolver r = resolve(spec, tiny_model(4));
  EXPECT_EQ(r.backend, NumericBackend::kLongDouble);
  EXPECT_FALSE(r.fallback_on_degenerate);
}

TEST(SolverSpec, LogDomainBackendResolvesForAlgorithm1) {
  const SolverSpec spec = SolverSpec::parse("algorithm1/log-domain");
  EXPECT_EQ(spec.backend, NumericBackend::kLogDomain);
  const ResolvedSolver r = resolve(spec, tiny_model(4));
  EXPECT_EQ(r.algorithm, SolverAlgorithm::kAlgorithm1);
  EXPECT_EQ(r.backend, NumericBackend::kLogDomain);
  EXPECT_FALSE(r.fallback_on_degenerate);
  EXPECT_EQ(std::string(to_string(NumericBackend::kLogDomain)), "log-domain");
}

TEST(SolverSpec, ResolveRejectsBackendOnWrongAlgorithm) {
  SolverSpec spec;
  spec.algorithm = SolverAlgorithm::kAlgorithm2;
  spec.backend = NumericBackend::kLongDouble;  // bypass parse() validation
  try {
    (void)resolve(spec, tiny_model(4));
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kConfig);
  }
}

TEST(ErrorTaxonomy, WhatNamesKindAndLocation) {
  try {
    raise(ErrorKind::kDomain, "probe message");
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kDomain);
    EXPECT_EQ(e.message(), "probe message");
    const std::string what = e.what();
    EXPECT_NE(what.find("domain error"), std::string::npos) << what;
    EXPECT_NE(what.find("probe message"), std::string::npos) << what;
    EXPECT_NE(what.find("solver_spec_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find(':' + std::to_string(e.source_line())),
              std::string::npos)
        << what;
  }
}

TEST(ErrorTaxonomy, KindNames) {
  EXPECT_EQ(xbar::to_string(ErrorKind::kParse), "parse");
  EXPECT_EQ(xbar::to_string(ErrorKind::kConfig), "config");
  EXPECT_EQ(xbar::to_string(ErrorKind::kModel), "model");
  EXPECT_EQ(xbar::to_string(ErrorKind::kDomain), "domain");
  EXPECT_EQ(xbar::to_string(ErrorKind::kUsage), "usage");
  EXPECT_EQ(xbar::to_string(ErrorKind::kIo), "io");
  EXPECT_EQ(xbar::to_string(ErrorKind::kInternal), "internal");
}

}  // namespace
}  // namespace xbar::core
