#include "core/erlang.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace xbar::core {
namespace {

TEST(ErlangB, TextbookValues) {
  // Classic tabulated values.
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(2.0, 2), 0.4, 1e-12);
  // A = 10 erlangs, 10 circuits: B ~ 0.2146.
  EXPECT_NEAR(erlang_b(10.0, 10), 0.21458, 1e-4);
  // Light load: B ~ A^c / c! for tiny A (leading order; the next term is
  // O(A) relative, here ~1%).
  EXPECT_NEAR(erlang_b(0.01, 3), std::pow(0.01, 3) / 6.0,
              0.02 * std::pow(0.01, 3) / 6.0);
}

TEST(ErlangB, ZeroLoadAndZeroCircuits) {
  EXPECT_EQ(erlang_b(0.0, 5), 0.0);
  EXPECT_EQ(erlang_b(3.0, 0), 1.0);  // no circuits: everything blocked
}

TEST(ErlangB, MonotoneInLoadAndCircuits) {
  for (unsigned c = 1; c <= 30; ++c) {
    EXPECT_LT(erlang_b(2.0, c + 1), erlang_b(2.0, c));
  }
  double prev = 0.0;
  for (double a = 0.5; a < 40.0; a *= 1.5) {
    const double b = erlang_b(a, 10);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(ErlangB, SaturationLimit) {
  EXPECT_GT(erlang_b(1e6, 10), 0.99998);
  EXPECT_LT(erlang_b(1e6, 10), 1.0);
}

TEST(ErlangBReal, AgreesWithIntegerRecursionAtIntegers) {
  for (unsigned c = 1; c <= 40; c += 3) {
    for (const double a : {0.5, 2.0, 10.0, 30.0}) {
      EXPECT_NEAR(erlang_b_real(a, c), erlang_b(a, c),
                  1e-6 * erlang_b(a, c) + 1e-12)
          << a << " " << c;
    }
  }
}

TEST(ErlangBReal, InterpolatesMonotonically) {
  const double b5 = erlang_b(8.0, 5);
  const double b6 = erlang_b(8.0, 6);
  const double mid = erlang_b_real(8.0, 5.5);
  EXPECT_LT(mid, b5);
  EXPECT_GT(mid, b6);
}

TEST(ErlangC, RelatesToErlangB) {
  // C(a, c) = B / (1 - rho (1 - B)) and always >= B.
  for (const double a : {1.0, 4.0, 8.0}) {
    const unsigned c = 10;
    EXPECT_GE(erlang_c(a, c), erlang_b(a, c));
  }
  EXPECT_EQ(erlang_c(12.0, 10), 1.0);  // unstable queue
}

TEST(ErlangC, LightTrafficNearZero) {
  EXPECT_LT(erlang_c(0.1, 10), 1e-10);
}

TEST(ErlangBInverse, RoundTrips) {
  for (const double target : {0.001, 0.005, 0.02, 0.1}) {
    for (const unsigned c : {4u, 16u, 64u}) {
      const double a = erlang_b_inverse_load(target, c);
      EXPECT_NEAR(erlang_b(a, c), target, 1e-9) << target << " " << c;
    }
  }
}

TEST(ErlangBInverse, MoreCircuitsAdmitMoreLoad) {
  EXPECT_LT(erlang_b_inverse_load(0.01, 8),
            erlang_b_inverse_load(0.01, 16));
}

TEST(ErlangB, RejectsBadLoadWithDomainKind) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double a : {-1.0, nan, inf}) {
    try {
      (void)erlang_b(a, 4);
      FAIL() << "expected xbar::Error for a=" << a;
    } catch (const xbar::Error& e) {
      EXPECT_EQ(e.kind(), xbar::ErrorKind::kDomain);
    }
  }
}

TEST(ErlangBReal, RejectsBadArgumentsWithDomainKind) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)erlang_b_real(0.0, 4.0), xbar::Error);   // a must be > 0
  EXPECT_THROW((void)erlang_b_real(nan, 4.0), xbar::Error);
  EXPECT_THROW((void)erlang_b_real(2.0, -1.0), xbar::Error);  // c must be >= 0
  EXPECT_THROW((void)erlang_b_real(2.0, nan), xbar::Error);
}

TEST(ErlangBInverse, RejectsBadTargetWithDomainKind) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const double target : {0.0, 1.0, -0.5, 1.5, nan}) {
    try {
      (void)erlang_b_inverse_load(target, 4);
      FAIL() << "expected xbar::Error for target=" << target;
    } catch (const xbar::Error& e) {
      EXPECT_EQ(e.kind(), xbar::ErrorKind::kDomain);
    }
  }
}

}  // namespace
}  // namespace xbar::core
