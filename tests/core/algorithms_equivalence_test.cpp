// The central correctness argument of the library: four independent
// computation paths — exhaustive enumeration, Algorithm 1 (all numeric
// backends), Algorithm 2, and the generating-function series expansion —
// must agree on Q(N) and on every performance measure, across a parameter
// sweep covering Poisson/Pascal/Bernoulli classes, multi-rate bandwidths and
// rectangular switches.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "core/algorithm2.hpp"
#include "core/brute_force.hpp"
#include "core/generating_function.hpp"
#include "core/solver.hpp"

namespace xbar::core {
namespace {

struct ModelCase {
  std::string label;
  Dims dims;
  std::vector<TrafficClass> classes;
};

std::vector<ModelCase> sweep_cases() {
  std::vector<ModelCase> cases;
  // Single-class sweeps over shape and load.
  for (const unsigned n : {1u, 2u, 3u, 5u}) {
    for (const double load : {0.05, 0.8, 3.0}) {
      cases.push_back({"poisson_n" + std::to_string(n) + "_rho" +
                           std::to_string(load),
                       Dims::square(n),
                       {TrafficClass::poisson("p", load)}});
      // beta = load/4 keeps the per-tuple Pascal ratio beta/mu < 1 even on
      // the 1x1 switch (C(1,1) = 1 gives no normalization headroom).
      cases.push_back({"pascal_n" + std::to_string(n) + "_rho" +
                           std::to_string(load),
                       Dims::square(n),
                       {TrafficClass::bursty("pk", load, load / 4.0)}});
    }
  }
  // Smooth (Bernoulli) classes: alpha/beta = -population.
  cases.push_back({"bernoulli_small",
                   Dims::square(4),
                   {TrafficClass::bursty("sm", 0.8, -0.05)}});
  cases.push_back({"bernoulli_tight_population",
                   Dims::square(3),
                   {TrafficClass::bursty("sm", 0.9, -0.3)}});
  // Multi-rate single class.
  cases.push_back({"wide_a2",
                   Dims::square(4),
                   {TrafficClass::poisson("w", 0.6, 2)}});
  cases.push_back({"wide_a3_pascal",
                   Dims::square(6),
                   {TrafficClass::bursty("w", 0.9, 0.3, 3)}});
  // Rectangular switches.
  cases.push_back({"rect_3x5",
                   Dims{3, 5},
                   {TrafficClass::poisson("p", 0.7)}});
  cases.push_back({"rect_5x3_pascal",
                   Dims{5, 3},
                   {TrafficClass::bursty("pk", 0.5, 0.25, 2)}});
  // Multi-class mixtures.
  cases.push_back({"two_class_mixed",
                   Dims::square(4),
                   {TrafficClass::poisson("p", 0.5),
                    TrafficClass::bursty("pk", 0.4, 0.2)}});
  cases.push_back({"three_class_zoo",
                   Dims::square(5),
                   {TrafficClass::poisson("p", 0.4),
                    TrafficClass::bursty("pk", 0.3, 0.15, 2),
                    TrafficClass::bursty("sm", 0.5, -0.02)}});
  cases.push_back({"paper_table2_shape",
                   Dims::square(4),
                   {TrafficClass::poisson("t1", 0.0012),
                    TrafficClass::bursty("t2", 0.0012, 0.0012)}});
  return cases;
}

class EquivalenceTest : public ::testing::TestWithParam<ModelCase> {
 protected:
  CrossbarModel make_model() const {
    return CrossbarModel(GetParam().dims, GetParam().classes);
  }
};

TEST_P(EquivalenceTest, LogQAgreesAcrossAllFourPaths) {
  const CrossbarModel model = make_model();
  const BruteForceSolver brute(model);
  const Algorithm1Solver alg1(model);
  const Algorithm2Solver alg2(model);
  const double reference = brute.log_q();
  EXPECT_NEAR(alg1.log_q(model.dims()), reference,
              1e-9 * (std::fabs(reference) + 1.0));
  EXPECT_NEAR(alg2.log_q(model.dims()), reference,
              1e-9 * (std::fabs(reference) + 1.0));
  EXPECT_NEAR(series_log_q(model), reference,
              1e-9 * (std::fabs(reference) + 1.0));
}

TEST_P(EquivalenceTest, LogQAgreesOnEveryGridCell) {
  const CrossbarModel model = make_model();
  const Algorithm1Solver alg1(model);
  const Algorithm2Solver alg2(model);
  const BruteForceSolver brute(model);
  const auto series = series_log_q_grid(model);
  const unsigned w = model.dims().n1 + 1;
  for (unsigned n2 = 0; n2 <= model.dims().n2; ++n2) {
    for (unsigned n1 = 0; n1 <= model.dims().n1; ++n1) {
      const Dims at{n1, n2};
      const double ref = brute.log_q(at);
      const double tol = 1e-9 * (std::fabs(ref) + 1.0);
      EXPECT_NEAR(alg1.log_q(at), ref, tol) << n1 << "," << n2;
      EXPECT_NEAR(alg2.log_q(at), ref, tol) << n1 << "," << n2;
      EXPECT_NEAR(series[static_cast<std::size_t>(n2) * w + n1], ref, tol)
          << n1 << "," << n2;
    }
  }
}

void expect_measures_near(const Measures& got, const Measures& want,
                          double tol, const std::string& what) {
  ASSERT_EQ(got.per_class.size(), want.per_class.size());
  for (std::size_t r = 0; r < got.per_class.size(); ++r) {
    EXPECT_NEAR(got.per_class[r].non_blocking, want.per_class[r].non_blocking,
                tol)
        << what << " class " << r;
    EXPECT_NEAR(got.per_class[r].concurrency, want.per_class[r].concurrency,
                tol * (1.0 + want.per_class[r].concurrency))
        << what << " class " << r;
  }
  EXPECT_NEAR(got.revenue, want.revenue, tol * (1.0 + want.revenue)) << what;
  EXPECT_NEAR(got.utilization, want.utilization, tol) << what;
}

TEST_P(EquivalenceTest, MeasuresAgreeWithBruteForce) {
  const CrossbarModel model = make_model();
  const Measures reference = BruteForceSolver(model).solve();
  expect_measures_near(Algorithm1Solver(model).solve(), reference, 1e-9,
                       "alg1");
  expect_measures_near(Algorithm2Solver(model).solve(), reference, 1e-9,
                       "alg2");
}

TEST_P(EquivalenceTest, Algorithm1BackendsAgree) {
  const CrossbarModel model = make_model();
  const Measures reference =
      Algorithm1Solver(model, {Algorithm1Backend::kScaledFloat}).solve();
  for (const auto backend :
       {Algorithm1Backend::kLongDouble, Algorithm1Backend::kDoubleRaw,
        Algorithm1Backend::kDoubleDynamicScaling}) {
    const Algorithm1Solver solver(model, {backend});
    // These small systems don't overflow any backend.
    EXPECT_FALSE(solver.degenerate());
    expect_measures_near(solver.solve(), reference, 1e-9, "backend");
  }
}

TEST_P(EquivalenceTest, SubsystemMeasuresAgreeWithShrunkenBruteForce) {
  const CrossbarModel model = make_model();
  const Dims dims = model.dims();
  if (dims.n1 < 2 || dims.n2 < 2) {
    GTEST_SKIP() << "no nontrivial subsystem";
  }
  const Dims sub{dims.n1 - 1, dims.n2 - 1};
  const Measures expected =
      BruteForceSolver(model.with_dims_same_tuple_rates(sub)).solve();
  expect_measures_near(Algorithm1Solver(model).solve_at(sub), expected, 1e-9,
                       "alg1 subsystem");
  expect_measures_near(Algorithm2Solver(model).solve_at(sub), expected, 1e-9,
                       "alg2 subsystem");
}

TEST_P(EquivalenceTest, SolverFacadeMatchesBruteForce) {
  const CrossbarModel model = make_model();
  const Measures reference = BruteForceSolver(model).solve();
  for (const auto spec :
       {SolverSpec{}, SolverSpec::fast(),
        SolverSpec{SolverAlgorithm::kAlgorithm1, {}},
        SolverSpec{SolverAlgorithm::kAlgorithm2, {}},
        SolverSpec::brute_force()}) {
    expect_measures_near(solve(model, spec), reference, 1e-9, "facade");
  }
}

TEST_P(EquivalenceTest, SolveResultDiagnosticsDescribeTheRun) {
  const CrossbarModel model = make_model();
  const SolveResult result = core::solve_result(model, SolverSpec::fast());
  EXPECT_EQ(result.diagnostics.requested, SolverAlgorithm::kFast);
  EXPECT_EQ(result.diagnostics.algorithm, SolverAlgorithm::kAlgorithm1);
  EXPECT_EQ(result.diagnostics.grid, model.dims());
  EXPECT_EQ(result.diagnostics.evaluated_at, model.dims());
  EXPECT_GE(result.diagnostics.wall_seconds, 0.0);
  if (result.diagnostics.fast_fallback) {
    EXPECT_EQ(result.diagnostics.backend, NumericBackend::kScaledFloat);
  } else {
    EXPECT_EQ(result.diagnostics.backend,
              NumericBackend::kDoubleDynamicScaling);
  }
  expect_measures_near(result.measures, BruteForceSolver(model).solve(), 1e-9,
                       "diagnostics run");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

// Larger systems: brute force is infeasible, but Algorithm 1 (ScaledFloat)
// and Algorithm 2 must still agree with each other and with the series.
TEST(EquivalenceLarge, Alg1Alg2SeriesAgreeAt64) {
  const CrossbarModel model(
      Dims::square(64),
      {TrafficClass::poisson("t1", 0.0012),
       TrafficClass::bursty("t2", 0.0012, 0.0012)});
  const Algorithm1Solver alg1(model);
  const Algorithm2Solver alg2(model);
  const double ref = series_log_q(model);
  EXPECT_NEAR(alg1.log_q(model.dims()), ref, 1e-8 * std::fabs(ref));
  EXPECT_NEAR(alg2.log_q(model.dims()), ref, 1e-8 * std::fabs(ref));
  const auto m1 = alg1.solve();
  const auto m2 = alg2.solve();
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(m1.per_class[r].blocking, m2.per_class[r].blocking, 1e-10);
    EXPECT_NEAR(m1.per_class[r].concurrency, m2.per_class[r].concurrency,
                1e-9);
  }
}

TEST(EquivalenceLarge, HeavyLoadAgreementAt32) {
  // Saturating load exercises the full numeric range of the Q grid.
  const CrossbarModel model(Dims::square(32),
                            {TrafficClass::poisson("hot", 60.0),
                             TrafficClass::bursty("pk", 10.0, 5.0, 2)});
  const Algorithm1Solver alg1(model);
  const Algorithm2Solver alg2(model);
  const auto m1 = alg1.solve();
  const auto m2 = alg2.solve();
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(m1.per_class[r].blocking, m2.per_class[r].blocking, 1e-9);
    EXPECT_NEAR(m1.per_class[r].concurrency, m2.per_class[r].concurrency,
                1e-8 * (1.0 + m2.per_class[r].concurrency));
  }
}

}  // namespace
}  // namespace xbar::core
