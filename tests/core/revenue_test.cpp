#include "core/revenue.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/solver.hpp"

namespace xbar::core {
namespace {

CrossbarModel table2_like(unsigned n, double rho2 = 0.0012,
                          double beta2 = 0.0012) {
  return CrossbarModel(
      Dims::square(n),
      {TrafficClass::poisson("t1", 0.0012, 1, 1.0, 1.0),
       TrafficClass::bursty("t2", rho2, beta2, 1, 1.0, 0.0001)});
}

TEST(Revenue, MatchesSolverRevenue) {
  const auto model = table2_like(8);
  const RevenueAnalyzer analyzer(model);
  EXPECT_NEAR(analyzer.revenue(), solve(model).revenue, 1e-12);
}

TEST(Revenue, ShadowCostIsRevenueDifference) {
  const auto model = table2_like(8);
  const RevenueAnalyzer analyzer(model);
  const double expected =
      analyzer.revenue() - analyzer.revenue_at(Dims::square(7));
  EXPECT_NEAR(analyzer.shadow_cost(0), expected, 1e-14);
}

// The closed-form Poisson gradient must equal a high-accuracy numeric
// derivative even with a bursty class present (DESIGN.md errata note 1).
TEST(Revenue, PoissonClosedFormMatchesCentralDifference) {
  for (const unsigned n : {2u, 4u, 8u, 16u, 64u}) {
    const RevenueAnalyzer analyzer(table2_like(n));
    const double exact = analyzer.d_revenue_d_rho_exact(0);
    const double numeric = analyzer.d_revenue_d_rho_numeric(
        0, GradientMethod::kCentralDifference, 1e-5);
    EXPECT_NEAR(exact, numeric, 1e-4 * std::fabs(exact)) << "n=" << n;
  }
}

// The exact series for bursty-class gradients (library extension; the paper
// used forward differences) must match numeric differentiation.
struct GradientCase {
  std::string label;
  unsigned n;
  std::vector<TrafficClass> classes;
  std::size_t target;  // class whose gradients we probe
};

class ExactGradientTest : public ::testing::TestWithParam<GradientCase> {};

TEST_P(ExactGradientTest, DRevenueDXMatchesCentralDifference) {
  const CrossbarModel model(Dims::square(GetParam().n), GetParam().classes);
  const RevenueAnalyzer analyzer(model);
  const std::size_t r = GetParam().target;
  const double exact = analyzer.d_revenue_d_x_exact(r);
  const double numeric = analyzer.d_revenue_d_x_numeric(
      r, GradientMethod::kCentralDifference, 1e-4);
  EXPECT_NEAR(exact, numeric,
              1e-4 * (std::fabs(exact) + std::fabs(numeric) + 1e-12));
}

TEST_P(ExactGradientTest, DRevenueDRhoMatchesCentralDifference) {
  const CrossbarModel model(Dims::square(GetParam().n), GetParam().classes);
  const RevenueAnalyzer analyzer(model);
  const std::size_t r = GetParam().target;
  const double exact = analyzer.d_revenue_d_rho_exact(r);
  const double numeric = analyzer.d_revenue_d_rho_numeric(
      r, GradientMethod::kCentralDifference, 1e-5);
  EXPECT_NEAR(exact, numeric,
              1e-4 * (std::fabs(exact) + std::fabs(numeric) + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactGradientTest,
    ::testing::Values(
        GradientCase{"pascal_small", 4,
                     {TrafficClass::poisson("p", 0.0012, 1, 1.0, 1.0),
                      TrafficClass::bursty("b", 0.0012, 0.0012, 1, 1.0,
                                           0.0001)},
                     1},
        GradientCase{"pascal_large", 64,
                     {TrafficClass::poisson("p", 0.0012, 1, 1.0, 1.0),
                      TrafficClass::bursty("b", 0.0012, 0.0012, 1, 1.0,
                                           0.0001)},
                     1},
        GradientCase{"heavy_load", 8,
                     {TrafficClass::poisson("p", 0.5, 1, 1.0, 1.0),
                      TrafficClass::bursty("b", 0.4, 0.2, 1, 1.0, 0.3)},
                     1},
        GradientCase{"wide_band", 8,
                     {TrafficClass::poisson("p", 0.3, 1, 1.0, 1.0),
                      TrafficClass::bursty("b", 0.4, 0.2, 2, 1.0, 0.5)},
                     1},
        GradientCase{"bernoulli", 8,
                     {TrafficClass::poisson("p", 0.3, 1, 1.0, 1.0),
                      TrafficClass::bursty("sm", 0.8, -0.05, 1, 1.0, 0.5)},
                     1},
        GradientCase{"poisson_x_sensitivity", 6,
                     {TrafficClass::poisson("p", 0.5, 1, 1.0, 1.0)},
                     0},
        GradientCase{"three_class", 6,
                     {TrafficClass::poisson("p", 0.3, 1, 1.0, 1.0),
                      TrafficClass::bursty("pk", 0.2, 0.1, 1, 1.0, 0.4),
                      TrafficClass::bursty("sm", 0.4, -0.04, 2, 1.0, 0.7)},
                     1}),
    [](const ::testing::TestParamInfo<GradientCase>& info) {
      return info.param.label;
    });

TEST(Revenue, ForwardDifferenceConvergesToExact) {
  const RevenueAnalyzer analyzer(table2_like(16));
  const double exact = analyzer.d_revenue_d_x_exact(1);
  double prev_err = std::numeric_limits<double>::infinity();
  for (const double h : {1e-1, 1e-2, 1e-3}) {
    const double fd = analyzer.d_revenue_d_x_numeric(
        1, GradientMethod::kForwardDifference, h);
    const double err = std::fabs(fd - exact);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
}

TEST(Revenue, GradientEconomicsSignTest) {
  // A high-weight class on an empty switch should raise revenue with load
  // (w_r >> shadow cost); a worthless class crowding a loaded switch should
  // lower it.
  const CrossbarModel good(Dims::square(4),
                           {TrafficClass::poisson("gold", 0.01, 1, 1.0, 1.0)});
  EXPECT_GT(RevenueAnalyzer(good).d_revenue_d_rho_exact(0), 0.0);

  const CrossbarModel crowded(
      Dims::square(4),
      {TrafficClass::poisson("gold", 2.0, 1, 1.0, 1.0),
       TrafficClass::poisson("junk", 2.0, 1, 1.0, 1e-6)});
  EXPECT_LT(RevenueAnalyzer(crowded).d_revenue_d_rho_exact(1), 0.0);
}

TEST(Revenue, WorthAdmittingFlagMatchesInequality) {
  const RevenueAnalyzer analyzer(table2_like(8));
  const auto report = analyzer.analyze();
  ASSERT_EQ(report.per_class.size(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(report.per_class[r].worth_admitting,
              analyzer.model().normalized(r).weight >
                  report.per_class[r].shadow_cost);
  }
}

TEST(Revenue, AnalyzeReportsConsistentAcrossMethods) {
  const RevenueAnalyzer analyzer(table2_like(8));
  const auto exact = analyzer.analyze(GradientMethod::kExact);
  const auto central = analyzer.analyze(GradientMethod::kCentralDifference);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(exact.per_class[r].d_revenue_d_rho,
                central.per_class[r].d_revenue_d_rho,
                1e-3 * (std::fabs(exact.per_class[r].d_revenue_d_rho) + 1.0));
    EXPECT_NEAR(exact.per_class[r].d_revenue_d_x,
                central.per_class[r].d_revenue_d_x,
                1e-3 * (std::fabs(exact.per_class[r].d_revenue_d_x) + 1e-9));
    EXPECT_DOUBLE_EQ(exact.per_class[r].shadow_cost,
                     central.per_class[r].shadow_cost);
  }
  EXPECT_DOUBLE_EQ(exact.revenue, central.revenue);
}

TEST(Revenue, IncreasingBurstinessReducesRevenue) {
  // Table 2's qualitative conclusion.
  for (const unsigned n : {8u, 32u, 128u}) {
    const RevenueAnalyzer analyzer(table2_like(n));
    EXPECT_LT(analyzer.d_revenue_d_x_exact(1), 0.0) << "n=" << n;
  }
}

}  // namespace
}  // namespace xbar::core
