#include "core/model.hpp"

#include <stdexcept>

#include "core/error.hpp"

#include <gtest/gtest.h>

namespace xbar::core {
namespace {

TEST(Dims, CapAndMaxSide) {
  const Dims d{4, 7};
  EXPECT_EQ(d.cap(), 4u);
  EXPECT_EQ(d.max_side(), 7u);
  EXPECT_EQ(Dims::square(5).n1, 5u);
  EXPECT_EQ(Dims::square(5).n2, 5u);
}

TEST(Dims, ShrunkByClampsAtZero) {
  const Dims d{3, 5};
  EXPECT_EQ(d.shrunk_by(2), (Dims{1, 3}));
  EXPECT_EQ(d.shrunk_by(4), (Dims{0, 1}));
}

TEST(TrafficClass, PoissonFactory) {
  const auto c = TrafficClass::poisson("voice", 0.5, 2, 4.0, 3.0);
  EXPECT_EQ(c.name, "voice");
  EXPECT_EQ(c.bandwidth, 2u);
  EXPECT_DOUBLE_EQ(c.alpha_tilde, 2.0);  // rho~ * mu
  EXPECT_DOUBLE_EQ(c.beta_tilde, 0.0);
  EXPECT_DOUBLE_EQ(c.rho_tilde(), 0.5);
  EXPECT_DOUBLE_EQ(c.weight, 3.0);
}

TEST(CrossbarModel, NormalizesByOutputSetCount) {
  // lambda_r = lambda~_r / C(N2, a_r)  (paper §2).
  const CrossbarModel m(Dims{4, 6},
                        {TrafficClass::bursty("b", 0.12, 0.06, 2)});
  const NormalizedClass& n = m.normalized(0);
  EXPECT_DOUBLE_EQ(n.alpha, 0.12 / 15.0);  // C(6,2) = 15
  EXPECT_DOUBLE_EQ(n.beta, 0.06 / 15.0);
  EXPECT_DOUBLE_EQ(n.rho(), 0.12 / 15.0);
  EXPECT_DOUBLE_EQ(n.x(), 0.06 / 15.0);
  EXPECT_FALSE(n.is_poisson());
}

TEST(CrossbarModel, IntensityClampsAtZero) {
  const CrossbarModel m(Dims::square(4),
                        {TrafficClass::bursty("s", 0.4, -0.1)});
  const NormalizedClass& n = m.normalized(0);
  EXPECT_DOUBLE_EQ(n.intensity(0), 0.1);
  EXPECT_DOUBLE_EQ(n.intensity(4), 0.0);
  EXPECT_DOUBLE_EQ(n.intensity(100), 0.0);
}

TEST(CrossbarModel, RejectsZeroDimensions) {
  EXPECT_THROW(CrossbarModel(Dims{0, 4}, {TrafficClass::poisson("p", 0.1)}),
               xbar::Error);
  EXPECT_THROW(CrossbarModel(Dims{4, 0}, {TrafficClass::poisson("p", 0.1)}),
               xbar::Error);
}

TEST(CrossbarModel, RejectsEmptyClassList) {
  EXPECT_THROW(CrossbarModel(Dims::square(4), {}), xbar::Error);
}

TEST(CrossbarModel, RejectsZeroBandwidth) {
  EXPECT_THROW(
      CrossbarModel(Dims::square(4), {TrafficClass::poisson("p", 0.1, 0)}),
      xbar::Error);
}

TEST(CrossbarModel, RejectsBandwidthBeyondCap) {
  EXPECT_THROW(
      CrossbarModel(Dims{2, 8}, {TrafficClass::poisson("p", 0.1, 3)}),
      xbar::Error);
  // a == cap is fine.
  EXPECT_NO_THROW(
      CrossbarModel(Dims{2, 8}, {TrafficClass::poisson("p", 0.1, 2)}));
}

TEST(CrossbarModel, RejectsNonPositiveLoadOrMu) {
  EXPECT_THROW(
      CrossbarModel(Dims::square(4), {TrafficClass::poisson("p", 0.0)}),
      xbar::Error);
  EXPECT_THROW(CrossbarModel(Dims::square(4),
                             {TrafficClass::poisson("p", 0.1, 1, 0.0)}),
               xbar::Error);
}

TEST(CrossbarModel, RejectsSupercriticalPascal) {
  // beta/mu >= 1 diverges.  beta~ = 4 * 1.0 on a 4x4 gives beta = 1.0.
  EXPECT_THROW(CrossbarModel(Dims::square(4),
                             {TrafficClass::bursty("p", 0.4, 4.0)}),
               xbar::Error);
}

TEST(CrossbarModel, RejectsBernoulliGoingNegativeInRange) {
  // alpha~ = .4, beta~ = -.2 on 4x4: per-tuple alpha = .1, beta = -.05;
  // intensity at k=4 = .1 - .2 < 0 — inadmissible.
  EXPECT_THROW(CrossbarModel(Dims::square(4),
                             {TrafficClass::bursty("s", 0.4, -0.2)}),
               xbar::Error);
}

TEST(CrossbarModel, WithDimsSameTupleRatesPreservesPerTupleParameters) {
  const CrossbarModel m(Dims::square(8),
                        {TrafficClass::bursty("b", 0.8, 0.4, 2)});
  const CrossbarModel sub = m.with_dims_same_tuple_rates(Dims::square(6));
  EXPECT_EQ(sub.dims(), Dims::square(6));
  EXPECT_DOUBLE_EQ(sub.normalized(0).alpha, m.normalized(0).alpha);
  EXPECT_DOUBLE_EQ(sub.normalized(0).beta, m.normalized(0).beta);
}

TEST(CrossbarModel, ClassAccessors) {
  const CrossbarModel m(
      Dims::square(4),
      {TrafficClass::poisson("a", 0.1), TrafficClass::bursty("b", 0.1, 0.05)});
  EXPECT_EQ(m.num_classes(), 2u);
  EXPECT_EQ(m.classes()[0].name, "a");
  EXPECT_EQ(m.normalized_classes().size(), 2u);
  EXPECT_TRUE(m.normalized(0).is_poisson());
  EXPECT_FALSE(m.normalized(1).is_poisson());
  EXPECT_EQ(m.state_cap(), 4u);
}

}  // namespace
}  // namespace xbar::core
