#include "config/ini.hpp"

#include <gtest/gtest.h>

namespace xbar::config {
namespace {

TEST(Ini, ParsesSectionsAndKeys) {
  const auto file = parse_ini_string(
      "[alpha]\n"
      "x = 1\n"
      "y = two words\n"
      "[beta b1]\n"
      "z = 3.5\n");
  ASSERT_EQ(file.sections.size(), 2u);
  EXPECT_EQ(file.sections[0].name, "alpha");
  EXPECT_EQ(file.sections[0].label, "");
  EXPECT_EQ(file.sections[1].name, "beta");
  EXPECT_EQ(file.sections[1].label, "b1");
  EXPECT_EQ(file.sections[0].get("x"), "1");
  EXPECT_EQ(file.sections[0].get("y"), "two words");
  EXPECT_DOUBLE_EQ(file.sections[1].get_double("z", 0.0), 3.5);
}

TEST(Ini, CommentsAndBlankLines) {
  const auto file = parse_ini_string(
      "# leading comment\n"
      "\n"
      "[s]\n"
      "a = 1   # trailing comment\n"
      "; another comment style\n"
      "b = 2\n");
  ASSERT_EQ(file.sections.size(), 1u);
  EXPECT_EQ(file.sections[0].get("a"), "1");
  EXPECT_EQ(file.sections[0].get("b"), "2");
}

TEST(Ini, WhitespaceTolerance) {
  const auto file = parse_ini_string("  [ s ]  \n   key   =   value  \n");
  EXPECT_EQ(file.sections[0].name, "s");
  EXPECT_EQ(file.sections[0].get("key"), "value");
}

TEST(Ini, RepeatedSectionsKeptInOrder) {
  const auto file = parse_ini_string(
      "[class a]\nx = 1\n[class b]\nx = 2\n[other]\n");
  const auto classes = file.find_all("class");
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0]->label, "a");
  EXPECT_EQ(classes[1]->label, "b");
  EXPECT_NE(file.find("other"), nullptr);
  EXPECT_EQ(file.find("missing"), nullptr);
}

TEST(Ini, ErrorsCarryLineNumbers) {
  try {
    (void)parse_ini_string("[ok]\nx = 1\nbroken line\n");
    FAIL() << "expected IniError";
  } catch (const IniError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Ini, RejectsKeyBeforeSection) {
  EXPECT_THROW((void)parse_ini_string("x = 1\n"), IniError);
}

TEST(Ini, RejectsUnterminatedHeaderAndEmptyKey) {
  EXPECT_THROW((void)parse_ini_string("[oops\n"), IniError);
  EXPECT_THROW((void)parse_ini_string("[s]\n = 3\n"), IniError);
  EXPECT_THROW((void)parse_ini_string("[]\n"), IniError);
}

TEST(Ini, NumericParsingValidation) {
  const auto file = parse_ini_string("[s]\nn = 12\nf = 2.5e-3\nbad = oops\n");
  const auto& s = file.sections[0];
  EXPECT_EQ(s.get_unsigned("n", 0), 12u);
  EXPECT_DOUBLE_EQ(s.get_double("f", 0.0), 2.5e-3);
  EXPECT_EQ(s.get_unsigned("missing", 7), 7u);
  EXPECT_THROW((void)s.get_double("bad", 0.0), xbar::Error);
  EXPECT_THROW((void)s.get_unsigned("bad", 0), xbar::Error);
}

TEST(Ini, RequireThrowsWithSectionContext) {
  const auto file = parse_ini_string("[class voice]\nshape = poisson\n");
  const auto& s = file.sections[0];
  EXPECT_EQ(s.require("shape"), "poisson");
  try {
    (void)s.require("rho");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kConfig);
    EXPECT_NE(std::string(e.what()).find("class voice"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rho"), std::string::npos);
  }
}

}  // namespace
}  // namespace xbar::config
