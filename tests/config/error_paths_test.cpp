// Error-path coverage for the config stack: every failure mode must arrive
// as a typed xbar::Error whose what() names the raising source file:line,
// so the CLI (and any future frontend) can report failures precisely
// without string-matching ad-hoc exception text.

#include <string>

#include <gtest/gtest.h>

#include "config/ini.hpp"
#include "config/scenario_file.hpp"
#include "core/error.hpp"

namespace xbar::config {
namespace {

// what() must carry the "<kind> error: ... [at file:line]" decoration.
void expect_decorated(const Error& e, ErrorKind kind,
                      const std::string& needle) {
  EXPECT_EQ(e.kind(), kind);
  const std::string what = e.what();
  EXPECT_NE(what.find(std::string(xbar::to_string(kind)) + " error"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find(needle), std::string::npos) << what;
  EXPECT_GT(e.source_line(), 0u);
  EXPECT_NE(what.find(e.source_file() + ':' +
                      std::to_string(e.source_line())),
            std::string::npos)
      << what;
}

TEST(ErrorPaths, MalformedIniIsAParseErrorWithInputLine) {
  try {
    (void)parse_scenario_string("[switch]\ninputs = 4\ngarbage here\n");
    FAIL() << "expected xbar::Error";
  } catch (const IniError& e) {
    expect_decorated(e, ErrorKind::kParse, "line 3");
    EXPECT_EQ(e.line(), 3u);  // the INI input line, not the C++ one
  }
}

TEST(ErrorPaths, NonNumericValueIsAParseError) {
  try {
    (void)parse_scenario_string(
        "[switch]\ninputs = many\n[class c]\nshape = poisson\nrho = 1\n");
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    expect_decorated(e, ErrorKind::kParse, "many");
  }
}

TEST(ErrorPaths, UnknownSolverIsAConfigError) {
  try {
    (void)parse_scenario_string(
        "[switch]\ninputs = 4\n[class c]\nshape = poisson\nrho = 1\n"
        "[solve]\nalgorithm = magic\n");
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    expect_decorated(e, ErrorKind::kConfig, "magic");
  }
}

TEST(ErrorPaths, InfeasibleClassIsAModelError) {
  // bandwidth 3 on a 2-input switch violates the paper's §2 feasibility cap.
  try {
    (void)parse_scenario_string(
        "[switch]\ninputs = 2\noutputs = 8\n[class c]\nshape = poisson\n"
        "rho = 1\nbandwidth = 3\n");
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    expect_decorated(e, ErrorKind::kModel, "bandwidth");
  }
}

TEST(ErrorPaths, MissingScenarioFileIsAnIoError) {
  try {
    (void)load_scenario("/nonexistent/path.ini");
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    expect_decorated(e, ErrorKind::kIo, "/nonexistent/path.ini");
  }
}

TEST(ErrorPaths, ErrorsRemainCatchableAsStdException) {
  // Downstream code that only knows std::exception must keep working.
  try {
    (void)parse_scenario_string("nonsense\n");
    FAIL() << "expected an exception";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("parse error"), std::string::npos);
  }
}

}  // namespace
}  // namespace xbar::config
