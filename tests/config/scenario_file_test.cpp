#include "config/scenario_file.hpp"

#include <fstream>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/solver.hpp"

namespace xbar::config {
namespace {

constexpr const char* kFull = R"ini(
[switch]
inputs  = 8
outputs = 12

[class voice]
shape  = poisson
rho    = 0.4
weight = 2.0

[class bulk]
shape     = bursty
alpha     = 0.2
beta      = 0.1
bandwidth = 2
mu        = 0.5

[solve]
algorithm = algorithm2

[simulate]
warmup       = 100
time         = 2000
batches      = 8
replications = 3
seed         = 77
hotspot      = 0.25
)ini";

TEST(ScenarioFile, ParsesFullScenario) {
  const auto s = parse_scenario_string(kFull);
  EXPECT_EQ(s.model.dims(), (core::Dims{8, 12}));
  ASSERT_EQ(s.model.num_classes(), 2u);
  EXPECT_EQ(s.model.classes()[0].name, "voice");
  EXPECT_TRUE(s.model.normalized(0).is_poisson());
  EXPECT_DOUBLE_EQ(s.model.classes()[0].weight, 2.0);
  EXPECT_EQ(s.model.normalized(1).bandwidth, 2u);
  EXPECT_DOUBLE_EQ(s.model.classes()[1].mu, 0.5);
  EXPECT_EQ(s.solver.algorithm, core::SolverAlgorithm::kAlgorithm2);
  EXPECT_FALSE(s.solver.backend.has_value());
  EXPECT_TRUE(s.has_simulation_section);
  EXPECT_DOUBLE_EQ(s.sim.warmup_time, 100.0);
  EXPECT_DOUBLE_EQ(s.sim.measurement_time, 2000.0);
  EXPECT_EQ(s.sim.num_batches, 8u);
  EXPECT_EQ(s.replications, 3u);
  EXPECT_EQ(s.sim.seed, 77u);
  EXPECT_DOUBLE_EQ(s.hotspot_fraction, 0.25);
}

TEST(ScenarioFile, ParsedModelIsSolvable) {
  const auto s = parse_scenario_string(kFull);
  const auto measures = core::solve(s.model, s.solver);
  EXPECT_GT(measures.per_class[0].blocking, 0.0);
  EXPECT_LT(measures.per_class[0].blocking, 1.0);
}

TEST(ScenarioFile, MinimalScenarioDefaults) {
  const auto s = parse_scenario_string(
      "[switch]\ninputs = 4\n[class c]\nshape = poisson\nrho = 0.1\n");
  EXPECT_EQ(s.model.dims(), core::Dims::square(4));  // outputs default inputs
  EXPECT_EQ(s.solver.algorithm, core::SolverAlgorithm::kAuto);
  EXPECT_FALSE(s.has_simulation_section);
  EXPECT_EQ(s.model.normalized(0).bandwidth, 1u);
  EXPECT_DOUBLE_EQ(s.model.classes()[0].mu, 1.0);
  EXPECT_DOUBLE_EQ(s.model.classes()[0].weight, 1.0);
}

TEST(ScenarioFile, RejectsMissingSwitch) {
  EXPECT_THROW(
      (void)parse_scenario_string("[class c]\nshape = poisson\nrho = 1\n"),
      xbar::Error);
}

TEST(ScenarioFile, RejectsMissingClasses) {
  EXPECT_THROW((void)parse_scenario_string("[switch]\ninputs = 4\n"),
               xbar::Error);
}

TEST(ScenarioFile, RejectsUnknownShapeAndAlgorithm) {
  EXPECT_THROW((void)parse_scenario_string(
                   "[switch]\ninputs = 4\n[class c]\nshape = weird\n"),
               xbar::Error);
  EXPECT_THROW((void)parse_scenario_string(
                   "[switch]\ninputs = 4\n[class c]\nshape = poisson\n"
                   "rho = 1\n[solve]\nalgorithm = magic\n"),
               xbar::Error);
}

TEST(ScenarioFile, RejectsMissingShapeParameters) {
  // poisson without rho, bursty without alpha.
  EXPECT_THROW((void)parse_scenario_string(
                   "[switch]\ninputs = 4\n[class c]\nshape = poisson\n"),
               xbar::Error);
  EXPECT_THROW((void)parse_scenario_string(
                   "[switch]\ninputs = 4\n[class c]\nshape = bursty\n"),
               xbar::Error);
}

TEST(ScenarioFile, RejectsOutOfRangeHotspot) {
  EXPECT_THROW((void)parse_scenario_string(
                   "[switch]\ninputs = 4\n[class c]\nshape = poisson\n"
                   "rho = 1\n[simulate]\nhotspot = 1.5\n"),
               xbar::Error);
}

TEST(ScenarioFile, ModelValidationPropagates) {
  // bandwidth exceeding the switch cap must surface as a typed error.
  EXPECT_THROW((void)parse_scenario_string(
                   "[switch]\ninputs = 2\n[class c]\nshape = poisson\n"
                   "rho = 1\nbandwidth = 3\n"),
               xbar::Error);
}

TEST(ScenarioFile, MissingFileReported) {
  EXPECT_THROW((void)load_scenario("/nonexistent/path.ini"),
               xbar::Error);
}

TEST(ScenarioFile, ShippedScenariosParse) {
  // The scenarios under examples/scenarios must stay valid.
  for (const char* path : {"examples/scenarios/mixed_64.ini",
                           "examples/scenarios/table2_set1.ini",
                           "examples/scenarios/hotspot_16.ini"}) {
    std::ifstream probe(path);
    if (!probe) {
      GTEST_SKIP() << "run from the repository root to check shipped files";
    }
    EXPECT_NO_THROW((void)load_scenario(path)) << path;
  }
}

}  // namespace
}  // namespace xbar::config
