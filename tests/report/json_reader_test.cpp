// JSON reader tests: exact double round-trip against the writer, the full
// escape set, typed accessors, and kParse classification of malformed input.

#include "report/json_reader.hpp"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace xbar::report {
namespace {

using xbar::Error;
using xbar::ErrorKind;

TEST(JsonReader, ParsesLiterals) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_TRUE(parse_json("  null  ").is_null());
}

TEST(JsonReader, NumbersRoundTripExactly) {
  // Shortest-round-trip doubles (what JsonWriter emits) must come back
  // bit-identical.
  for (const double d :
       {0.0, -0.0, 1.0, -1.5, 0.1, 1e-300, 1.7976931348623157e308,
        2.2250738585072014e-308, 0.0024, 123456789.123456789}) {
    std::string text(64, '\0');
    snprintf(text.data(), text.size(), "%.17g", d);
    text.resize(text.find('\0'));
    const auto v = parse_json(text);
    ASSERT_TRUE(v.is_number()) << text;
    EXPECT_EQ(v.as_number(), d) << text;
  }
  EXPECT_EQ(parse_json("-12").as_number(), -12.0);
  EXPECT_EQ(parse_json("3e2").as_number(), 300.0);
}

TEST(JsonReader, ParsesStringsWithEscapes) {
  EXPECT_EQ(parse_json(R"("hello")").as_string(), "hello");
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(parse_json(R"("\b\f\n\r\t")").as_string(), "\b\f\n\r\t");
  EXPECT_EQ(parse_json(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
}

TEST(JsonReader, ParsesArraysAndObjectsInOrder) {
  const auto v = parse_json(R"({"b": 2, "a": [1, true, null], "c": {}})");
  ASSERT_TRUE(v.is_object());
  const auto& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "b");  // insertion order preserved
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "c");
  const auto& arr = v.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].as_number(), 1.0);
  EXPECT_TRUE(arr[1].as_bool());
  EXPECT_TRUE(arr[2].is_null());
  EXPECT_TRUE(v.at("c").as_object().empty());
}

TEST(JsonReader, FindToleratesMissingKeyAtDoesNot) {
  const auto v = parse_json(R"({"x": 1})");
  EXPECT_NE(v.find("x"), nullptr);
  EXPECT_EQ(v.find("y"), nullptr);
  try {
    (void)v.at("y");
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kParse);
  }
}

TEST(JsonReader, TypeMismatchRaisesParseNamingTypes) {
  const auto v = parse_json("42");
  try {
    (void)v.as_string();
    FAIL() << "expected xbar::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kParse);
    EXPECT_NE(std::string(e.what()).find("string"), std::string::npos);
  }
}

TEST(JsonReader, MalformedInputRaisesParse) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "{\"a\":}",
        "[1 2]", "01", "1.2.3", "nul", "\"\\q\"", "\"\\ud800\"",  // lone
                                                                  // surrogate
        "{} trailing", "[1]]", "+1", "nan", "inf"}) {
    try {
      (void)parse_json(bad);
      FAIL() << "expected xbar::Error for: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kParse) << bad;
    }
  }
}

TEST(JsonReader, RejectsTrailingBytesAfterDocument) {
  // Untrusted-input contract: a valid document followed by anything but
  // whitespace is an error, never a silent truncation.
  for (const char* bad : {"{} x", "[1] [2]", "1 2", "\"a\"b", "null,"}) {
    try {
      (void)parse_json(bad);
      FAIL() << "expected trailing-bytes rejection for: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kParse) << bad;
      EXPECT_NE(std::string(e.message()).find("trailing"),
                std::string::npos)
          << bad;
    }
  }
  EXPECT_TRUE(parse_json("{}  \n\t ").is_object());  // whitespace is fine
}

TEST(JsonReader, AcceptsNestingUpToTheDepthLimit) {
  // 64 levels exactly: "[[[...null...]]]".
  std::string doc(64, '[');
  doc += "null";
  doc.append(64, ']');
  const auto v = parse_json(doc);
  EXPECT_TRUE(v.is_array());
}

TEST(JsonReader, RejectsNestingBeyondTheDepthLimit) {
  // One level past the cap must raise kParse (not recurse toward a stack
  // overflow); so must a pathological short hostile input.
  std::string doc(65, '[');
  doc += "null";
  doc.append(65, ']');
  try {
    (void)parse_json(doc);
    FAIL() << "expected depth-limit rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kParse);
    EXPECT_NE(std::string(e.message()).find("nesting"), std::string::npos);
  }
  const std::string hostile(100000, '[');
  EXPECT_THROW((void)parse_json(hostile), Error);
  std::string mixed;
  for (int i = 0; i < 200; ++i) {
    mixed += "{\"a\":[";
  }
  EXPECT_THROW((void)parse_json(mixed), Error);
}

TEST(JsonReader, NestedDocumentRoundTrip) {
  // The shape a sweep checkpoint uses: objects of arrays of objects.
  const char* doc = R"({
    "version": 1,
    "total_points": 12,
    "solver": "fast",
    "completed": [
      {"index": 0, "status": "ok", "revenue": 0.0047999999999999996},
      {"index": 3, "status": "retried", "revenue": 1e-12}
    ]
  })";
  const auto v = parse_json(doc);
  EXPECT_EQ(v.at("version").as_number(), 1.0);
  EXPECT_EQ(v.at("solver").as_string(), "fast");
  const auto& completed = v.at("completed").as_array();
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed[0].at("revenue").as_number(),
            0.0047999999999999996);
  EXPECT_EQ(completed[1].at("status").as_string(), "retried");
}

}  // namespace
}  // namespace xbar::report
