#include "report/args.hpp"

#include <gtest/gtest.h>

namespace xbar::report {
namespace {

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> full = {"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(full.size()), full.data());
}

TEST(Args, ParsesKeyValueFlags) {
  const Args a = make({"--n=128", "--label=fig1"});
  EXPECT_EQ(a.get("n"), "128");
  EXPECT_EQ(a.get("label"), "fig1");
  EXPECT_FALSE(a.get("missing").has_value());
}

TEST(Args, ParsesBareFlags) {
  const Args a = make({"--verbose"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get("verbose"), "");
  EXPECT_FALSE(a.has("quiet"));
}

TEST(Args, NumericAccessorsWithFallbacks) {
  const Args a = make({"--x=2.5", "--n=32"});
  EXPECT_DOUBLE_EQ(a.get_double("x", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(a.get_double("y", 1.5), 1.5);
  EXPECT_EQ(a.get_unsigned("n", 4), 32u);
  EXPECT_EQ(a.get_unsigned("m", 4), 4u);
}

TEST(Args, BareFlagFallsBackForNumeric) {
  const Args a = make({"--n"});
  EXPECT_EQ(a.get_unsigned("n", 7), 7u);
}

TEST(Args, CollectsPositionals) {
  const Args a = make({"alpha", "--k=1", "beta"});
  EXPECT_EQ(a.positional(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Args, EmptyCommandLine) {
  const Args a = make({});
  EXPECT_TRUE(a.positional().empty());
  EXPECT_FALSE(a.has("anything"));
}

TEST(Args, ValueWithEqualsSign) {
  const Args a = make({"--expr=a=b"});
  EXPECT_EQ(a.get("expr"), "a=b");
}

}  // namespace
}  // namespace xbar::report
