#include "report/ascii_chart.hpp"

#include <limits>
#include <sstream>

#include <gtest/gtest.h>

namespace xbar::report {
namespace {

TEST(AsciiChart, RendersLegendAndAxes) {
  std::ostringstream os;
  render_chart(os,
               {{"poisson", {1, 2, 3, 4}, {0.1, 0.2, 0.3, 0.4}},
                {"peaky", {1, 2, 3, 4}, {0.2, 0.4, 0.6, 0.8}}},
               {.width = 40,
                .height = 10,
                .scale = Scale::kLinear,
                .x_label = "N",
                .y_label = "blocking",
                .title = "demo"});
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("*=poisson"), std::string::npos);
  EXPECT_NE(out.find("+=peaky"), std::string::npos);
  EXPECT_NE(out.find("N"), std::string::npos);
  EXPECT_NE(out.find("blocking"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiChart, LogScaleSkipsNonPositive) {
  std::ostringstream os;
  render_chart(os, {{"s", {1, 2, 3}, {0.0, 1e-3, 1e-2}}},
               {.width = 20, .height = 6, .scale = Scale::kLog10});
  EXPECT_NE(os.str().find("log scale"), std::string::npos);
}

TEST(AsciiChart, EmptyDataHandled) {
  std::ostringstream os;
  render_chart(os, {{"none", {}, {}}}, {});
  EXPECT_EQ(os.str(), "(no data)\n");
}

TEST(AsciiChart, AllNonPositiveOnLogScaleHandled) {
  std::ostringstream os;
  render_chart(os, {{"z", {1, 2}, {0.0, 0.0}}},
               {.scale = Scale::kLog10});
  EXPECT_EQ(os.str(), "(no data)\n");
}

TEST(AsciiChart, SinglePointDoesNotDivideByZero) {
  std::ostringstream os;
  render_chart(os, {{"pt", {5.0}, {0.5}}}, {.width = 10, .height = 4});
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiChart, NonFinitePointsAreSkippedNotPlotted) {
  // NaN and ±inf y values must be dropped point-wise: an +inf that reached
  // the y-range scan would swallow the whole range and flatten the series.
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::ostringstream with_bad;
  render_chart(with_bad,
               {{"s", {1, 2, 3, 4, 5}, {0.1, nan, 0.3, inf, -inf}}},
               {.width = 20, .height = 6});
  std::ostringstream clean;
  render_chart(clean, {{"s", {1, 3}, {0.1, 0.3}}}, {.width = 20, .height = 6});
  // Dropping the non-finite points point-wise leaves exactly the chart the
  // finite points alone would have produced: the axes did not stretch.
  EXPECT_EQ(with_bad.str(), clean.str());
  EXPECT_EQ(with_bad.str().find("inf"), std::string::npos);
  EXPECT_NE(with_bad.str().find('*'), std::string::npos);
}

TEST(AsciiChart, AllNonFiniteSeriesHandled) {
  const double inf = std::numeric_limits<double>::infinity();
  std::ostringstream os;
  render_chart(os, {{"bad", {1, 2}, {inf, -inf}}}, {});
  EXPECT_EQ(os.str(), "(no data)\n");
}

TEST(AsciiChart, NonFiniteXValuesAreSkipped) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::ostringstream os;
  render_chart(os, {{"s", {1, nan, 3}, {0.1, 0.2, 0.3}}},
               {.width = 20, .height = 6});
  EXPECT_NE(os.str().find('*'), std::string::npos);
  EXPECT_EQ(os.str().find("nan"), std::string::npos);
}

TEST(AsciiChart, CanvasDimensionsRespected) {
  std::ostringstream os;
  render_chart(os, {{"s", {0, 1}, {0, 1}}}, {.width = 30, .height = 7});
  // 7 canvas rows + x-axis + x labels + legend + (no title).
  int lines = 0;
  for (const char c : os.str()) {
    if (c == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, 7 + 3);
}

}  // namespace
}  // namespace xbar::report
