// JsonWriter: structural bookkeeping (commas, nesting), number formatting
// (shortest round-trip, NaN/Inf -> null), and string escaping.

#include "report/json_writer.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

namespace xbar::report {
namespace {

TEST(JsonWriter, FlatObject) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.key("name").value("xbar");
  json.key("blocking").value(0.25);
  json.key("ok").value(true);
  json.key("count").value(3u);
  json.end_object();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"xbar\",\n"
            "  \"blocking\": 0.25,\n"
            "  \"ok\": true,\n"
            "  \"count\": 3\n"
            "}\n");
}

TEST(JsonWriter, EmptyContainers) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.key("list").begin_array().end_array();
  json.key("map").begin_object().end_object();
  json.end_object();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"list\": [],\n"
            "  \"map\": {}\n"
            "}\n");
}

TEST(JsonWriter, NestedArraysPlaceCommas) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_array();
  json.value(1).value(2);
  json.begin_object();
  json.key("k").value("v");
  json.end_object();
  json.end_array();
  EXPECT_EQ(os.str(),
            "[\n"
            "  1,\n"
            "  2,\n"
            "  {\n"
            "    \"k\": \"v\"\n"
            "  }\n"
            "]");
}

TEST(JsonWriter, DoublesRoundTripShortest) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_array();
  json.value(0.1);
  json.value(1e-12);
  json.value(-3.5);
  json.end_array();
  EXPECT_EQ(os.str(), "[\n  0.1,\n  1e-12,\n  -3.5\n]");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_array();
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(std::numeric_limits<double>::infinity());
  json.value(-std::numeric_limits<double>::infinity());
  json.end_array();
  EXPECT_EQ(os.str(), "[\n  null,\n  null,\n  null\n]");
}

TEST(JsonWriter, NonFiniteObjectValuesBecomeNull) {
  // The uniform-null contract holds in object position too, so downstream
  // JSON consumers never see a bare `nan`/`inf` token (invalid JSON).
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.key("revenue").value(std::numeric_limits<double>::quiet_NaN());
  json.key("utilization").value(-std::numeric_limits<double>::infinity());
  json.key("ok").value(1.5);
  json.end_object();
  EXPECT_EQ(os.str(),
            "{\n  \"revenue\": null,\n  \"utilization\": null,\n"
            "  \"ok\": 1.5\n}\n");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace xbar::report
