#include "report/csv.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace xbar::report {
namespace {

TEST(Csv, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, MultipleRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"h1", "h2"});
  w.row({"1", "2"});
  EXPECT_EQ(os.str(), "h1,h2\n1,2\n");
}

TEST(Csv, QuotesCommas) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a,b", "c"});
  EXPECT_EQ(os.str(), "\"a,b\",c\n");
}

TEST(Csv, EscapesQuotes) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"say \"hi\""});
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"two\nlines"});
  EXPECT_EQ(os.str(), "\"two\nlines\"\n");
}

TEST(Csv, EmptyCells) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"", "x", ""});
  EXPECT_EQ(os.str(), ",x,\n");
}

}  // namespace
}  // namespace xbar::report
