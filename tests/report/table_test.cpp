#include "report/table.hpp"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace xbar::report {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"N", "blocking"});
  t.add_row({"8", "0.0045"});
  t.add_row({"128", "0.0052"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("  N  blocking"), std::string::npos);
  EXPECT_NE(out.find("  8"), std::string::npos);
  EXPECT_NE(out.find("128"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, LeftAlignment) {
  Table t({"name", "v"}, {Align::kLeft, Align::kRight});
  t.add_row({"ab", "1"});
  t.add_row({"abcdef", "2"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("ab    "), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, AlignmentCountMismatchThrows) {
  EXPECT_THROW(Table({"a", "b"}, {Align::kLeft}), std::invalid_argument);
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableFormat, Num) {
  EXPECT_EQ(Table::num(0.00448, 3), "0.00448");
  EXPECT_EQ(Table::num(1234.5, 6), "1234.5");
}

TEST(TableFormat, Sci) {
  EXPECT_EQ(Table::sci(0.000123456, 3), "1.235e-04");
}

TEST(TableFormat, Integer) {
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::integer(1234567890123LL), "1234567890123");
}

}  // namespace
}  // namespace xbar::report
