// Sweep fault-tolerance tests: per-point isolation, numeric-guard backend
// escalation, deterministic cancellation (token, max-failures, deadline),
// and checkpoint/resume bit-identity.

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/solver_spec.hpp"
#include "sweep/checkpoint.hpp"
#include "sweep/fault_injector.hpp"
#include "sweep/sweep.hpp"

namespace xbar::sweep {
namespace {

using core::CrossbarModel;
using core::Dims;
using core::NumericBackend;
using core::SolverSpec;
using core::TrafficClass;

std::vector<ScenarioPoint> small_grid(unsigned count = 6) {
  // Distinct small models so every point is a real solve.
  std::vector<ScenarioPoint> points;
  for (unsigned n = 2; n < 2 + count; ++n) {
    points.push_back({CrossbarModel(Dims::square(n),
                                    {TrafficClass::poisson("p", 0.0024),
                                     TrafficClass::bursty("b", 0.0024, 0.0012)}),
                      std::nullopt});
  }
  return points;
}

SweepOptions isolated_options(unsigned threads = 1) {
  SweepOptions options;
  options.threads = threads;
  options.fault.isolate = true;
  return options;
}

// --- Per-point isolation --------------------------------------------------

TEST(FaultIsolation, ThrownErrorDegradesOnlyThatPoint) {
  const auto points = small_grid();
  FaultInjector injector;
  injector.add(2, FaultAction::kThrow,
               std::numeric_limits<std::size_t>::max());

  auto options = isolated_options();
  options.fault.injector = &injector;
  SweepRunner runner(options);
  const auto report = runner.run_report(points);

  ASSERT_EQ(report.statuses.size(), points.size());
  EXPECT_EQ(report.statuses[2].state, PointState::kFailed);
  EXPECT_EQ(report.statuses[2].error_kind, ErrorKind::kDomain);
  EXPECT_NE(report.statuses[2].error.find("injected fault"), std::string::npos);
  EXPECT_TRUE(report.results[2].measures.per_class.empty());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i == 2) continue;
    EXPECT_EQ(report.statuses[i].state, PointState::kOk) << "point " << i;
    EXPECT_FALSE(report.results[i].measures.per_class.empty());
  }
  EXPECT_FALSE(report.complete());
  EXPECT_EQ(report.count(PointState::kFailed), 1u);
  EXPECT_EQ(report.count(PointState::kOk), points.size() - 1);
}

TEST(FaultIsolation, WithoutIsolationErrorsStillPropagate) {
  const auto points = small_grid();
  FaultInjector injector;
  injector.add(1, FaultAction::kThrow,
               std::numeric_limits<std::size_t>::max());

  SweepOptions options;
  options.threads = 1;
  options.fault.injector = &injector;  // isolate stays false: historical
  SweepRunner runner(options);         // fail-fast contract
  EXPECT_THROW(runner.run_report(points), xbar::Error);
}

// --- Numeric guards + backend escalation ----------------------------------

TEST(Escalation, NanFirstAttemptRetriesOnNextBackend) {
  const auto points = small_grid();
  FaultInjector injector;
  injector.add(1, FaultAction::kNan);  // first attempt only

  auto options = isolated_options();
  options.fault.injector = &injector;
  options.solver = SolverSpec::fast();
  SweepRunner runner(options);
  const auto report = runner.run_report(points);

  EXPECT_EQ(report.statuses[1].state, PointState::kRetried);
  // fast resolves to the dynamic-scaling double grid; the first escalation
  // rung is ScaledFloat, which succeeds (the injector only poisoned the
  // first attempt).
  const auto& chain = report.results[1].diagnostics.escalation;
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0], NumericBackend::kDoubleDynamicScaling);
  EXPECT_EQ(chain[1], NumericBackend::kScaledFloat);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.count(PointState::kRetried), 1u);

  // The retried point's measures match an untouched solve of the same model.
  SweepRunner clean(isolated_options());
  const auto clean_report = clean.run_report(points);
  EXPECT_EQ(report.results[1].measures.revenue,
            clean_report.results[1].measures.revenue);
}

TEST(Escalation, ExhaustedLadderFailsWithGuardMessage) {
  const auto points = small_grid();
  FaultInjector injector;
  injector.add(0, FaultAction::kNan,
               std::numeric_limits<std::size_t>::max());  // every attempt

  auto options = isolated_options();
  options.fault.injector = &injector;
  SweepRunner runner(options);
  const auto report = runner.run_report(points);

  EXPECT_EQ(report.statuses[0].state, PointState::kFailed);
  EXPECT_EQ(report.statuses[0].error_kind, ErrorKind::kDomain);
  EXPECT_NE(report.statuses[0].error.find("numeric guard"), std::string::npos);
  // The full ladder was attempted: fast -> scaled -> log-domain.
  const auto& chain = report.results[0].diagnostics.escalation;
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], NumericBackend::kDoubleDynamicScaling);
  EXPECT_EQ(chain[1], NumericBackend::kScaledFloat);
  EXPECT_EQ(chain[2], NumericBackend::kLogDomain);
}

TEST(Escalation, ZeroEscalationsMeansSingleAttempt) {
  const auto points = small_grid();
  FaultInjector injector;
  injector.add(0, FaultAction::kNan);

  auto options = isolated_options();
  options.fault.injector = &injector;
  options.fault.max_escalations = 0;
  SweepRunner runner(options);
  const auto report = runner.run_report(points);

  EXPECT_EQ(report.statuses[0].state, PointState::kFailed);
  EXPECT_EQ(report.results[0].diagnostics.escalation.size(), 1u);
}

// --- Cancellation, max-failures, deadline ---------------------------------

TEST(Cancellation, PreCancelledTokenRunsNothing) {
  const auto points = small_grid();
  auto options = isolated_options();
  options.fault.token.request_cancel();
  SweepRunner runner(options);
  const auto report = runner.run_report(points);

  EXPECT_EQ(report.count(PointState::kCancelled), points.size());
  EXPECT_FALSE(report.complete());
  for (const auto& r : report.results) {
    EXPECT_TRUE(r.measures.per_class.empty());
  }
}

TEST(Cancellation, MaxFailuresTripsDeterministically) {
  const auto points = small_grid();
  FaultInjector injector;
  injector.add(1, FaultAction::kThrow,
               std::numeric_limits<std::size_t>::max());

  auto options = isolated_options(/*threads=*/1);
  options.fault.injector = &injector;
  options.fault.max_failures = 1;
  SweepRunner runner(options);
  const auto report = runner.run_report(points);

  // Serial execution claims indexes in order: 0 solves, 1 fails and trips
  // the token, everything after is never started.
  EXPECT_EQ(report.statuses[0].state, PointState::kOk);
  EXPECT_EQ(report.statuses[1].state, PointState::kFailed);
  for (std::size_t i = 2; i < points.size(); ++i) {
    EXPECT_EQ(report.statuses[i].state, PointState::kCancelled)
        << "point " << i;
  }
  EXPECT_EQ(report.count(PointState::kOk), 1u);
  EXPECT_EQ(report.count(PointState::kFailed), 1u);
  EXPECT_EQ(report.count(PointState::kCancelled), points.size() - 2);
}

TEST(Cancellation, ExpiredDeadlineCancelsRemainingPoints) {
  const auto points = small_grid();
  auto options = isolated_options();
  options.fault.deadline_seconds = 1e-9;  // already past by the first claim
  SweepRunner runner(options);
  const auto report = runner.run_report(points);

  EXPECT_FALSE(report.complete());
  EXPECT_GT(report.count(PointState::kCancelled), 0u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(report.statuses[i].state == PointState::kOk ||
                report.statuses[i].state == PointState::kCancelled);
  }
}

// --- Checkpoint/resume ----------------------------------------------------

class TempFile {
 public:
  explicit TempFile(std::string path) : path_(std::move(path)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Checkpoint, SaveLoadRoundTripsBitIdentically) {
  const auto points = small_grid();
  SweepRunner runner(isolated_options());
  const auto report = runner.run_report(points);

  SweepCheckpoint ck;
  ck.total_points = points.size();
  ck.solver = runner.options().solver.to_string();
  for (std::size_t i = 0; i < points.size(); ++i) {
    ck.completed.push_back({i, report.statuses[i], report.results[i]});
  }

  const TempFile file(::testing::TempDir() + "xbar_ck_roundtrip.json");
  save_checkpoint(file.path(), ck);
  const auto loaded = load_checkpoint(file.path());

  ASSERT_EQ(loaded.total_points, ck.total_points);
  EXPECT_EQ(loaded.solver, ck.solver);
  ASSERT_EQ(loaded.completed.size(), ck.completed.size());
  for (std::size_t i = 0; i < ck.completed.size(); ++i) {
    const auto& a = ck.completed[i];
    const auto& b = loaded.completed[i];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.status.state, b.status.state);
    const auto& ma = a.result.measures;
    const auto& mb = b.result.measures;
    ASSERT_EQ(ma.per_class.size(), mb.per_class.size());
    for (std::size_t r = 0; r < ma.per_class.size(); ++r) {
      EXPECT_EQ(ma.per_class[r].blocking, mb.per_class[r].blocking);
      EXPECT_EQ(ma.per_class[r].non_blocking, mb.per_class[r].non_blocking);
      EXPECT_EQ(ma.per_class[r].concurrency, mb.per_class[r].concurrency);
      EXPECT_EQ(ma.per_class[r].throughput, mb.per_class[r].throughput);
      EXPECT_EQ(ma.per_class[r].port_usage, mb.per_class[r].port_usage);
    }
    EXPECT_EQ(ma.revenue, mb.revenue);
    EXPECT_EQ(ma.total_throughput, mb.total_throughput);
    EXPECT_EQ(ma.utilization, mb.utilization);
    EXPECT_EQ(a.result.diagnostics.algorithm, b.result.diagnostics.algorithm);
    EXPECT_EQ(a.result.diagnostics.backend, b.result.diagnostics.backend);
    EXPECT_EQ(a.result.diagnostics.escalation, b.result.diagnostics.escalation);
  }
}

TEST(Checkpoint, KilledSweepResumesBitIdentically) {
  const auto points = small_grid();

  // Reference: one clean uninterrupted run.
  SweepRunner reference(isolated_options());
  const auto full = reference.run_report(points);
  ASSERT_TRUE(full.complete());

  // "Killed" run: points 3+ fail terminally, checkpoint written per point.
  const TempFile file(::testing::TempDir() + "xbar_ck_resume.json");
  FaultInjector injector;
  for (std::size_t i = 3; i < points.size(); ++i) {
    injector.add(i, FaultAction::kThrow,
                 std::numeric_limits<std::size_t>::max());
  }
  auto options = isolated_options();
  options.fault.injector = &injector;
  options.fault.checkpoint_every = 1;
  options.fault.checkpoint_path = file.path();
  SweepRunner crashed(options);
  const auto partial = crashed.run_report(points);
  ASSERT_FALSE(partial.complete());
  ASSERT_EQ(partial.count(PointState::kOk), 3u);

  // Resume with the fault gone: the checkpointed points must be restored
  // verbatim (no re-solve), the failed ones re-attempted and solved.
  const auto checkpoint = load_checkpoint(file.path());
  EXPECT_EQ(checkpoint.completed.size(), 3u);
  SweepRunner resumed(isolated_options());
  const auto report = resumed.resume(points, checkpoint);

  ASSERT_TRUE(report.complete());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& a = full.results[i].measures;
    const auto& b = report.results[i].measures;
    ASSERT_EQ(a.per_class.size(), b.per_class.size()) << "point " << i;
    for (std::size_t r = 0; r < a.per_class.size(); ++r) {
      EXPECT_EQ(a.per_class[r].blocking, b.per_class[r].blocking)
          << "point " << i << " class " << r;
      EXPECT_EQ(a.per_class[r].concurrency, b.per_class[r].concurrency);
    }
    EXPECT_EQ(a.revenue, b.revenue) << "point " << i;
    EXPECT_EQ(a.total_throughput, b.total_throughput);
    EXPECT_EQ(a.utilization, b.utilization);
  }
}

TEST(Checkpoint, MismatchedPointCountIsRejected) {
  const auto points = small_grid();
  SweepCheckpoint ck;
  ck.total_points = points.size() + 5;
  ck.solver = SolverSpec::fast().to_string();
  SweepRunner runner(isolated_options());
  try {
    runner.resume(points, ck);
    FAIL() << "expected xbar::Error";
  } catch (const xbar::Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kConfig);
  }
}

TEST(Checkpoint, MismatchedSolverIsRejected) {
  const auto points = small_grid();
  SweepCheckpoint ck;
  ck.total_points = points.size();
  ck.solver = "brute";
  SweepRunner runner(isolated_options());  // solver = fast
  try {
    runner.resume(points, ck);
    FAIL() << "expected xbar::Error";
  } catch (const xbar::Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kConfig);
  }
}

TEST(Checkpoint, LoadOfMissingFileRaisesIo) {
  try {
    (void)load_checkpoint("/nonexistent/xbar_checkpoint.json");
    FAIL() << "expected xbar::Error";
  } catch (const xbar::Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
}

TEST(Checkpoint, TruncatedFileRaisesParseAtEveryCutPoint) {
  // A crash mid-write must never produce a file save_checkpoint would
  // leave behind (tmp + fsync + rename guarantees that), but a checkpoint
  // torn by other means — copied mid-write, bad disk — must fail with a
  // typed parse error, never a crash or a silently partial resume.
  const auto points = small_grid();
  SweepRunner runner(isolated_options());
  const auto report = runner.run_report(points);
  SweepCheckpoint ck;
  ck.total_points = points.size();
  ck.solver = runner.options().solver.to_string();
  for (std::size_t i = 0; i < points.size(); ++i) {
    ck.completed.push_back({i, report.statuses[i], report.results[i]});
  }
  const TempFile file(::testing::TempDir() + "xbar_ck_truncate.json");
  save_checkpoint(file.path(), ck);

  std::ifstream in(file.path(), std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string full_text = buffer.str();
  ASSERT_GT(full_text.size(), 64u);

  const TempFile torn(::testing::TempDir() + "xbar_ck_torn.json");
  // Cut at a spread of byte offsets, including 0 (empty file — what a
  // non-durable writer leaves after a crash between create and write).
  for (const double fraction : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.999}) {
    const auto cut =
        static_cast<std::size_t>(fraction *
                                 static_cast<double>(full_text.size()));
    {
      std::ofstream out(torn.path(), std::ios::trunc | std::ios::binary);
      out << full_text.substr(0, cut);
    }
    try {
      (void)load_checkpoint(torn.path());
      FAIL() << "expected xbar::Error for cut at byte " << cut;
    } catch (const xbar::Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kParse) << "cut at byte " << cut;
    }
  }
}

TEST(Checkpoint, SaveLeavesNoTmpFileBehind) {
  const auto points = small_grid();
  SweepCheckpoint ck;
  ck.total_points = points.size();
  ck.solver = SolverSpec::fast().to_string();
  const TempFile file(::testing::TempDir() + "xbar_ck_clean.json");
  save_checkpoint(file.path(), ck);
  std::ifstream tmp(file.path() + ".tmp");
  EXPECT_FALSE(tmp.good());  // renamed away, not left to confuse a resume
  std::ifstream real(file.path());
  EXPECT_TRUE(real.good());
}

}  // namespace
}  // namespace xbar::sweep
