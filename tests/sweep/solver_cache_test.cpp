// SolverCache contract tests: MRU eviction order at capacity, fingerprint
// discrimination between near-identical models, and counter monotonicity
// across repeated run()/map() calls (the serving hot path counts on all
// three).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "core/solver_spec.hpp"
#include "sweep/sweep.hpp"

namespace xbar::sweep {
namespace {

core::CrossbarModel poisson_model(unsigned n, double rho) {
  return core::CrossbarModel(core::Dims::square(n),
                             {core::TrafficClass::poisson("c", rho)});
}

TEST(SolverCache, EvictsTheLeastRecentlyUsedGridAtCapacity) {
  SolverCache cache(2);
  const auto a = poisson_model(4, 0.3);
  const auto b = poisson_model(6, 0.3);
  const auto c = poisson_model(8, 0.3);

  (void)cache.eval_result(a);  // miss -> [A]
  (void)cache.eval_result(b);  // miss -> [B, A]
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);

  (void)cache.eval_result(a);  // hit, A becomes MRU -> [A, B]
  EXPECT_EQ(cache.hits(), 1u);

  (void)cache.eval_result(c);  // miss, evicts LRU = B -> [C, A]
  EXPECT_EQ(cache.misses(), 3u);

  (void)cache.eval_result(a);  // A survived the eviction
  EXPECT_EQ(cache.hits(), 2u);

  (void)cache.eval_result(b);  // B was evicted: must rebuild
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(SolverCache, FingerprintDiscriminatesNearIdenticalModels) {
  SolverCache cache(8);
  // Same dims, same shape, loads differing by one ulp: these denote
  // different computations and must not alias (the key carries the raw
  // bits of the load, not a rounded rendering).
  (void)cache.eval_result(poisson_model(8, 0.45));
  (void)cache.eval_result(poisson_model(8, std::nextafter(0.45, 1.0)));
  (void)cache.eval_result(poisson_model(8, 0.4500001));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 3u);

  // A weight-only difference changes the measures (revenue) — also a
  // distinct entry.
  (void)cache.eval_result(core::CrossbarModel(
      core::Dims::square(8),
      {core::TrafficClass::poisson("c", 0.45, 1, 1.0, 2.0)}));
  EXPECT_EQ(cache.misses(), 4u);

  // A freshly constructed but numerically identical model is the same
  // computation: exact-key compare, so it hits.
  (void)cache.eval_result(poisson_model(8, 0.45));
  EXPECT_EQ(cache.hits(), 1u);

  // Same model, different solver spec: different grid, distinct entry.
  (void)cache.eval_result(poisson_model(8, 0.45),
                          core::SolverSpec::parse("algorithm1/log-domain"));
  EXPECT_EQ(cache.misses(), 5u);
}

TEST(SolverCache, CountersAreMonotonicAcrossRunAndMapCalls) {
  SweepOptions options;
  options.threads = 1;  // one slot, so slot 0's counters see everything
  options.cache_capacity = 16;
  SweepRunner runner(options);

  std::vector<ScenarioPoint> points;
  for (const unsigned n : {4u, 6u, 8u}) {
    points.push_back({poisson_model(n, 0.4), std::nullopt});
  }

  const SweepReport first = runner.run_report(points);
  EXPECT_EQ(first.total_hits(), 0u);
  EXPECT_EQ(first.total_misses(), points.size());

  // Same points again: the per-slot caches persist across run() calls, so
  // every point hits and the cumulative counters only grow.
  const SweepReport second = runner.run_report(points);
  EXPECT_EQ(second.total_hits(), first.total_hits() + points.size());
  EXPECT_EQ(second.total_misses(), first.total_misses());

  // map() shares the same slot caches: evaluating the same models once
  // more adds hits, never resets.
  const auto blocking = runner.map<double>(points.size(), [&](std::size_t i,
                                                              SolverCache&
                                                                  cache) {
    return cache.eval(points[i].model).per_class[0].blocking;
  });
  EXPECT_EQ(blocking.size(), points.size());
  const auto slots = runner.slot_counters();
  std::size_t hits = 0;
  std::size_t misses = 0;
  for (const SweepSlotCounters& slot : slots) {
    hits += slot.hits;
    misses += slot.misses;
  }
  EXPECT_EQ(hits, second.total_hits() + points.size());
  EXPECT_EQ(misses, second.total_misses());
}

core::CrossbarModel mixed_model(unsigned n, double bump) {
  return core::CrossbarModel(
      core::Dims::square(n),
      {core::TrafficClass::poisson("p", 0.01 + bump),
       core::TrafficClass::bursty("b", 0.012 + bump, 0.005, 2)});
}

TEST(SolverCacheBatch, BatchedMissesMatchSequentialSolvesBitForBit) {
  const std::vector<core::CrossbarModel> models = {
      mixed_model(24, 0.0), mixed_model(24, 0.001), mixed_model(24, 0.002)};
  SolverCache batched(8);
  SolverCache sequential(8);
  const auto spec = core::SolverSpec::fast();
  const std::vector<core::SolveResult> batch =
      batched.eval_batch_result(models, spec);
  ASSERT_EQ(batch.size(), models.size());
  EXPECT_EQ(batched.misses(), 3u);
  EXPECT_EQ(batched.hits(), 0u);
  for (std::size_t i = 0; i < models.size(); ++i) {
    const core::SolveResult single = sequential.eval_result(models[i], spec);
    EXPECT_EQ(batch[i].measures.revenue, single.measures.revenue) << i;
    EXPECT_EQ(batch[i].measures.utilization, single.measures.utilization)
        << i;
    EXPECT_EQ(batch[i].diagnostics.backend, single.diagnostics.backend) << i;
    EXPECT_EQ(batch[i].diagnostics.rescales, single.diagnostics.rescales)
        << i;
    EXPECT_TRUE(batch[i].diagnostics.batched) << i;
    EXPECT_FALSE(batch[i].diagnostics.cache_hit) << i;
  }
}

TEST(SolverCacheBatch, CachedModelsAnswerAsHitsAndKeepTheBatchedFlag) {
  SolverCache cache(8);
  const auto spec = core::SolverSpec::fast();
  const std::vector<core::CrossbarModel> models = {mixed_model(16, 0.0),
                                                   mixed_model(16, 0.001)};
  (void)cache.eval_batch_result(models, spec);
  EXPECT_EQ(cache.misses(), 2u);

  // Second call: everything already cached, including an in-call repeat.
  const std::vector<core::CrossbarModel> repeat = {
      mixed_model(16, 0.001), mixed_model(16, 0.0), mixed_model(16, 0.001)};
  const std::vector<core::SolveResult> again =
      cache.eval_batch_result(repeat, spec);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  for (const core::SolveResult& r : again) {
    EXPECT_TRUE(r.diagnostics.cache_hit);
    EXPECT_TRUE(r.diagnostics.batched);  // the answering grid was batched
  }
}

TEST(SolverCacheBatch, NonLaneSpecsFallBackToSequentialEvaluation) {
  SolverCache cache(8);
  const core::SolverSpec spec{core::SolverAlgorithm::kAlgorithm1,
                              core::NumericBackend::kScaledFloat};
  const std::vector<core::CrossbarModel> models = {mixed_model(12, 0.0),
                                                   mixed_model(12, 0.001)};
  const std::vector<core::SolveResult> results =
      cache.eval_batch_result(models, spec);
  EXPECT_EQ(cache.misses(), 2u);
  for (const core::SolveResult& r : results) {
    EXPECT_FALSE(r.diagnostics.batched);
    EXPECT_EQ(r.diagnostics.backend, core::NumericBackend::kScaledFloat);
  }
}

TEST(SolverCacheBatch, MixedDimsSplitIntoPerDimsBatches) {
  SolverCache cache(8);
  const std::vector<core::CrossbarModel> models = {
      mixed_model(12, 0.0), mixed_model(20, 0.0), mixed_model(12, 0.001),
      mixed_model(20, 0.001)};
  const std::vector<core::SolveResult> results =
      cache.eval_batch_result(models, core::SolverSpec::fast());
  EXPECT_EQ(cache.misses(), 4u);
  SolverCache sequential(8);
  for (std::size_t i = 0; i < models.size(); ++i) {
    EXPECT_TRUE(results[i].diagnostics.batched) << i;
    EXPECT_EQ(results[i].measures.revenue,
              sequential.eval(models[i], core::SolverSpec::fast()).revenue)
        << i;
  }
}

TEST(SolverCacheBatch, CapacitySmallerThanTheBatchStillAnswersEveryModel) {
  SolverCache cache(2);
  std::vector<core::CrossbarModel> models;
  for (int i = 0; i < 5; ++i) {
    models.push_back(mixed_model(16, 0.0005 * i));
  }
  const std::vector<core::SolveResult> results =
      cache.eval_batch_result(models, core::SolverSpec::fast());
  ASSERT_EQ(results.size(), 5u);
  SolverCache sequential(8);
  for (std::size_t i = 0; i < models.size(); ++i) {
    EXPECT_EQ(results[i].measures.revenue,
              sequential.eval(models[i], core::SolverSpec::fast()).revenue)
        << i;
  }
}

}  // namespace
}  // namespace xbar::sweep
