// Fingerprint stability under the fabric dimension.  The contract: specs on
// the default crossbar produce exactly the cache keys they produced before
// fabrics existed (legacy checkpoints and warm caches stay valid), while any
// non-default fabric is a distinct computation with a distinct entry.

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "core/solver_spec.hpp"
#include "sweep/sweep.hpp"

namespace xbar::sweep {
namespace {

core::CrossbarModel poisson_model(unsigned n, double rho) {
  return core::CrossbarModel(core::Dims::square(n),
                             {core::TrafficClass::poisson("c", rho)});
}

TEST(FabricFingerprint, ExplicitCrossbarAliasesTheLegacyKey) {
  // "fast" predates the fabric dimension; "fast@crossbar" must land on the
  // same entry — the regression pin that legacy keys did not shift.
  SolverCache cache(8);
  const auto model = poisson_model(8, 0.4);
  (void)cache.eval_result(model, core::SolverSpec::parse("fast"));
  EXPECT_EQ(cache.misses(), 1u);
  (void)cache.eval_result(model, core::SolverSpec::parse("fast@crossbar"));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FabricFingerprint, EachFabricIsADistinctEntry) {
  SolverCache cache(8);
  const auto model = poisson_model(8, 0.4);
  (void)cache.eval_result(model, core::SolverSpec::parse("fast"));
  (void)cache.eval_result(model, core::SolverSpec::parse("fast@speedup-2"));
  (void)cache.eval_result(model, core::SolverSpec::parse("fast@speedup-3"));
  (void)cache.eval_result(model, core::SolverSpec::parse("auto@priority"));
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 0u);

  // Re-asking each is a hit — fabric entries cache like any other.
  (void)cache.eval_result(model, core::SolverSpec::parse("fast@speedup-2"));
  (void)cache.eval_result(model, core::SolverSpec::parse("auto@priority"));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(FabricFingerprint, SpeedupEntriesAnswerFromTheScaledGrid) {
  SolverCache cache(8);
  const auto model = poisson_model(6, 0.4);
  const auto result =
      cache.eval_result(model, core::SolverSpec::parse("fast@speedup-2"));
  EXPECT_EQ(result.diagnostics.grid.n1, 12u);
  EXPECT_EQ(result.diagnostics.evaluated_at.n1, 12u);
  EXPECT_EQ(result.diagnostics.fabric, core::FabricModel::speedup_s(2));

  // The cached grid serves repeat queries without a rebuild.
  const auto again =
      cache.eval_result(model, core::SolverSpec::parse("fast@speedup-2"));
  EXPECT_TRUE(again.diagnostics.cache_hit);
  EXPECT_EQ(again.measures.per_class[0].blocking,
            result.measures.per_class[0].blocking);
}

TEST(FabricFingerprint, PriorityEntriesCacheTheCtmc) {
  SolverCache cache(8);
  const auto model = poisson_model(4, 1.2);
  const auto result =
      cache.eval_result(model, core::SolverSpec::parse("auto@priority"));
  EXPECT_EQ(result.diagnostics.algorithm, core::SolverAlgorithm::kPriorityCtmc);
  EXPECT_FALSE(result.diagnostics.cache_hit);
  const auto again =
      cache.eval_result(model, core::SolverSpec::parse("auto@priority"));
  EXPECT_TRUE(again.diagnostics.cache_hit);
  EXPECT_EQ(again.measures.revenue, result.measures.revenue);
}

TEST(FabricFingerprint, SweepRunnerThreadsFabricSpecsThrough) {
  SweepOptions options;
  options.threads = 1;
  options.solver = core::SolverSpec::parse("fast@speedup-2");
  SweepRunner runner(options);
  std::vector<ScenarioPoint> points;
  for (const unsigned n : {4u, 6u}) {
    points.push_back({poisson_model(n, 0.3), std::nullopt});
  }
  const SweepReport report = runner.run_report(points);
  ASSERT_TRUE(report.complete());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(report.results[i].diagnostics.fabric,
              core::FabricModel::speedup_s(2))
        << i;
    EXPECT_EQ(report.results[i].diagnostics.grid.n1,
              points[i].model.dims().n1 * 2)
        << i;
  }
}

TEST(FabricFingerprint, BatchKeepsFabricEntriesApart) {
  SolverCache cache(8);
  const std::vector<core::CrossbarModel> models = {poisson_model(6, 0.3),
                                                   poisson_model(6, 0.35)};
  const auto plain =
      cache.eval_batch_result(models, core::SolverSpec::fast());
  const auto scaled = cache.eval_batch_result(
      models, core::SolverSpec::parse("fast@speedup-2"));
  EXPECT_EQ(cache.misses(), 4u);  // nothing aliased
  for (std::size_t i = 0; i < models.size(); ++i) {
    EXPECT_EQ(plain[i].diagnostics.grid.n1, 6u) << i;
    EXPECT_EQ(scaled[i].diagnostics.grid.n1, 12u) << i;
    // Scaled measures genuinely differ from the plain crossbar's.
    EXPECT_NE(plain[i].measures.per_class[0].blocking,
              scaled[i].measures.per_class[0].blocking)
        << i;
  }
}

}  // namespace
}  // namespace xbar::sweep
