// Sweep engine tests: pool correctness (every index exactly once, exception
// propagation, nested submission), bit-identical results across thread
// counts, solver cache reuse, and dimension sweeps answering every size
// from one max-N grid.

#include "sweep/sweep.hpp"

#include <atomic>
#include <stdexcept>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "core/solver.hpp"
#include "sweep/thread_pool.hpp"

namespace xbar::sweep {
namespace {

using core::CrossbarModel;
using core::Dims;
using core::TrafficClass;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(counts.size(), 0, [&](std::size_t i, unsigned) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPool, ZeroIndexesIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, 0, [&](std::size_t, unsigned) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ConcurrencyOneRunsSerially) {
  ThreadPool pool(3);
  std::vector<unsigned> slots;
  pool.parallel_for(50, 1, [&](std::size_t, unsigned slot) {
    slots.push_back(slot);  // safe: single participant
  });
  EXPECT_EQ(slots.size(), 50u);
  for (const unsigned s : slots) {
    EXPECT_EQ(s, 0u);
  }
}

TEST(ThreadPool, SlotIdsAreDense) {
  ThreadPool pool(3);
  pool.parallel_for(200, 0, [&](std::size_t, unsigned slot) {
    EXPECT_LT(slot, 4u);  // workers + caller
  });
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100, 0,
                                 [&](std::size_t i, unsigned) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> total{0};
  pool.parallel_for(10, 0, [&](std::size_t, unsigned) { ++total; });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, NestedSubmissionFallsBackInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> counts(64);
  pool.parallel_for(8, 0, [&](std::size_t outer, unsigned) {
    pool.parallel_for(8, 0, [&](std::size_t inner, unsigned) {
      counts[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

std::vector<ScenarioPoint> figure_grid() {
  // A small figure-style grid: sizes x peakedness, aggregate rates held
  // fixed so every point is a distinct model.
  std::vector<ScenarioPoint> points;
  for (const unsigned n : {2u, 4u, 8u, 12u}) {
    for (const double beta : {0.0, 0.0012, 0.0036}) {
      points.push_back(
          {CrossbarModel(Dims::square(n),
                         {TrafficClass::poisson("p", 0.0024),
                          TrafficClass::bursty("b", 0.0024, beta)}),
           std::nullopt});
    }
  }
  return points;
}

TEST(SweepRunner, ResultsMatchDirectSolve) {
  const auto points = figure_grid();
  SweepRunner runner;
  const auto results = runner.run(points);
  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto direct = core::solve(points[i].model);
    for (std::size_t r = 0; r < 2; ++r) {
      EXPECT_NEAR(results[i].per_class[r].blocking,
                  direct.per_class[r].blocking, 1e-10)
          << "point " << i << " class " << r;
    }
  }
}

TEST(SweepRunner, BitIdenticalAcrossThreadCounts) {
  const auto points = figure_grid();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions wide;
  wide.threads = 8;
  ThreadPool pool(7);
  wide.pool = &pool;
  const auto r1 = SweepRunner(serial).run_report(points);
  const auto r8 = SweepRunner(wide).run_report(points);
  ASSERT_EQ(r1.results.size(), r8.results.size());
  for (std::size_t i = 0; i < r1.results.size(); ++i) {
    const auto& m1 = r1.results[i].measures;
    const auto& m8 = r8.results[i].measures;
    // Exact equality on purpose: the schedule must not leak into values.
    EXPECT_EQ(m1.utilization, m8.utilization) << i;
    EXPECT_EQ(m1.revenue, m8.revenue) << i;
    for (std::size_t r = 0; r < m1.per_class.size(); ++r) {
      EXPECT_EQ(m1.per_class[r].blocking, m8.per_class[r].blocking)
          << i << "," << r;
      EXPECT_EQ(m1.per_class[r].concurrency, m8.per_class[r].concurrency)
          << i << "," << r;
    }
    // Diagnostics contract: what solved a point depends on the point alone,
    // never on the schedule.
    const auto& d1 = r1.results[i].diagnostics;
    const auto& d8 = r8.results[i].diagnostics;
    EXPECT_EQ(d1.algorithm, d8.algorithm) << i;
    EXPECT_EQ(d1.backend, d8.backend) << i;
    EXPECT_EQ(d1.fast_fallback, d8.fast_fallback) << i;
    EXPECT_EQ(d1.rescales, d8.rescales) << i;
  }
}

TEST(SweepRunner, SolverChoicesAgree) {
  const auto points = figure_grid();
  std::vector<std::vector<core::Measures>> all;
  for (const std::string_view spec :
       {"fast", "algorithm1", "algorithm1/long-double", "algorithm2",
        "auto"}) {
    SweepOptions options;
    options.solver = core::SolverSpec::parse(spec);
    all.push_back(SweepRunner(options).run(points));
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t s = 1; s < all.size(); ++s) {
      for (std::size_t r = 0; r < 2; ++r) {
        EXPECT_NEAR(all[0][i].per_class[r].blocking,
                    all[s][i].per_class[r].blocking, 1e-8)
            << "solver " << s << " point " << i;
      }
    }
  }
}

TEST(SolverCache, RepeatEvaluationsHitTheCache) {
  const CrossbarModel model(Dims::square(6),
                            {TrafficClass::bursty("b", 0.01, 0.005)});
  SolverCache cache;
  const auto first = cache.eval(model);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  const auto second = cache.eval(model);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.per_class[0].blocking, second.per_class[0].blocking);
}

TEST(SolverCache, DistinctModelsDoNotAlias) {
  const CrossbarModel a(Dims::square(6),
                        {TrafficClass::bursty("b", 0.01, 0.005)});
  const CrossbarModel b(Dims::square(6),
                        {TrafficClass::bursty("b", 0.01, 0.006)});
  SolverCache cache;
  const auto ma = cache.eval(a);
  const auto mb = cache.eval(b);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_NE(ma.per_class[0].blocking, mb.per_class[0].blocking);
}

TEST(SolverCache, EvictsBeyondCapacity) {
  SolverCache cache(2);
  std::vector<CrossbarModel> models;
  for (unsigned n = 2; n <= 5; ++n) {
    models.emplace_back(Dims::square(n),
                        std::vector<TrafficClass>{
                            TrafficClass::bursty("b", 0.01, 0.005)});
  }
  for (const auto& m : models) {
    cache.eval(m);
  }
  EXPECT_EQ(cache.misses(), models.size());
  // The oldest entry was evicted; re-evaluating it misses again.
  cache.eval(models[0]);
  EXPECT_EQ(cache.misses(), models.size() + 1);
}

TEST(SweepRunner, DimensionSweepReusesOneGrid) {
  // Fixed per-tuple rates: one grid at the max size answers every entry.
  const CrossbarModel model(Dims::square(16),
                            {TrafficClass::bursty("b", 0.08, 0.04, 2)});
  const std::vector<Dims> sizes = {Dims::square(4), Dims::square(8),
                                   Dims{8, 16}, Dims::square(16)};
  SweepOptions options;
  options.threads = 1;  // single slot so cache counters are meaningful
  SweepRunner runner(options);
  const auto results = runner.dimension_sweep(model, sizes);
  ASSERT_EQ(results.size(), sizes.size());
  EXPECT_EQ(runner.cache(0).misses(), 1u);
  EXPECT_EQ(runner.cache(0).hits(), sizes.size() - 1);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto direct =
        core::solve(model.with_dims_same_tuple_rates(sizes[i]));
    EXPECT_NEAR(results[i].per_class[0].blocking,
                direct.per_class[0].blocking, 1e-9)
        << "size " << i;
  }
}

TEST(SweepRunner, ReportCountsCacheTraffic) {
  const auto points = figure_grid();
  SweepOptions options;
  options.threads = 1;         // single slot so the counters are exact
  options.cache_capacity = points.size();
  SweepRunner runner(options);

  const auto cold = runner.run_report(points);
  ASSERT_EQ(cold.results.size(), points.size());
  ASSERT_EQ(cold.slots.size(), 1u);
  EXPECT_EQ(cold.total_misses(), points.size());
  EXPECT_EQ(cold.total_hits(), 0u);
  for (const auto& res : cold.results) {
    EXPECT_FALSE(res.diagnostics.cache_hit);
  }

  // Re-running the same grid is the serving hot path: every point hits.
  const auto warm = runner.run_report(points);
  EXPECT_EQ(warm.total_misses(), points.size());  // counters are cumulative
  EXPECT_EQ(warm.total_hits(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(warm.results[i].diagnostics.cache_hit) << i;
    EXPECT_EQ(warm.results[i].measures.per_class[0].blocking,
              cold.results[i].measures.per_class[0].blocking)
        << i;
  }
}

TEST(SweepRunner, DimensionSweepReportSurfacesGridReuse) {
  const CrossbarModel model(Dims::square(16),
                            {TrafficClass::bursty("b", 0.08, 0.04, 2)});
  const std::vector<Dims> sizes = {Dims::square(4), Dims::square(8),
                                   Dims::square(16)};
  SweepOptions options;
  options.threads = 1;
  SweepRunner runner(options);
  const auto report = runner.dimension_sweep_report(model, sizes);
  EXPECT_EQ(report.total_misses(), 1u);  // one max-N grid answers everything
  EXPECT_EQ(report.total_hits(), sizes.size() - 1);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(report.results[i].diagnostics.evaluated_at, sizes[i]) << i;
    EXPECT_EQ(report.results[i].diagnostics.grid, Dims::square(16)) << i;
  }
}

TEST(SweepRunner, BruteForceSpecBypassesTheCache) {
  // Brute force is the test oracle, not a cached grid: it solves directly
  // and leaves the counters untouched.
  std::vector<ScenarioPoint> points;
  points.push_back({CrossbarModel(Dims::square(3),
                                  {TrafficClass::bursty("b", 0.02, 0.01)}),
                    std::nullopt});
  SweepOptions options;
  options.threads = 1;
  options.solver = core::SolverSpec::brute_force();
  SweepRunner runner(options);
  const auto report = runner.run_report(points);
  EXPECT_EQ(report.total_hits() + report.total_misses(), 0u);
  EXPECT_EQ(report.results[0].diagnostics.algorithm,
            core::SolverAlgorithm::kBruteForce);
  const auto direct =
      core::solve(points[0].model, core::SolverSpec::brute_force());
  EXPECT_EQ(report.results[0].measures.per_class[0].blocking,
            direct.per_class[0].blocking);
}

TEST(SweepRunner, FastSolverFallsBackDeterministically) {
  // A model whose raw-double grid would drift needs the ScaledFloat
  // fallback; running it through kFast twice (and at different thread
  // counts) must give the exact same numbers.
  std::vector<ScenarioPoint> points;
  for (const unsigned n : {32u, 48u}) {
    points.push_back({CrossbarModel(Dims::square(n),
                                    {TrafficClass::bursty("b", 0.002, 0.001)}),
                      std::nullopt});
  }
  SweepOptions serial;
  serial.threads = 1;
  const auto a = SweepRunner(serial).run(points);
  const auto b = SweepRunner(SweepOptions{}).run(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(a[i].per_class[0].blocking, b[i].per_class[0].blocking) << i;
  }
}

TEST(SweepRunner, SameDimsPointsBatchThroughOneTraversalAndStayWarm) {
  std::vector<ScenarioPoint> points;
  for (const double beta : {0.001, 0.002, 0.003, 0.004}) {
    points.push_back({CrossbarModel(Dims::square(20),
                                    {TrafficClass::poisson("p", 0.01),
                                     TrafficClass::bursty("b", 0.01, beta)}),
                      std::nullopt});
  }
  SweepOptions options;
  options.threads = 1;  // single slot so counters and grouping are exact
  SweepRunner runner(options);
  const auto cold = runner.run_report(points);
  ASSERT_EQ(cold.results.size(), points.size());
  EXPECT_EQ(cold.total_misses(), points.size());

  // Every point shares dims and the kFast lane backend, so the whole sweep
  // was one grid traversal — and it must be bit-identical to sequential,
  // never-batched solves.
  SolverCache sequential(8);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(cold.results[i].diagnostics.batched) << i;
    EXPECT_EQ(cold.statuses[i].state, PointState::kOk) << i;
    const core::SolveResult single = sequential.eval_result(points[i].model);
    EXPECT_EQ(cold.results[i].measures.revenue, single.measures.revenue)
        << i;
    EXPECT_EQ(cold.results[i].measures.utilization,
              single.measures.utilization)
        << i;
    EXPECT_EQ(cold.results[i].diagnostics.rescales,
              single.diagnostics.rescales)
        << i;
  }

  // The warm path must still answer from the per-slot cache.
  const auto warm = runner.run_report(points);
  EXPECT_EQ(warm.total_hits(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(warm.results[i].diagnostics.cache_hit) << i;
    EXPECT_EQ(warm.results[i].measures.revenue,
              cold.results[i].measures.revenue)
        << i;
  }

  // Isolation changes fault handling, not results: same measures, kOk.
  SweepOptions isolated;
  isolated.threads = 1;
  isolated.fault.isolate = true;
  SweepRunner guarded(isolated);
  const auto report = guarded.run_report(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(report.statuses[i].state, PointState::kOk) << i;
    EXPECT_EQ(report.results[i].measures.revenue,
              cold.results[i].measures.revenue)
        << i;
  }
}

}  // namespace
}  // namespace xbar::sweep
