#include "fabric/lee_model.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "fabric/banyan.hpp"
#include "sim/simulator.hpp"

namespace xbar::fabric {
namespace {

TEST(LeeModel, FixedPointConverges) {
  const auto r = solve_lee({.ports = 16, .stages = 4, .arrival_rate = 8.0,
                            .mu = 1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.carried, 0.0);
  EXPECT_LT(r.carried, 16.0);
  EXPECT_GT(r.blocking, 0.0);
  EXPECT_LT(r.blocking, 1.0);
}

TEST(LeeModel, ZeroLoadGivesZeroBlocking) {
  const auto r = solve_lee({.ports = 8, .stages = 3,
                            .arrival_rate = 1e-9, .mu = 1.0});
  EXPECT_NEAR(r.blocking, 0.0, 1e-8);
  EXPECT_NEAR(r.carried, 1e-9, 1e-10);
}

TEST(LeeModel, FlowBalanceHoldsAtFixedPoint) {
  const LeeParams p{.ports = 16, .stages = 4, .arrival_rate = 6.0, .mu = 2.0};
  const auto r = solve_lee(p);
  // Lambda (1 - B) = E mu.
  EXPECT_NEAR(p.arrival_rate * (1.0 - r.blocking), r.carried * p.mu, 1e-6);
}

TEST(LeeModel, BlockingMonotoneInLoad) {
  double prev = -1.0;
  for (const double lam : {0.5, 2.0, 8.0, 32.0}) {
    const auto r = solve_lee({.ports = 16, .stages = 4,
                              .arrival_rate = lam, .mu = 1.0});
    EXPECT_GT(r.blocking, prev);
    prev = r.blocking;
  }
}

TEST(LeeModel, MoreStagesBlockMore) {
  // Extra link columns can only hurt.
  const auto few = solve_lee({.ports = 16, .stages = 2,
                              .arrival_rate = 8.0, .mu = 1.0});
  const auto many = solve_lee({.ports = 16, .stages = 6,
                               .arrival_rate = 8.0, .mu = 1.0});
  EXPECT_GT(many.blocking, few.blocking);
}

TEST(LeeModel, BanyanExceedsCrossbarApproximation) {
  for (const double rho : {0.2, 0.5, 1.0}) {
    EXPECT_GT(lee_banyan(16, rho).blocking,
              lee_crossbar(16, rho).blocking)
        << rho;
  }
}

TEST(LeeModel, CrossbarVariantTracksExactModelShape) {
  // Lee's S = 1 view of the crossbar is only an approximation (it ignores
  // the joint port-occupancy distribution) but must land within a modest
  // factor of the exact model across moderate loads.
  for (const double rho : {0.25, 0.5, 1.0, 2.0}) {
    const core::CrossbarModel model(core::Dims::square(16),
                                    {core::TrafficClass::poisson("p", rho)});
    const double exact = core::solve(model).per_class[0].blocking;
    const double lee = lee_crossbar(16, rho).blocking;
    EXPECT_GT(lee, exact * 0.3) << rho;
    EXPECT_LT(lee, exact * 3.0) << rho;
  }
}

TEST(LeeModel, PredictsSimulatedBanyanWithinFactorTwo) {
  // The headline check: Lee's approximation against the real omega network.
  const double rho = 1.0;
  const unsigned n = 16;
  const core::CrossbarModel model(core::Dims::square(n),
                                  {core::TrafficClass::poisson("p", rho)});
  BanyanFabric fabric(n);
  sim::SimulationConfig cfg;
  cfg.warmup_time = 500.0;
  cfg.measurement_time = 15'000.0;
  cfg.num_batches = 20;
  cfg.seed = 12345;
  sim::Simulator simulator(model, fabric, cfg);
  const double simulated =
      simulator.run().per_class[0].call_congestion.mean;
  const double lee = lee_banyan(n, rho).blocking;
  EXPECT_GT(lee, simulated * 0.5);
  EXPECT_LT(lee, simulated * 2.0);
}

}  // namespace
}  // namespace xbar::fabric
