// SpeedupFabric: virtual-port bookkeeping, physical-port load accounting,
// and all-or-nothing bundle semantics.

#include "fabric/speedup_fabric.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace xbar::fabric {
namespace {

TEST(SpeedupFabric, ExposesTheScaledVirtualDimensions) {
  const SpeedupFabric fabric(4, 6, 2);
  EXPECT_EQ(fabric.num_inputs(), 8u);
  EXPECT_EQ(fabric.num_outputs(), 12u);
  EXPECT_EQ(fabric.speedup(), 2u);
  EXPECT_EQ(fabric.free_inputs(), 8u);
  EXPECT_EQ(fabric.free_outputs(), 12u);
  EXPECT_TRUE(fabric.check_invariants());
}

TEST(SpeedupFabric, OnePhysicalPortCarriesSpeedupCircuits) {
  SpeedupFabric fabric(4, 4, 3);
  // Virtual inputs 0, 4, 8 are the three appearances of physical input 0.
  std::vector<CircuitId> ids;
  for (unsigned plane = 0; plane < 3; ++plane) {
    const unsigned vin = plane * 4 + 0;
    const unsigned vout = plane * 4 + 1;
    const auto id = fabric.try_connect(std::vector<unsigned>{vin},
                                       std::vector<unsigned>{vout});
    ASSERT_TRUE(id.has_value()) << plane;
    ids.push_back(*id);
  }
  EXPECT_EQ(fabric.input_load(0), 3u);
  EXPECT_EQ(fabric.output_load(1), 3u);
  EXPECT_EQ(fabric.input_load(1), 0u);
  EXPECT_EQ(fabric.active_circuits(), 3u);

  // Every appearance of physical input 0 is busy: a fourth circuit on any
  // of its virtual ports is refused.
  EXPECT_FALSE(fabric
                   .try_connect(std::vector<unsigned>{0u},
                                std::vector<unsigned>{2u})
                   .has_value());
  EXPECT_TRUE(fabric.check_invariants());

  fabric.release(ids[1]);
  EXPECT_EQ(fabric.input_load(0), 2u);
  EXPECT_TRUE(fabric
                  .try_connect(std::vector<unsigned>{4u},
                               std::vector<unsigned>{6u})
                  .has_value());
  EXPECT_TRUE(fabric.check_invariants());
}

TEST(SpeedupFabric, BundlesAreAllOrNothing) {
  SpeedupFabric fabric(3, 3, 2);
  // Occupy virtual output 5, then request a bundle that needs it: the
  // whole bundle must fail and leave the other named ports untouched.
  const auto hold = fabric.try_connect(std::vector<unsigned>{5u},
                                       std::vector<unsigned>{5u});
  ASSERT_TRUE(hold.has_value());

  const std::vector<unsigned> ins = {0u, 1u};
  const std::vector<unsigned> outs = {0u, 5u};
  EXPECT_FALSE(fabric.try_connect(ins, outs).has_value());
  EXPECT_FALSE(fabric.input_busy(0));
  EXPECT_FALSE(fabric.input_busy(1));
  EXPECT_FALSE(fabric.output_busy(0));
  EXPECT_EQ(fabric.active_circuits(), 1u);
  EXPECT_TRUE(fabric.check_invariants());

  // Without the conflict the same bundle connects.
  EXPECT_TRUE(fabric
                  .try_connect(ins, std::vector<unsigned>{0u, 1u})
                  .has_value());
  EXPECT_TRUE(fabric.check_invariants());
}

TEST(SpeedupFabric, NameRecordsTheSpeedupAndPhysicalDims) {
  const SpeedupFabric fabric(4, 6, 2);
  EXPECT_EQ(fabric.name(), "speedup-2(4x6)");
}

}  // namespace
}  // namespace xbar::fabric
