// BanyanFabric bundle atomicity: a multi-pair try_connect that fails — on a
// busy end port or an internal link conflict, even after earlier pairs in
// the bundle routed cleanly — must leave the switching state bit-identical
// to the state before the call.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "fabric/banyan.hpp"

namespace xbar::fabric {
namespace {

// Every observable bit of switching state (the rejection counters are
// diagnostics, not switch state, and are allowed to advance).
struct Snapshot {
  std::vector<bool> input_busy;
  std::vector<bool> output_busy;
  unsigned free_inputs;
  unsigned free_outputs;
  unsigned active_circuits;

  explicit Snapshot(const BanyanFabric& fabric)
      : free_inputs(fabric.free_inputs()),
        free_outputs(fabric.free_outputs()),
        active_circuits(fabric.active_circuits()) {
    for (unsigned p = 0; p < fabric.num_inputs(); ++p) {
      input_busy.push_back(fabric.input_busy(p));
      output_busy.push_back(fabric.output_busy(p));
    }
  }

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

TEST(BanyanRollback, FailedBundleLeavesStateBitIdentical) {
  BanyanFabric fabric(8);
  // Occupy a circuit whose omega path will collide with part of the bundle
  // below (0 -> 0 shares first-stage links with 4 -> 1 in an 8-port omega).
  const auto held = fabric.try_connect(std::vector<unsigned>{0u},
                                       std::vector<unsigned>{0u});
  ASSERT_TRUE(held.has_value());

  const Snapshot before(fabric);
  ASSERT_TRUE(fabric.check_invariants());

  // Find a two-pair bundle whose first pair routes cleanly and whose
  // second conflicts internally with the held circuit (all end ports
  // free).  Searching keeps the test independent of shuffle details.
  bool exercised_internal = false;
  for (unsigned in2 = 1; in2 < 8 && !exercised_internal; ++in2) {
    for (unsigned out2 = 1; out2 < 8 && !exercised_internal; ++out2) {
      for (unsigned in1 = 1; in1 < 8 && !exercised_internal; ++in1) {
        for (unsigned out1 = 1; out1 < 8 && !exercised_internal; ++out1) {
          if (in1 == in2 || out1 == out2) {
            continue;
          }
          const std::uint64_t internal_before = fabric.rejected_internal();
          const std::vector<unsigned> ins = {in1, in2};
          const std::vector<unsigned> outs = {out1, out2};
          if (const auto id = fabric.try_connect(ins, outs)) {
            // Bundle connected: undo and keep searching for a conflict.
            EXPECT_NE(Snapshot(fabric), before);
            fabric.release(*id);
            EXPECT_EQ(Snapshot(fabric), before);
            continue;
          }
          if (fabric.rejected_internal() > internal_before) {
            exercised_internal = true;
          }
          // Failed — whatever the reason, the state must be untouched.
          EXPECT_EQ(Snapshot(fabric), before)
              << "bundle {" << in1 << "," << in2 << "}->{" << out1 << ","
              << out2 << "}";
          EXPECT_TRUE(fabric.check_invariants());
        }
      }
    }
  }
  EXPECT_TRUE(exercised_internal)
      << "no internally-conflicting bundle found; the test lost its teeth";
}

TEST(BanyanRollback, BusyPortRejectionAfterCleanPairsRollsBack) {
  BanyanFabric fabric(8);
  const auto held = fabric.try_connect(std::vector<unsigned>{3u},
                                       std::vector<unsigned>{3u});
  ASSERT_TRUE(held.has_value());
  const Snapshot before(fabric);

  // First pair (1 -> 1) is fully connectable; the second names the busy
  // output 3, so the port scan rejects the bundle up front.
  EXPECT_FALSE(fabric
                   .try_connect(std::vector<unsigned>{1u, 2u},
                                std::vector<unsigned>{1u, 3u})
                   .has_value());
  EXPECT_EQ(Snapshot(fabric), before);
  EXPECT_TRUE(fabric.check_invariants());

  // And the clean pair is still connectable on its own — nothing leaked.
  EXPECT_TRUE(fabric
                  .try_connect(std::vector<unsigned>{1u},
                               std::vector<unsigned>{1u})
                  .has_value());
  EXPECT_TRUE(fabric.check_invariants());
}

}  // namespace
}  // namespace xbar::fabric
