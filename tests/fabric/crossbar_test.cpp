#include "fabric/crossbar.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "dist/rng.hpp"

namespace xbar::fabric {
namespace {

TEST(CrossbarFabric, StartsIdle) {
  const CrossbarFabric f(4, 6);
  EXPECT_EQ(f.num_inputs(), 4u);
  EXPECT_EQ(f.num_outputs(), 6u);
  EXPECT_EQ(f.free_inputs(), 4u);
  EXPECT_EQ(f.free_outputs(), 6u);
  EXPECT_EQ(f.active_circuits(), 0u);
  EXPECT_FALSE(f.input_busy(0));
  EXPECT_FALSE(f.output_busy(5));
  EXPECT_TRUE(f.check_invariants());
}

TEST(CrossbarFabric, RejectsZeroDimensions) {
  EXPECT_THROW(CrossbarFabric(0, 3), std::invalid_argument);
  EXPECT_THROW(CrossbarFabric(3, 0), std::invalid_argument);
}

TEST(CrossbarFabric, ConnectMarksPortsAndCrosspoints) {
  CrossbarFabric f(4, 4);
  const std::vector<unsigned> in = {1};
  const std::vector<unsigned> out = {2};
  const auto id = f.try_connect(in, out);
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(f.input_busy(1));
  EXPECT_TRUE(f.output_busy(2));
  EXPECT_TRUE(f.crosspoint_closed(1, 2));
  EXPECT_FALSE(f.crosspoint_closed(1, 1));
  EXPECT_EQ(f.free_inputs(), 3u);
  EXPECT_EQ(f.free_outputs(), 3u);
  EXPECT_EQ(f.active_circuits(), 1u);
  EXPECT_TRUE(f.check_invariants());
}

TEST(CrossbarFabric, ReleaseRestoresState) {
  CrossbarFabric f(4, 4);
  const std::vector<unsigned> in = {0, 3};
  const std::vector<unsigned> out = {1, 2};
  const auto id = f.try_connect(in, out);
  ASSERT_TRUE(id.has_value());
  f.release(*id);
  EXPECT_EQ(f.free_inputs(), 4u);
  EXPECT_EQ(f.free_outputs(), 4u);
  EXPECT_EQ(f.active_circuits(), 0u);
  EXPECT_FALSE(f.crosspoint_closed(0, 1));
  EXPECT_TRUE(f.check_invariants());
}

TEST(CrossbarFabric, RejectsBusyInput) {
  CrossbarFabric f(4, 4);
  const std::vector<unsigned> a = {1};
  const std::vector<unsigned> b = {3};
  ASSERT_TRUE(f.try_connect(a, b).has_value());
  EXPECT_FALSE(f.try_connect(a, std::vector<unsigned>{0}).has_value());
}

TEST(CrossbarFabric, RejectsBusyOutput) {
  CrossbarFabric f(4, 4);
  ASSERT_TRUE(
      f.try_connect(std::vector<unsigned>{1}, std::vector<unsigned>{3})
          .has_value());
  EXPECT_FALSE(
      f.try_connect(std::vector<unsigned>{0}, std::vector<unsigned>{3})
          .has_value());
}

TEST(CrossbarFabric, FailedConnectLeavesStateUntouched) {
  // All-or-nothing: a bundle whose second pair conflicts must not leave the
  // first pair connected.
  CrossbarFabric f(4, 4);
  ASSERT_TRUE(
      f.try_connect(std::vector<unsigned>{2}, std::vector<unsigned>{2})
          .has_value());
  const std::vector<unsigned> in = {0, 2};  // 2 is busy
  const std::vector<unsigned> out = {0, 1};
  EXPECT_FALSE(f.try_connect(in, out).has_value());
  EXPECT_FALSE(f.input_busy(0));
  EXPECT_FALSE(f.output_busy(0));
  EXPECT_EQ(f.active_circuits(), 1u);
  EXPECT_TRUE(f.check_invariants());
}

TEST(CrossbarFabric, InternallyNonBlocking) {
  // Any free-input/free-output pair must connect, whatever else is up.
  CrossbarFabric f(8, 8);
  for (unsigned i = 0; i < 8; i += 2) {
    ASSERT_TRUE(f.try_connect(std::vector<unsigned>{i},
                              std::vector<unsigned>{7 - i})
                    .has_value());
  }
  // Odd inputs and remaining outputs are still all connectable.
  for (unsigned i = 1; i < 8; i += 2) {
    EXPECT_TRUE(f.try_connect(std::vector<unsigned>{i},
                              std::vector<unsigned>{7 - i})
                    .has_value());
  }
  EXPECT_EQ(f.free_inputs(), 0u);
  EXPECT_EQ(f.active_circuits(), 8u);
}

TEST(CrossbarFabric, ReleaseUnknownIdThrows) {
  CrossbarFabric f(2, 2);
  EXPECT_THROW(f.release(CircuitId{999}), std::logic_error);
}

TEST(CrossbarFabric, DoubleReleaseThrows) {
  CrossbarFabric f(2, 2);
  const auto id = f.try_connect(std::vector<unsigned>{0},
                                std::vector<unsigned>{0});
  ASSERT_TRUE(id.has_value());
  f.release(*id);
  EXPECT_THROW(f.release(*id), std::logic_error);
}

TEST(CrossbarFabric, MultiPairBundleOccupiesAllPairs) {
  CrossbarFabric f(6, 6);
  const std::vector<unsigned> in = {0, 2, 4};
  const std::vector<unsigned> out = {5, 3, 1};
  const auto id = f.try_connect(in, out);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(f.free_inputs(), 3u);
  EXPECT_TRUE(f.crosspoint_closed(0, 5));
  EXPECT_TRUE(f.crosspoint_closed(2, 3));
  EXPECT_TRUE(f.crosspoint_closed(4, 1));
  EXPECT_EQ(f.active_circuits(), 1u);
  f.release(*id);
  EXPECT_TRUE(f.check_invariants());
}

TEST(CrossbarFabric, InvariantsHoldUnderRandomChurn) {
  CrossbarFabric f(12, 10);
  dist::Xoshiro256 rng(2024);
  std::vector<CircuitId> live;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.uniform01() < 0.55) {
      const unsigned a = 1 + static_cast<unsigned>(rng.uniform_below(3));
      std::vector<unsigned> in;
      std::vector<unsigned> out;
      while (in.size() < a) {
        const auto c = static_cast<unsigned>(rng.uniform_below(12));
        if (std::find(in.begin(), in.end(), c) == in.end()) {
          in.push_back(c);
        }
      }
      while (out.size() < a) {
        const auto c = static_cast<unsigned>(rng.uniform_below(10));
        if (std::find(out.begin(), out.end(), c) == out.end()) {
          out.push_back(c);
        }
      }
      if (const auto id = f.try_connect(in, out)) {
        live.push_back(*id);
      }
    } else {
      const auto pick = rng.uniform_below(live.size());
      f.release(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (step % 100 == 0) {
      ASSERT_TRUE(f.check_invariants()) << "step " << step;
    }
  }
  for (const auto id : live) {
    f.release(id);
  }
  EXPECT_TRUE(f.check_invariants());
  EXPECT_EQ(f.active_circuits(), 0u);
  EXPECT_EQ(f.free_inputs(), 12u);
}

TEST(CrossbarFabric, NameDescribesGeometry) {
  EXPECT_EQ(CrossbarFabric(8, 16).name(), "crossbar(8x16)");
}

}  // namespace
}  // namespace xbar::fabric
