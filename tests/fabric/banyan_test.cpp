#include "fabric/banyan.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "dist/rng.hpp"

namespace xbar::fabric {
namespace {

TEST(BanyanFabric, RequiresPowerOfTwo) {
  EXPECT_THROW(BanyanFabric(0), std::invalid_argument);
  EXPECT_THROW(BanyanFabric(1), std::invalid_argument);
  EXPECT_THROW(BanyanFabric(6), std::invalid_argument);
  EXPECT_NO_THROW(BanyanFabric(2));
  EXPECT_NO_THROW(BanyanFabric(64));
}

TEST(BanyanFabric, StageCountIsLog2) {
  EXPECT_EQ(BanyanFabric(2).num_stages(), 1u);
  EXPECT_EQ(BanyanFabric(8).num_stages(), 3u);
  EXPECT_EQ(BanyanFabric(64).num_stages(), 6u);
}

TEST(BanyanFabric, RouteDeliversToDestination) {
  // The omega route's final link position must equal the destination (the
  // route() implementation asserts this internally; verify observable form).
  const BanyanFabric f(16);
  for (unsigned src = 0; src < 16; ++src) {
    for (unsigned dst = 0; dst < 16; ++dst) {
      const auto path = f.route(src, dst);
      ASSERT_EQ(path.size(), 4u);
      EXPECT_EQ(path.back(), dst) << src << "->" << dst;
    }
  }
}

TEST(BanyanFabric, RouteIsDeterministic) {
  const BanyanFabric f(8);
  EXPECT_EQ(f.route(3, 5), f.route(3, 5));
}

TEST(BanyanFabric, DistinctSourcesToDistinctDestinationsMayShareLinks) {
  // The classic omega blocking example on N=8: (0 -> 0) and (4 -> 1) collide
  // at the first stage (both shuffle to element 0 and want its upper port).
  BanyanFabric f(8);
  const auto id = f.try_connect(std::vector<unsigned>{0},
                                std::vector<unsigned>{0});
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(f.try_connect(std::vector<unsigned>{4},
                             std::vector<unsigned>{1})
                   .has_value());
  EXPECT_EQ(f.rejected_internal(), 1u);
  EXPECT_EQ(f.rejected_port(), 0u);
}

TEST(BanyanFabric, InternalBlockingWithAllPortsFree) {
  // Count how many single-circuit pairs block against one established
  // circuit: must be > 0 (internal blocking) but far from all.
  BanyanFabric f(16);
  ASSERT_TRUE(f.try_connect(std::vector<unsigned>{0},
                            std::vector<unsigned>{0})
                  .has_value());
  unsigned internal_blocked = 0;
  unsigned attempts = 0;
  for (unsigned src = 1; src < 16; ++src) {
    for (unsigned dst = 1; dst < 16; ++dst) {
      ++attempts;
      BanyanFabric probe(16);
      ASSERT_TRUE(probe
                      .try_connect(std::vector<unsigned>{0},
                                   std::vector<unsigned>{0})
                      .has_value());
      if (!probe
               .try_connect(std::vector<unsigned>{src},
                            std::vector<unsigned>{dst})
               .has_value()) {
        ++internal_blocked;
      }
    }
  }
  EXPECT_GT(internal_blocked, 0u);
  EXPECT_LT(internal_blocked, attempts / 2);
}

TEST(BanyanFabric, PortConflictCountedAsPortRejection) {
  BanyanFabric f(8);
  ASSERT_TRUE(f.try_connect(std::vector<unsigned>{1},
                            std::vector<unsigned>{2})
                  .has_value());
  EXPECT_FALSE(f.try_connect(std::vector<unsigned>{1},
                             std::vector<unsigned>{3})
                   .has_value());
  EXPECT_EQ(f.rejected_port(), 1u);
  EXPECT_EQ(f.rejected_internal(), 0u);
}

TEST(BanyanFabric, ReleaseFreesLinksForReuse) {
  BanyanFabric f(8);
  const auto id = f.try_connect(std::vector<unsigned>{0},
                                std::vector<unsigned>{0});
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(f.try_connect(std::vector<unsigned>{4},
                             std::vector<unsigned>{1})
                   .has_value());
  f.release(*id);
  EXPECT_TRUE(f.try_connect(std::vector<unsigned>{4},
                            std::vector<unsigned>{1})
                  .has_value());
  EXPECT_TRUE(f.check_invariants());
}

TEST(BanyanFabric, IdentityPermutationRoutesWithoutConflict) {
  // The identity permutation is omega-passable when established one circuit
  // at a time?  Not in general — but a uniform shift dst = src is the
  // classic passable example for omega networks.  Verify it.
  BanyanFabric f(8);
  unsigned established = 0;
  for (unsigned i = 0; i < 8; ++i) {
    if (f.try_connect(std::vector<unsigned>{i}, std::vector<unsigned>{i})) {
      ++established;
    }
  }
  EXPECT_EQ(established, 8u);
  EXPECT_TRUE(f.check_invariants());
}

TEST(BanyanFabric, BundleIsAllOrNothing) {
  BanyanFabric f(8);
  // Bundle whose two pairs conflict with each other internally: (0->0) and
  // (4->1) share a first-stage link, so the bundle must fail cleanly.
  const std::vector<unsigned> in = {0, 4};
  const std::vector<unsigned> out = {0, 1};
  EXPECT_FALSE(f.try_connect(in, out).has_value());
  EXPECT_EQ(f.active_circuits(), 0u);
  EXPECT_EQ(f.free_inputs(), 8u);
  EXPECT_TRUE(f.check_invariants());
  EXPECT_EQ(f.rejected_internal(), 1u);
}

TEST(BanyanFabric, InvariantsHoldUnderRandomChurn) {
  BanyanFabric f(16);
  dist::Xoshiro256 rng(77);
  std::vector<CircuitId> live;
  for (int step = 0; step < 4000; ++step) {
    if (live.empty() || rng.uniform01() < 0.6) {
      const auto src = static_cast<unsigned>(rng.uniform_below(16));
      const auto dst = static_cast<unsigned>(rng.uniform_below(16));
      if (const auto id = f.try_connect(std::vector<unsigned>{src},
                                        std::vector<unsigned>{dst})) {
        live.push_back(*id);
      }
    } else {
      const auto pick = rng.uniform_below(live.size());
      f.release(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (step % 100 == 0) {
      ASSERT_TRUE(f.check_invariants()) << "step " << step;
    }
  }
  // Some internal blocking must have been observed under this much churn.
  EXPECT_GT(f.rejected_internal() + f.rejected_port(), 0u);
}

TEST(BanyanFabric, MoreInternalBlockingThanCrossbarByConstruction) {
  // Establish random circuits on both fabrics with identical request
  // sequences; the banyan must reject at least as many.
  dist::Xoshiro256 rng(31);
  BanyanFabric banyan(16);
  unsigned banyan_rejects = 0;
  unsigned banyan_accepts = 0;
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<unsigned>(rng.uniform_below(16));
    const auto dst = static_cast<unsigned>(rng.uniform_below(16));
    if (banyan.try_connect(std::vector<unsigned>{src},
                           std::vector<unsigned>{dst})) {
      ++banyan_accepts;
    } else {
      ++banyan_rejects;
    }
  }
  EXPECT_GT(banyan.rejected_internal(), 0u);
  EXPECT_GT(banyan_accepts, 0u);
}

TEST(BanyanFabric, NameDescribesGeometry) {
  EXPECT_EQ(BanyanFabric(8).name(), "banyan(8x8, 3 stages)");
}

}  // namespace
}  // namespace xbar::fabric
