// PriorityFabric: the arbiter gate in front of an ordinary crossbar —
// reservation headroom per rank, rejection accounting, and rank-0
// equivalence to the unarbitrated switch.

#include "fabric/priority_fabric.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace xbar::fabric {
namespace {

std::vector<unsigned> ports(std::initializer_list<unsigned> p) { return p; }

TEST(PriorityFabric, RankZeroBehavesLikeThePlainCrossbar) {
  PriorityFabric fabric(4, 4);
  EXPECT_EQ(fabric.num_inputs(), 4u);
  EXPECT_EQ(fabric.num_outputs(), 4u);
  // Rank 0 reserves nothing: it can fill the switch completely.
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_TRUE(fabric.try_connect(ports({i}), ports({i}), 0).has_value())
        << i;
  }
  EXPECT_EQ(fabric.busy_pairs(), 4u);
  EXPECT_EQ(fabric.arbiter_rejections(), 0u);
}

TEST(PriorityFabric, LowerRanksMustLeaveHeadroom) {
  PriorityFabric fabric(4, 4, 1);
  // Rank 2 reserves 2 pairs: it may use at most cap - 2 = 2.
  ASSERT_TRUE(fabric.try_connect(ports({0}), ports({0}), 2).has_value());
  ASSERT_TRUE(fabric.try_connect(ports({1}), ports({1}), 2).has_value());
  EXPECT_FALSE(fabric.try_connect(ports({2}), ports({2}), 2).has_value());
  EXPECT_EQ(fabric.arbiter_rejections(), 1u);
  // Ports 2 and 3 are physically free — only the gate refused.
  EXPECT_FALSE(fabric.input_busy(2));
  EXPECT_FALSE(fabric.output_busy(2));

  // Rank 1 may take one more (up to 3 pairs), rank 0 the last.
  ASSERT_TRUE(fabric.try_connect(ports({2}), ports({2}), 1).has_value());
  EXPECT_FALSE(fabric.try_connect(ports({3}), ports({3}), 1).has_value());
  EXPECT_TRUE(fabric.try_connect(ports({3}), ports({3}), 0).has_value());
  EXPECT_EQ(fabric.busy_pairs(), 4u);
  EXPECT_EQ(fabric.arbiter_rejections(), 2u);
}

TEST(PriorityFabric, ReleaseReturnsHeadroomToTheArbiter) {
  PriorityFabric fabric(3, 3, 1);
  const auto a = fabric.try_connect(ports({0}), ports({0}), 1);
  const auto b = fabric.try_connect(ports({1}), ports({1}), 1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Rank 1's budget (cap - 1 = 2 pairs) is exhausted.
  EXPECT_FALSE(fabric.try_connect(ports({2}), ports({2}), 1).has_value());
  fabric.release(*a);
  EXPECT_EQ(fabric.busy_pairs(), 1u);
  EXPECT_TRUE(fabric.try_connect(ports({2}), ports({2}), 1).has_value());
}

TEST(PriorityFabric, GateCountsPairsAcrossMultiPortBundles) {
  PriorityFabric fabric(4, 4, 1);
  // A two-pair bundle at rank 1 needs busy + 2 <= cap - 1 = 3.
  ASSERT_TRUE(
      fabric.try_connect(ports({0, 1}), ports({0, 1}), 1).has_value());
  EXPECT_EQ(fabric.busy_pairs(), 2u);
  EXPECT_FALSE(
      fabric.try_connect(ports({2, 3}), ports({2, 3}), 1).has_value());
  EXPECT_EQ(fabric.arbiter_rejections(), 1u);
  // The same bundle at rank 0 passes the gate and the crossbar.
  EXPECT_TRUE(
      fabric.try_connect(ports({2, 3}), ports({2, 3}), 0).has_value());
}

TEST(PriorityFabric, BusyPortsStillRejectAfterTheGate) {
  PriorityFabric fabric(4, 4, 1);
  ASSERT_TRUE(fabric.try_connect(ports({0}), ports({0}), 0).has_value());
  const auto before = fabric.arbiter_rejections();
  // Gate passes (1 + 1 <= 4), but input 0 is busy: a port rejection, not an
  // arbiter rejection.
  EXPECT_FALSE(fabric.try_connect(ports({0}), ports({1}), 0).has_value());
  EXPECT_EQ(fabric.arbiter_rejections(), before);
  EXPECT_EQ(fabric.busy_pairs(), 1u);
}

TEST(PriorityFabric, NameRecordsDimsAndStep) {
  const PriorityFabric fabric(4, 6, 2);
  EXPECT_EQ(fabric.name(), "priority(4x6,step=2)");
}

}  // namespace
}  // namespace xbar::fabric
