#include "numeric/kahan.hpp"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace xbar::num {
namespace {

TEST(KahanSum, EmptyIsZero) { EXPECT_EQ(KahanSum{}.value(), 0.0); }

TEST(KahanSum, SimpleSum) {
  KahanSum s;
  s.add(1.0);
  s.add(2.0);
  s += 3.0;
  EXPECT_DOUBLE_EQ(s.value(), 6.0);
}

TEST(KahanSum, InitialValueConstructor) {
  KahanSum s(10.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.value(), 10.5);
}

TEST(KahanSum, RecoversSmallTermsNextToHugeOnes) {
  // 1 + 1e16 - 1e16 == 1 exactly with compensation; plain double loses it.
  KahanSum s;
  s.add(1.0);
  s.add(1e16);
  s.add(-1e16);
  EXPECT_DOUBLE_EQ(s.value(), 1.0);

  double plain = 1.0;
  plain += 1e16;
  plain -= 1e16;
  EXPECT_NE(plain, 1.0);  // demonstrates why compensation matters
}

TEST(KahanSum, HandlesTermLargerThanRunningSum) {
  // The Neumaier variant compensates in both directions.
  KahanSum s;
  s.add(1.0);
  s.add(1e100);
  s.add(1.0);
  s.add(-1e100);
  EXPECT_DOUBLE_EQ(s.value(), 2.0);
}

TEST(KahanSum, ManySmallTermsBeatNaiveSummation) {
  KahanSum s;
  double naive = 0.0;
  constexpr int kN = 10'000'000;
  constexpr double kTerm = 0.1;
  for (int i = 0; i < kN; ++i) {
    s.add(kTerm);
    naive += kTerm;
  }
  const double exact = kTerm * kN;
  EXPECT_LT(std::fabs(s.value() - exact), std::fabs(naive - exact));
  EXPECT_NEAR(s.value(), exact, 1e-6);
}

TEST(KahanSum, ResetClearsState) {
  KahanSum s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.value(), 0.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.value(), 2.0);
}

TEST(KahanSum, RandomShuffleInvariance) {
  // Sum of randomly ordered values across magnitudes is stable.
  std::mt19937_64 gen(1);
  std::vector<double> values;
  for (int e = -20; e <= 20; ++e) {
    values.push_back(std::ldexp(1.0, e));
    values.push_back(-std::ldexp(1.0, e) / 3.0);
  }
  KahanSum forward;
  for (const double v : values) {
    forward.add(v);
  }
  std::shuffle(values.begin(), values.end(), gen);
  KahanSum shuffled;
  for (const double v : values) {
    shuffled.add(v);
  }
  EXPECT_NEAR(forward.value(), shuffled.value(),
              1e-15 * std::fabs(forward.value()));
}

}  // namespace
}  // namespace xbar::num
