#include "numeric/combinatorics.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace xbar::num {
namespace {

TEST(FactorialExact, SmallValues) {
  EXPECT_EQ(factorial_exact(0), 1u);
  EXPECT_EQ(factorial_exact(1), 1u);
  EXPECT_EQ(factorial_exact(5), 120u);
  EXPECT_EQ(factorial_exact(12), 479001600u);
  EXPECT_EQ(factorial_exact(20), 2432902008176640000ull);
}

TEST(FactorialExact, OverflowsPast20) {
  EXPECT_FALSE(factorial_exact(21).has_value());
  EXPECT_FALSE(factorial_exact(100).has_value());
}

TEST(FallingFactorialExact, Definition) {
  EXPECT_EQ(falling_factorial_exact(5, 0), 1u);
  EXPECT_EQ(falling_factorial_exact(5, 1), 5u);
  EXPECT_EQ(falling_factorial_exact(5, 2), 20u);
  EXPECT_EQ(falling_factorial_exact(5, 5), 120u);
  EXPECT_EQ(falling_factorial_exact(5, 6), 0u);  // a > n
  EXPECT_EQ(falling_factorial_exact(128, 2), 128u * 127u);
}

TEST(FallingFactorialExact, DetectsOverflow) {
  EXPECT_FALSE(falling_factorial_exact(1u << 20, 4).has_value());
  EXPECT_TRUE(falling_factorial_exact(1u << 20, 3).has_value());
}

TEST(BinomialExact, PascalTriangleRelation) {
  for (unsigned n = 1; n <= 30; ++n) {
    for (unsigned k = 1; k < n; ++k) {
      EXPECT_EQ(*binomial_exact(n, k),
                *binomial_exact(n - 1, k - 1) + *binomial_exact(n - 1, k))
          << n << " choose " << k;
    }
  }
}

TEST(BinomialExact, EdgeValues) {
  EXPECT_EQ(binomial_exact(0, 0), 1u);
  EXPECT_EQ(binomial_exact(10, 0), 1u);
  EXPECT_EQ(binomial_exact(10, 10), 1u);
  EXPECT_EQ(binomial_exact(10, 11), 0u);
  EXPECT_EQ(binomial_exact(52, 5), 2598960u);
  EXPECT_EQ(binomial_exact(256, 2), 32640u);
}

TEST(BinomialExact, LargeSymmetric) {
  // C(60, 30) fits in uint64.
  EXPECT_EQ(binomial_exact(60, 30), 118264581564861424ull);
}

TEST(LogFactorial, MatchesExactForSmallN) {
  for (unsigned n = 0; n <= 20; ++n) {
    EXPECT_NEAR(log_factorial(n),
                std::log(static_cast<double>(*factorial_exact(n))), 1e-10);
  }
}

TEST(LogFactorial, TableAndLgammaAgreeAtBoundary) {
  EXPECT_NEAR(log_factorial(1024), std::lgamma(1025.0), 1e-8);
  EXPECT_NEAR(log_factorial(1025), std::lgamma(1026.0), 1e-8);
}

TEST(LogFallingFactorial, ConsistentWithLogs) {
  EXPECT_NEAR(log_falling_factorial(128, 2), std::log(128.0 * 127.0), 1e-12);
  EXPECT_EQ(log_falling_factorial(3, 4),
            -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(log_falling_factorial(7, 0), 0.0);
}

TEST(LogBinomial, ConsistentWithExact) {
  for (unsigned n = 0; n <= 40; n += 4) {
    for (unsigned k = 0; k <= n; k += 3) {
      EXPECT_NEAR(log_binomial(n, k),
                  std::log(static_cast<double>(*binomial_exact(n, k))), 1e-9);
    }
  }
}

TEST(FallingFactorialDouble, ExactInIntegerRangeAndFiniteBeyond) {
  EXPECT_DOUBLE_EQ(falling_factorial(6, 3), 120.0);
  EXPECT_EQ(falling_factorial(3, 5), 0.0);
  const double huge = falling_factorial(100000, 8);
  EXPECT_TRUE(std::isfinite(huge));
  EXPECT_NEAR(std::log(huge), log_falling_factorial(100000, 8), 1e-9);
}

TEST(BinomialDouble, ExactInIntegerRange) {
  EXPECT_DOUBLE_EQ(binomial(10, 4), 210.0);
  EXPECT_EQ(binomial(4, 9), 0.0);
}

TEST(PermutationBinomialIdentity, PEqualsCKFactorial) {
  // P(n,a) = C(n,a) * a! — the identity behind errata #1 in DESIGN.md.
  for (unsigned n = 1; n <= 20; ++n) {
    for (unsigned a = 0; a <= n && a <= 6; ++a) {
      EXPECT_EQ(*falling_factorial_exact(n, a),
                *binomial_exact(n, a) * *factorial_exact(a));
    }
  }
}

}  // namespace
}  // namespace xbar::num
