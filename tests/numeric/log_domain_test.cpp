#include "numeric/log_domain.hpp"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace xbar::num {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

TEST(LogAdd, MatchesDirectComputation) {
  std::mt19937_64 gen(5);
  std::uniform_real_distribution<double> dist(-20.0, 20.0);
  for (int i = 0; i < 1000; ++i) {
    const double a = dist(gen);
    const double b = dist(gen);
    EXPECT_NEAR(log_add(a, b), std::log(std::exp(a) + std::exp(b)), 1e-12);
  }
}

TEST(LogAdd, HandlesExtremeMagnitudes) {
  // Directly exponentiating 1000 overflows; log_add must not.
  EXPECT_NEAR(log_add(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-12);
  EXPECT_NEAR(log_add(-1000.0, -1000.0), -1000.0 + std::log(2.0), 1e-12);
  // A vastly smaller operand is absorbed.
  EXPECT_DOUBLE_EQ(log_add(0.0, -1000.0), std::log1p(std::exp(-1000.0)));
}

TEST(LogAdd, ZeroOperandIsIdentity) {
  EXPECT_EQ(log_add(kNegInf, 3.0), 3.0);
  EXPECT_EQ(log_add(3.0, kNegInf), 3.0);
  EXPECT_EQ(log_add(kNegInf, kNegInf), kNegInf);
}

TEST(LogAdd, Commutative) {
  EXPECT_DOUBLE_EQ(log_add(1.5, -2.5), log_add(-2.5, 1.5));
}

TEST(LogSub, MatchesDirectComputation) {
  EXPECT_NEAR(log_sub(std::log(5.0), std::log(3.0)), std::log(2.0), 1e-12);
  EXPECT_EQ(log_sub(2.0, 2.0), kNegInf);
  EXPECT_EQ(log_sub(2.0, kNegInf), 2.0);
}

TEST(LogSub, NearCancellationStaysFinitePrecision) {
  const double a = std::log(1.0 + 1e-12);
  EXPECT_NEAR(log_sub(a, 0.0), std::log(1e-12), 1e-3);
}

TEST(LogSum, AccumulatesUniformTerms) {
  LogSum s;
  for (int i = 0; i < 1000; ++i) {
    s.add_log(0.0);  // 1000 terms of exp(0) = 1
  }
  EXPECT_NEAR(s.log_value(), std::log(1000.0), 1e-12);
  EXPECT_NEAR(s.value(), 1000.0, 1e-9);
}

TEST(LogSum, EmptyIsZero) {
  LogSum s;
  EXPECT_EQ(s.log_value(), kNegInf);
  EXPECT_EQ(s.value(), 0.0);
}

TEST(LogSum, AddLinear) {
  LogSum s;
  s.add(2.0);
  s.add(3.0);
  EXPECT_NEAR(s.value(), 5.0, 1e-12);
}

TEST(LogSum, GeometricSeriesAcrossHundredsOfDecades) {
  // sum_{k=0..600} 10^{-k} = 10/9 * (1 - 10^{-601}) ~ 1.111...
  LogSum s;
  for (int k = 0; k <= 600; ++k) {
    s.add_log(-k * std::log(10.0));
  }
  EXPECT_NEAR(s.value(), 10.0 / 9.0, 1e-12);
}

}  // namespace
}  // namespace xbar::num
