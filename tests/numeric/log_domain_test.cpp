#include "numeric/log_domain.hpp"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace xbar::num {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

TEST(LogAdd, MatchesDirectComputation) {
  std::mt19937_64 gen(5);
  std::uniform_real_distribution<double> dist(-20.0, 20.0);
  for (int i = 0; i < 1000; ++i) {
    const double a = dist(gen);
    const double b = dist(gen);
    EXPECT_NEAR(log_add(a, b), std::log(std::exp(a) + std::exp(b)), 1e-12);
  }
}

TEST(LogAdd, HandlesExtremeMagnitudes) {
  // Directly exponentiating 1000 overflows; log_add must not.
  EXPECT_NEAR(log_add(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-12);
  EXPECT_NEAR(log_add(-1000.0, -1000.0), -1000.0 + std::log(2.0), 1e-12);
  // A vastly smaller operand is absorbed.
  EXPECT_DOUBLE_EQ(log_add(0.0, -1000.0), std::log1p(std::exp(-1000.0)));
}

TEST(LogAdd, ZeroOperandIsIdentity) {
  EXPECT_EQ(log_add(kNegInf, 3.0), 3.0);
  EXPECT_EQ(log_add(3.0, kNegInf), 3.0);
  EXPECT_EQ(log_add(kNegInf, kNegInf), kNegInf);
}

TEST(LogAdd, Commutative) {
  EXPECT_DOUBLE_EQ(log_add(1.5, -2.5), log_add(-2.5, 1.5));
}

TEST(LogSub, MatchesDirectComputation) {
  EXPECT_NEAR(log_sub(std::log(5.0), std::log(3.0)), std::log(2.0), 1e-12);
  EXPECT_EQ(log_sub(2.0, 2.0), kNegInf);
  EXPECT_EQ(log_sub(2.0, kNegInf), 2.0);
}

TEST(LogSub, NearCancellationStaysFinitePrecision) {
  const double a = std::log(1.0 + 1e-12);
  EXPECT_NEAR(log_sub(a, 0.0), std::log(1e-12), 1e-3);
}

TEST(LogSum, AccumulatesUniformTerms) {
  LogSum s;
  for (int i = 0; i < 1000; ++i) {
    s.add_log(0.0);  // 1000 terms of exp(0) = 1
  }
  EXPECT_NEAR(s.log_value(), std::log(1000.0), 1e-12);
  EXPECT_NEAR(s.value(), 1000.0, 1e-9);
}

TEST(LogSum, EmptyIsZero) {
  LogSum s;
  EXPECT_EQ(s.log_value(), kNegInf);
  EXPECT_EQ(s.value(), 0.0);
}

TEST(LogSum, AddLinear) {
  LogSum s;
  s.add(2.0);
  s.add(3.0);
  EXPECT_NEAR(s.value(), 5.0, 1e-12);
}

TEST(LogSum, GeometricSeriesAcrossHundredsOfDecades) {
  // sum_{k=0..600} 10^{-k} = 10/9 * (1 - 10^{-601}) ~ 1.111...
  LogSum s;
  for (int k = 0; k <= 600; ++k) {
    s.add_log(-k * std::log(10.0));
  }
  EXPECT_NEAR(s.value(), 10.0 / 9.0, 1e-12);
}

TEST(SignedLog, ConstructsFromLinearValues) {
  EXPECT_TRUE(SignedLog{}.is_zero());
  EXPECT_TRUE(SignedLog(0.0).is_zero());
  EXPECT_EQ(SignedLog(5.0).sign(), 1);
  EXPECT_EQ(SignedLog(-5.0).sign(), -1);
  EXPECT_DOUBLE_EQ(SignedLog(5.0).value(), 5.0);
  EXPECT_DOUBLE_EQ(SignedLog(-5.0).value(), -5.0);
  EXPECT_DOUBLE_EQ(SignedLog(3.0).log(), std::log(3.0));
  EXPECT_EQ(SignedLog{}.log(), kNegInf);
  EXPECT_TRUE(std::isnan(SignedLog(-3.0).log()));
}

TEST(SignedLog, ArithmeticMatchesLinearDomain) {
  std::mt19937_64 gen(11);
  std::uniform_real_distribution<double> dist(-50.0, 50.0);
  for (int i = 0; i < 1000; ++i) {
    const double a = dist(gen);
    const double b = dist(gen);
    const SignedLog la(a);
    const SignedLog lb(b);
    EXPECT_NEAR((la + lb).value(), a + b, 1e-9 * (std::abs(a) + std::abs(b)));
    EXPECT_NEAR((la * lb).value(), a * b, 1e-9 * std::abs(a * b));
    if (b != 0.0) {
      EXPECT_NEAR((la / lb).value(), a / b, 1e-9 * std::abs(a / b));
    }
  }
}

TEST(SignedLog, OppositeSignsCancelExactly) {
  const SignedLog a(7.25);
  const SignedLog b(-7.25);
  EXPECT_TRUE((a + b).is_zero());
  EXPECT_EQ((a + b).value(), 0.0);
}

TEST(SignedLog, ZeroIsAdditiveIdentityAndMultiplicativeSink) {
  const SignedLog x(4.5);
  const SignedLog zero;
  EXPECT_EQ(x + zero, x);
  EXPECT_EQ(zero + x, x);
  EXPECT_TRUE((x * zero).is_zero());
  EXPECT_TRUE((zero / x).is_zero());
}

TEST(SignedLog, SurvivesMagnitudesFarBeyondDoubleRange) {
  // exp(5000) overflows any IEEE double; the log-domain product and sum
  // stay finite in log space.  This is the property that makes kLogDomain
  // the escalation ladder's last resort.
  const SignedLog huge = SignedLog::from_log(5000.0);
  const SignedLog product = huge * huge;
  EXPECT_EQ(product.sign(), 1);
  EXPECT_DOUBLE_EQ(product.log_magnitude(), 10000.0);
  const SignedLog sum = product + product;
  EXPECT_NEAR(sum.log_magnitude(), 10000.0 + std::log(2.0), 1e-12);
  // Ratios of astronomically large values recover ordinary magnitudes.
  EXPECT_NEAR((sum / product).value(), 2.0, 1e-12);

  const SignedLog tiny = SignedLog::from_log(-5000.0);
  EXPECT_FALSE(tiny.is_zero());  // a double would have underflowed to 0
  EXPECT_NEAR((tiny / tiny).value(), 1.0, 1e-12);
}

TEST(SignedLog, OrderingIsTotalOverSigns) {
  const SignedLog neg(-2.0);
  const SignedLog zero;
  const SignedLog small(1.0);
  const SignedLog big(3.0);
  EXPECT_LT(neg, zero);
  EXPECT_LT(zero, small);
  EXPECT_LT(small, big);
  EXPECT_LT(SignedLog(-3.0), SignedLog(-2.0));  // more negative is smaller
  EXPECT_FALSE(zero < zero);
  EXPECT_FALSE(big < small);
}

TEST(SignedLog, CompoundAssignmentAccumulates) {
  SignedLog acc;
  for (int i = 1; i <= 10; ++i) {
    acc += SignedLog(static_cast<double>(i));
  }
  EXPECT_NEAR(acc.value(), 55.0, 1e-12);
}

}  // namespace
}  // namespace xbar::num
