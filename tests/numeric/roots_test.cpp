#include "numeric/roots.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace xbar::num {
namespace {

TEST(Bisect, FindsSimpleRoot) {
  const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, RejectsInvalidBracket) {
  EXPECT_FALSE(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0)
                   .has_value());
}

TEST(Bisect, AcceptsRootAtEndpoint) {
  const auto r = bisect([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, 0.0, 1e-10);
}

TEST(Bisect, HonorsIterationCap) {
  RootOptions opts;
  opts.max_iterations = 3;
  opts.x_tolerance = 0.0;
  const auto r =
      bisect([](double x) { return x - 0.123456789; }, 0.0, 1.0, opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->converged);
  EXPECT_EQ(r->iterations, 3);
}

TEST(Brent, FindsRootFasterThanBisection) {
  int brent_calls = 0;
  int bisect_calls = 0;
  const auto f = [](int* counter) {
    return [counter](double x) {
      ++*counter;
      return std::cos(x) - x;
    };
  };
  RootOptions opts;
  opts.x_tolerance = 1e-14;
  const auto rb = brent(f(&brent_calls), 0.0, 1.0, opts);
  const auto ri = bisect(f(&bisect_calls), 0.0, 1.0, opts);
  ASSERT_TRUE(rb && rb->converged);
  ASSERT_TRUE(ri && ri->converged);
  EXPECT_NEAR(rb->x, 0.7390851332151607, 1e-10);
  EXPECT_LT(brent_calls, bisect_calls);
}

TEST(Brent, HandlesFlatRegions) {
  // cubic with inflection at the root
  const auto r = brent([](double x) { return x * x * x; }, -1.0, 2.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, 0.0, 1e-6);
}

TEST(Brent, RejectsInvalidBracket) {
  EXPECT_FALSE(
      brent([](double x) { return std::exp(x); }, 0.0, 1.0).has_value());
}

TEST(ExpandBracket, GrowsUntilSignChange) {
  const auto b =
      expand_bracket([](double x) { return x - 100.0; }, 0.0, 1.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_LE(b->first, 100.0);
  EXPECT_GE(b->second, 100.0);
}

TEST(ExpandBracket, GivesUpWhenNoRoot) {
  EXPECT_FALSE(expand_bracket([](double) { return 1.0; }, 0.0, 1.0, 10)
                   .has_value());
}

TEST(BrentOnBlockingShapedCurve, ConvergesOnSteepExponential) {
  // Blocking-vs-load curves are convex and steep; emulate with 1-exp(-kx).
  const auto f = [](double x) { return 1.0 - std::exp(-50.0 * x) - 0.005; };
  const auto b = expand_bracket(f, 0.0, 1e-6);
  ASSERT_TRUE(b.has_value());
  const auto r = brent(f, b->first, b->second);
  ASSERT_TRUE(r && r->converged);
  EXPECT_NEAR(1.0 - std::exp(-50.0 * r->x), 0.005, 1e-9);
}

}  // namespace
}  // namespace xbar::num
