#include "numeric/gradient.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace xbar::num {
namespace {

TEST(ForwardDifference, LinearFunctionIsExact) {
  const ScalarFn f = [](double x) { return 3.0 * x + 2.0; };
  EXPECT_NEAR(forward_difference(f, 1.0, 1e-6), 3.0, 1e-9);
}

TEST(ForwardDifference, FirstOrderErrorOnQuadratic) {
  const ScalarFn f = [](double x) { return x * x; };
  // d/dx x^2 at 1 is 2; forward difference has O(h) bias ~ h.
  const double h = 1e-3;
  EXPECT_NEAR(forward_difference(f, 1.0, h), 2.0 + h, 1e-9);
}

TEST(CentralDifference, QuadraticIsExact) {
  const ScalarFn f = [](double x) { return x * x; };
  EXPECT_NEAR(central_difference(f, 3.0, 1e-3), 6.0, 1e-9);
}

TEST(CentralDifference, TranscendentalAccuracy) {
  const ScalarFn f = [](double x) { return std::exp(std::sin(x)); };
  const double x = 0.7;
  const double exact = std::cos(x) * std::exp(std::sin(x));
  EXPECT_NEAR(central_difference(f, x, default_step(x)), exact, 1e-9);
}

TEST(RichardsonDerivative, BeatsPlainCentralDifference) {
  const ScalarFn f = [](double x) { return std::sin(10.0 * x); };
  const double x = 0.3;
  const double exact = 10.0 * std::cos(10.0 * x);
  const double h = 1e-2;
  const double central_err = std::fabs(central_difference(f, x, h) - exact);
  const double rich_err = std::fabs(richardson_derivative(f, x, h) - exact);
  EXPECT_LT(rich_err, central_err / 10.0);
}

TEST(DefaultStep, ScalesWithArgument) {
  EXPECT_GT(default_step(1e6), default_step(1.0) * 1e5);
  EXPECT_DOUBLE_EQ(default_step(0.0), default_step(0.5));  // absolute floor
  EXPECT_GT(default_step(0.0), 0.0);
}

}  // namespace
}  // namespace xbar::num
