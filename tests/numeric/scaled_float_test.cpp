#include "numeric/scaled_float.hpp"

#include <cmath>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

namespace xbar::num {
namespace {

TEST(ScaledFloat, DefaultIsZero) {
  ScaledFloat z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.to_double(), 0.0);
  EXPECT_EQ(z.log(), -std::numeric_limits<double>::infinity());
}

TEST(ScaledFloat, RoundTripsDoubles) {
  for (const double v : {1.0, 0.5, 2.0, 3.141592653589793, 1e-300, 1e300,
                         123456.789, 7.0 / 3.0}) {
    EXPECT_DOUBLE_EQ(ScaledFloat{v}.to_double(), v) << v;
    EXPECT_DOUBLE_EQ(ScaledFloat{-v}.to_double(), -v) << -v;
  }
}

TEST(ScaledFloat, NormalizesMantissaToHalfOpenInterval) {
  const ScaledFloat v{6.0};  // 0.75 * 2^3
  EXPECT_DOUBLE_EQ(v.mantissa(), 0.75);
  EXPECT_EQ(v.exponent2(), 3);
  const ScaledFloat n{-6.0};
  EXPECT_DOUBLE_EQ(n.mantissa(), -0.75);
  EXPECT_EQ(n.exponent2(), 3);
}

TEST(ScaledFloat, FromMantissaExpNormalizes) {
  const auto v = ScaledFloat::from_mantissa_exp(8.0, 10);  // 8 * 2^10 = 2^13
  EXPECT_DOUBLE_EQ(v.mantissa(), 0.5);
  EXPECT_EQ(v.exponent2(), 14);
  EXPECT_DOUBLE_EQ(v.to_double(), 8192.0);
}

TEST(ScaledFloat, FromLogMatchesExp) {
  for (const double lv : {-700.0, -5.0, 0.0, 3.0, 700.0}) {
    EXPECT_NEAR(ScaledFloat::from_log(lv).log(), lv, 1e-12) << lv;
  }
  EXPECT_TRUE(ScaledFloat::from_log(-std::numeric_limits<double>::infinity())
                  .is_zero());
}

TEST(ScaledFloat, RepresentsValuesFarBeyondDoubleRange) {
  // 10^5000: build by squaring.
  ScaledFloat v{10.0};
  ScaledFloat big = ScaledFloat::one();
  for (int i = 0; i < 5000; ++i) {
    big *= v;
  }
  EXPECT_NEAR(big.log10(), 5000.0, 1e-9);
  EXPECT_EQ(big.to_double(), std::numeric_limits<double>::infinity());
  ScaledFloat tiny = ScaledFloat::one() / big;
  EXPECT_NEAR(tiny.log10(), -5000.0, 1e-9);
  EXPECT_EQ(tiny.to_double(), 0.0);
  // Ratio of two out-of-range values is still exact.
  EXPECT_NEAR(ScaledFloat::ratio(big * ScaledFloat{3.0}, big), 3.0, 1e-12);
}

TEST(ScaledFloat, AdditionMatchesDouble) {
  std::mt19937_64 gen(42);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  for (int i = 0; i < 2000; ++i) {
    const double a = dist(gen);
    const double b = dist(gen);
    const ScaledFloat s = ScaledFloat{a} + ScaledFloat{b};
    EXPECT_NEAR(s.to_double(), a + b, 1e-12 * (std::fabs(a + b) + 1.0));
  }
}

TEST(ScaledFloat, AdditionWithHugeExponentGapKeepsLargerOperand) {
  const ScaledFloat big = ScaledFloat::from_log(5000.0);
  const ScaledFloat small = ScaledFloat::from_log(-5000.0);
  EXPECT_EQ(big + small, big);
  EXPECT_EQ(small + big, big);
}

TEST(ScaledFloat, SubtractionAndCancellation) {
  const ScaledFloat a{5.0};
  const ScaledFloat b{3.0};
  EXPECT_DOUBLE_EQ((a - b).to_double(), 2.0);
  EXPECT_DOUBLE_EQ((b - a).to_double(), -2.0);
  const ScaledFloat zero = a - a;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.exponent2(), 0);  // canonical zero
}

TEST(ScaledFloat, MixedSignAddition) {
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  for (int i = 0; i < 2000; ++i) {
    const double a = dist(gen);
    const double b = dist(gen);
    EXPECT_NEAR((ScaledFloat{a} + ScaledFloat{-b}).to_double(), a - b,
                1e-12 * (std::fabs(a - b) + 1.0));
  }
}

TEST(ScaledFloat, MultiplicationAndDivisionMatchDouble) {
  std::mt19937_64 gen(43);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  for (int i = 0; i < 2000; ++i) {
    const double a = dist(gen);
    double b = dist(gen);
    if (b == 0.0) {
      b = 1.0;
    }
    EXPECT_NEAR((ScaledFloat{a} * ScaledFloat{b}).to_double(), a * b,
                1e-12 * std::fabs(a * b));
    EXPECT_NEAR((ScaledFloat{a} / ScaledFloat{b}).to_double(), a / b,
                1e-12 * std::fabs(a / b));
  }
}

TEST(ScaledFloat, MultiplicationBySignsFollowsAlgebra) {
  const ScaledFloat p{2.0};
  const ScaledFloat n{-3.0};
  EXPECT_EQ((p * n).sign(), -1);
  EXPECT_EQ((n * n).sign(), 1);
  EXPECT_EQ((p * ScaledFloat{}).sign(), 0);
}

TEST(ScaledFloat, ZeroIsAbsorbingAndNeutral) {
  const ScaledFloat z;
  const ScaledFloat v{17.5};
  EXPECT_EQ((z * v), z);
  EXPECT_EQ((v + z), v);
  EXPECT_EQ((z + v), v);
  EXPECT_TRUE((z / v).is_zero());
}

TEST(ScaledFloat, OrderingMatchesReals) {
  std::mt19937_64 gen(44);
  std::uniform_real_distribution<double> dist(-50.0, 50.0);
  for (int i = 0; i < 2000; ++i) {
    const double a = dist(gen);
    const double b = dist(gen);
    EXPECT_EQ(ScaledFloat{a} < ScaledFloat{b}, a < b) << a << " " << b;
    EXPECT_EQ(ScaledFloat{a} > ScaledFloat{b}, a > b) << a << " " << b;
  }
  EXPECT_LT(ScaledFloat{-1.0}, ScaledFloat{});
  EXPECT_LT(ScaledFloat{}, ScaledFloat{1e-300});
  // Negative ordering flips with magnitude.
  EXPECT_LT(ScaledFloat{-100.0}, ScaledFloat{-1.0});
}

TEST(ScaledFloat, RatioOfExtremeValues) {
  const ScaledFloat a = ScaledFloat::from_log(-4000.0);
  const ScaledFloat b = ScaledFloat::from_log(-4001.0);
  EXPECT_NEAR(ScaledFloat::ratio(a, b), std::exp(1.0), 1e-10);
  EXPECT_EQ(ScaledFloat::ratio(ScaledFloat{}, b), 0.0);
  EXPECT_EQ(ScaledFloat::ratio(b, ScaledFloat{}),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(ScaledFloat::ratio(ScaledFloat{}, ScaledFloat{})));
  EXPECT_EQ(ScaledFloat::ratio(-b, ScaledFloat{}),
            -std::numeric_limits<double>::infinity());
}

TEST(ScaledFloat, AbsAndNegation) {
  const ScaledFloat v{-2.5};
  EXPECT_DOUBLE_EQ(v.abs().to_double(), 2.5);
  EXPECT_DOUBLE_EQ((-v).to_double(), 2.5);
  EXPECT_DOUBLE_EQ((-(-v)).to_double(), -2.5);
}

TEST(ScaledFloat, StreamsHumanReadableForm) {
  std::ostringstream os;
  os << ScaledFloat::from_log(2302.5850929940457);  // ~1e1000
  EXPECT_NE(os.str().find("e1000"), std::string::npos) << os.str();
  std::ostringstream zs;
  zs << ScaledFloat{};
  EXPECT_EQ(zs.str(), "0");
}

// Property sweep: sums of many terms spanning huge ranges match a log-domain
// reference.
TEST(ScaledFloat, LongAlternatingAccumulationStaysAccurate) {
  // sum_{k=0..200} (-1)^k 2^k = (2^201 + 1)/3
  ScaledFloat acc;
  for (int k = 0; k <= 200; ++k) {
    ScaledFloat term = ScaledFloat::from_mantissa_exp(1.0, k);
    acc += (k % 2 == 0) ? term : -term;
  }
  const double expected_log = 201.0 * std::log(2.0) - std::log(3.0);
  EXPECT_NEAR(acc.log(), expected_log, 1e-12);
}

}  // namespace
}  // namespace xbar::num
