#include "numeric/arena.hpp"

#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace xbar::num {
namespace {

TEST(ArenaPoolTest, RecyclesBlocksOfTheSameBucket) {
  ArenaPool pool;
  std::size_t cap1 = 0;
  void* p1 = pool.acquire(1000, cap1);
  ASSERT_NE(p1, nullptr);
  EXPECT_GE(cap1, 1000u);
  pool.release(p1, cap1);
  EXPECT_EQ(pool.stats().cached_blocks, 1u);

  // A same-bucket request gets the cached block back.
  std::size_t cap2 = 0;
  void* p2 = pool.acquire(900, cap2);
  EXPECT_EQ(p2, p1);
  EXPECT_EQ(cap2, cap1);
  EXPECT_EQ(pool.stats().reuses, 1u);
  pool.release(p2, cap2);
}

TEST(ArenaPoolTest, AlignmentIsCacheLine) {
  ArenaPool pool;
  std::size_t cap = 0;
  void* p = pool.acquire(64, cap);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % ArenaPool::kAlignment, 0u);
  pool.release(p, cap);
}

TEST(ArenaPoolTest, ByteCapBoundsTheCache) {
  ArenaPool pool(/*max_cached_bytes=*/1024);
  std::size_t cap_a = 0;
  std::size_t cap_b = 0;
  void* a = pool.acquire(1024, cap_a);
  void* b = pool.acquire(1024, cap_b);
  pool.release(a, cap_a);
  pool.release(b, cap_b);  // over the cap: freed, not cached
  EXPECT_EQ(pool.stats().cached_blocks, 1u);
  EXPECT_LE(pool.stats().cached_bytes, 1024u);
  pool.trim();
  EXPECT_EQ(pool.stats().cached_blocks, 0u);
}

TEST(ArenaBufferTest, ValueInitializesAndMoves) {
  ArenaPool pool;
  ArenaBuffer<double> buf(128, pool);
  ASSERT_EQ(buf.size(), 128u);
  for (const double v : buf) {
    EXPECT_EQ(v, 0.0);
  }
  buf[7] = 3.5;
  ArenaBuffer<double> moved = std::move(buf);
  EXPECT_EQ(moved.size(), 128u);
  EXPECT_EQ(moved[7], 3.5);
  EXPECT_EQ(buf.size(), 0u);  // NOLINT(bugprone-use-after-move): pinned empty
}

TEST(ArenaBufferTest, ReleaseReturnsToPoolOnDestruction) {
  ArenaPool pool;
  {
    ArenaBuffer<double> buf(256, pool);
    EXPECT_EQ(pool.stats().cached_blocks, 0u);
  }
  EXPECT_EQ(pool.stats().cached_blocks, 1u);
  // The next same-sized buffer reuses the block but is still zeroed.
  ArenaBuffer<double> again(256, pool);
  EXPECT_EQ(pool.stats().reuses, 1u);
  for (const double v : again) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(ArenaPoolTest, UninitializedTagSkipsZeroingButStillRecycles) {
  ArenaPool pool;
  {
    ArenaBuffer<double> warm(512, pool);
    for (double& v : warm) {
      v = 7.0;
    }
  }
  // Tagged construction takes the cached block back without touching the
  // bytes; size/iteration behave like the zeroing ctor.
  ArenaBuffer<double> raw(512, uninitialized, pool);
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(raw.size(), 512u);
  for (double& v : raw) {
    v = 1.0;
  }
  EXPECT_EQ(raw[511], 1.0);
}

TEST(ArenaPoolTest, ConcurrentAcquireReleaseIsSafe) {
  ArenaPool pool;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 200; ++i) {
        ArenaBuffer<double> buf(64 + static_cast<std::size_t>(i % 7) * 100,
                                pool);
        buf[0] = 1.0;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(pool.stats().acquires, 800u);
}

}  // namespace
}  // namespace xbar::num
