#include "advisor/estimator.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/bpp.hpp"
#include "dist/rng.hpp"

namespace xbar::advisor {
namespace {

/// Simulate a BPP birth-death connection process (aggregate intensity
/// lambda(k) = alpha + beta k, holds ~ exp(mu)) for `seconds` of trace time
/// and feed every arrival into `est`.  Departure clocks are pre-sampled per
/// connection (exact for exponential holds); the arrival clock is resampled
/// on every occupancy change (exact by memorylessness).  Returns the number
/// of events generated.
std::size_t drive_bpp(TrafficEstimator& est, const std::string& name,
                      double alpha, double beta, double mu, double start,
                      double seconds, dist::Xoshiro256& rng,
                      unsigned* occupancy_io = nullptr) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  unsigned k = occupancy_io != nullptr ? *occupancy_io : 0;
  std::priority_queue<double, std::vector<double>, std::greater<>> departures;
  double t = start;
  const double end = start + seconds;
  std::size_t events = 0;
  auto arrival_rate = [&] {
    const double rate = alpha + beta * static_cast<double>(k);
    return rate > 0.0 ? rate : 0.0;
  };
  double next_arrival =
      arrival_rate() > 0.0 ? t + rng.exponential(arrival_rate()) : kInf;
  while (true) {
    const bool departure_next =
        !departures.empty() && departures.top() < next_arrival;
    const double at = departure_next ? departures.top() : next_arrival;
    if (at >= end) {
      break;
    }
    t = at;
    if (departure_next) {
      departures.pop();
      --k;
    } else {
      const double hold = rng.exponential(mu);
      ObservedEvent event;
      event.class_name = name;
      event.t = t;
      event.hold = hold;
      est.observe(event);
      ++events;
      departures.push(t + hold);
      ++k;
    }
    next_arrival =
        arrival_rate() > 0.0 ? t + rng.exponential(arrival_rate()) : kInf;
  }
  est.advance_to(end);
  if (occupancy_io != nullptr) {
    *occupancy_io = k;
  }
  return events;
}

EstimatorConfig long_window() {
  EstimatorConfig config;
  config.window_seconds = 600.0;  // long fit window: low-variance recovery
  config.min_events = 50.0;
  return config;
}

TEST(Estimator, RecoversPoissonParameters) {
  // Poisson: lambda = 5, mu = 1 -> M = 5, z = 1.
  TrafficEstimator est(long_window());
  dist::Xoshiro256 rng(11);
  drive_bpp(est, "p", 5.0, 0.0, 1.0, 0.0, 2000.0, rng);
  const std::vector<FittedClass> fits = est.fitted();
  ASSERT_EQ(fits.size(), 1u);
  const FittedClass& f = fits[0];
  EXPECT_TRUE(f.confident);
  EXPECT_NEAR(f.arrival_rate, 5.0, 0.25);
  EXPECT_NEAR(f.mean_hold, 1.0, 0.05);
  EXPECT_NEAR(f.mean_occupancy, 5.0, 0.25);
  EXPECT_NEAR(f.peakedness, 1.0, 0.1);
}

TEST(Estimator, RecoversBurstyBppParametersWithinFivePercent) {
  // The ISSUE acceptance bar: a synthetic BPP trace with known
  // (lambda-at-mean, z, 1/mu) is recovered within 5%.
  const double mean = 6.0;
  const double z = 3.0;
  const double mu = 1.0;
  const dist::BppParams p =
      dist::BppParams::from_mean_peakedness(mean, z, mu);
  TrafficEstimator est(long_window());
  dist::Xoshiro256 rng(23);
  drive_bpp(est, "bursty", p.alpha, p.beta, mu, 0.0, 4000.0, rng);
  const FittedClass f = est.fitted()[0];
  EXPECT_TRUE(f.confident);
  EXPECT_NEAR(f.mean_occupancy, mean, 0.05 * mean);
  EXPECT_NEAR(f.peakedness, z, 0.05 * z);
  EXPECT_NEAR(f.mean_hold, 1.0 / mu, 0.05 / mu);
  // The fitted BPP parameters reproduce the generator's.
  const dist::BppParams fitted = f.bpp();
  EXPECT_NEAR(fitted.alpha, p.alpha, 0.15 * p.alpha);
  EXPECT_NEAR(fitted.beta, p.beta, 0.15 * p.beta);
}

TEST(Estimator, ModulatedPoissonReadsAsPeaked) {
  // A two-state modulated Poisson stream (rate 2 / rate 14 switching every
  // 40 s) is over-dispersed: the fit must report z noticeably above 1.
  TrafficEstimator est(long_window());
  dist::Xoshiro256 rng(31);
  double t = 0.0;
  for (int cycle = 0; cycle < 30; ++cycle) {
    const double rate = (cycle % 2 == 0) ? 2.0 : 14.0;
    drive_bpp(est, "mmpp", rate, 0.0, 1.0, t, 40.0, rng);
    t += 40.0;
  }
  const FittedClass f = est.fitted()[0];
  EXPECT_TRUE(f.confident);
  EXPECT_GT(f.peakedness, 1.25);
}

TEST(Estimator, ConfidenceGateHoldsUntilEnoughEvents) {
  EstimatorConfig config;
  config.window_seconds = 60.0;
  config.min_events = 50.0;
  TrafficEstimator est(config);
  dist::Xoshiro256 rng(5);
  // ~20 events: below the gate.
  drive_bpp(est, "c", 2.0, 0.0, 1.0, 0.0, 10.0, rng);
  EXPECT_FALSE(est.fitted()[0].confident);
  // Keep going past 50 events and the observe-time floor.
  drive_bpp(est, "c", 2.0, 0.0, 1.0, 10.0, 40.0, rng);
  EXPECT_TRUE(est.fitted()[0].confident);
}

TEST(Estimator, LowRateClassStillReachesConfidence) {
  // Regression: the gate counts *undecayed* arrivals since the last fit
  // reset.  A decayed count saturates at rate*tau (here 0.5 * 30 = 15 < 50)
  // and would lock low-rate classes out of confidence forever.
  EstimatorConfig config;
  config.window_seconds = 30.0;
  config.min_events = 50.0;
  TrafficEstimator est(config);
  dist::Xoshiro256 rng(7);
  drive_bpp(est, "slow", 0.5, 0.0, 0.5, 0.0, 400.0, rng);
  const FittedClass f = est.fitted()[0];
  EXPECT_GE(f.events, 50.0);
  EXPECT_TRUE(f.confident);
}

TEST(Estimator, DetectsDriftAndRelearnsAfterReset) {
  EstimatorConfig config;
  config.window_seconds = 60.0;
  config.drift_window_seconds = 4.0;
  config.min_events = 50.0;
  TrafficEstimator est(config);
  dist::Xoshiro256 rng(13);
  unsigned k = 0;
  drive_bpp(est, "c", 4.0, 0.0, 1.0, 0.0, 300.0, rng, &k);
  EXPECT_TRUE(est.fitted()[0].confident);
  EXPECT_FALSE(est.drifted());
  // 5x rate jump: the fast window diverges from the slow fit within a few
  // seconds of trace time.
  drive_bpp(est, "c", 20.0, 0.0, 1.0, 300.0, 20.0, rng, &k);
  EXPECT_TRUE(est.drifted());
  est.reset_fit();
  EXPECT_FALSE(est.fitted()[0].confident);  // gate restarts
  EXPECT_FALSE(est.drifted());              // warmup gate quiet again
  drive_bpp(est, "c", 20.0, 0.0, 1.0, 320.0, 300.0, rng, &k);
  const FittedClass f = est.fitted()[0];
  EXPECT_TRUE(f.confident);
  EXPECT_NEAR(f.arrival_rate, 20.0, 1.0);
  EXPECT_FALSE(est.drifted());
}

TEST(Estimator, BlockedArrivalsCountTowardRateOnly) {
  TrafficEstimator est(EstimatorConfig{});
  for (int i = 0; i < 100; ++i) {
    ObservedEvent event;
    event.class_name = "b";
    event.t = 0.1 * i;
    event.hold = 1.0;
    event.blocked = true;
    est.observe(event);
  }
  est.advance_to(20.0);
  const FittedClass f = est.fitted()[0];
  EXPECT_GT(f.arrival_rate, 0.0);       // offered rate sees them
  EXPECT_EQ(f.mean_occupancy, 0.0);     // carried occupancy does not
  EXPECT_EQ(f.mean_hold, 0.0);
  EXPECT_FALSE(f.confident);            // no carried traffic -> no fit
}

TEST(Estimator, OutOfOrderTimestampsNeverRewind) {
  TrafficEstimator est(EstimatorConfig{});
  ObservedEvent event;
  event.class_name = "c";
  event.t = 10.0;
  event.hold = 1.0;
  est.observe(event);
  event.t = 4.0;  // late-arriving frame: clamped, not rewound
  est.observe(event);
  est.advance_to(12.0);
  EXPECT_GE(est.now(), 12.0);
  EXPECT_EQ(est.fitted().size(), 1u);
}

TEST(Estimator, TracksClassesIndependently) {
  TrafficEstimator est(long_window());
  dist::Xoshiro256 rng(3);
  drive_bpp(est, "a", 6.0, 0.0, 1.0, 0.0, 500.0, rng);
  drive_bpp(est, "b", 1.0, 0.0, 2.0, 0.0, 500.0, rng);
  const std::vector<FittedClass> fits = est.fitted();
  ASSERT_EQ(fits.size(), 2u);
  EXPECT_EQ(fits[0].name, "a");  // first-seen order
  EXPECT_EQ(fits[1].name, "b");
  EXPECT_NEAR(fits[0].arrival_rate, 6.0, 0.5);
  EXPECT_NEAR(fits[1].arrival_rate, 1.0, 0.2);
  EXPECT_NEAR(fits[1].mean_hold, 0.5, 0.05);
}

TEST(Estimator, SmoothFitStaysRepresentable) {
  // A smooth fit (z < 1) with small M implies a tiny source population;
  // traffic_class() must clamp z so the model's admissibility rule
  // (lambda(k) >= 0 across feasible states) accepts the class.
  FittedClass f;
  f.name = "smooth";
  f.mean_occupancy = 1.5;
  f.peakedness = 0.2;  // raw population M/(1-z) < 2
  f.mean_hold = 1.0;
  const core::TrafficClass tc = f.traffic_class(16);
  // Population alpha/-beta must cover the switch's larger side.
  ASSERT_LT(tc.beta_tilde, 0.0);
  EXPECT_GE(tc.alpha_tilde / -tc.beta_tilde, 16.0);
  // And the class must build into a model without throwing.
  EXPECT_NO_THROW(
      core::CrossbarModel(core::Dims::square(16), {tc}));
}

}  // namespace
}  // namespace xbar::advisor
