#include "advisor/advisor.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "core/solver.hpp"
#include "dist/rng.hpp"
#include "sweep/sweep.hpp"

namespace xbar::advisor {
namespace {

/// Drive one class of the advisor with a BPP birth-death trace (aggregate
/// intensity alpha + beta k, holds ~ exp(mu)) over [start, start+seconds).
/// Occupancy persists across calls through `k_io` so rate shifts continue
/// the same connection process.  Returns how many arrivals were admitted.
std::size_t drive(Advisor& advisor, const std::string& name, double alpha,
                  double beta, double mu, double start, double seconds,
                  dist::Xoshiro256& rng, unsigned& k_io,
                  std::priority_queue<double, std::vector<double>,
                                      std::greater<>>& departures,
                  double weight = 1.0, unsigned bandwidth = 1) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  unsigned k = k_io;
  double t = start;
  const double end = start + seconds;
  std::size_t admitted = 0;
  auto rate = [&] {
    const double v = alpha + beta * static_cast<double>(k);
    return v > 0.0 ? v : 0.0;
  };
  double next_arrival = rate() > 0.0 ? t + rng.exponential(rate()) : kInf;
  while (true) {
    const bool departure_next =
        !departures.empty() && departures.top() < next_arrival;
    const double at = departure_next ? departures.top() : next_arrival;
    if (at >= end) {
      break;
    }
    t = at;
    if (departure_next) {
      departures.pop();
      --k;
    } else {
      ObservedEvent event;
      event.class_name = name;
      event.t = t;
      event.hold = rng.exponential(mu);
      event.weight = weight;
      event.bandwidth = bandwidth;
      if (advisor.observe(event)) {
        ++admitted;
      }
      departures.push(t + event.hold);
      ++k;
    }
    next_arrival = rate() > 0.0 ? t + rng.exponential(rate()) : kInf;
  }
  k_io = k;
  return admitted;
}

AdvisorConfig small_config() {
  AdvisorConfig config;
  config.candidate_sizes = {4, 8};
  config.solve_every_events = 64;
  config.estimator.window_seconds = 40.0;
  config.estimator.min_events = 40.0;
  return config;
}

TEST(Advisor, StartsQuietAndSolveNowIsSafe) {
  Advisor advisor(small_config());
  EXPECT_EQ(advisor.state(), AdvisorState::kQuiet);
  advisor.solve_now();  // nothing fitted yet: must not throw or advise
  const Recommendation rec = advisor.recommendation();
  EXPECT_EQ(rec.state, AdvisorState::kQuiet);
  EXPECT_FALSE(rec.confident);
  EXPECT_EQ(rec.recommended_size, 0u);
  EXPECT_TRUE(rec.options.empty());
}

TEST(Advisor, QuietRecommendationCarriesFitProgress) {
  Advisor advisor(small_config());
  dist::Xoshiro256 rng(17);
  unsigned k = 0;
  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  drive(advisor, "warm", 2.0, 0.0, 1.0, 0.0, 8.0, rng, k, heap);
  advisor.solve_now();
  const Recommendation rec = advisor.recommendation();
  EXPECT_FALSE(rec.confident);
  ASSERT_EQ(rec.fits.size(), 1u);
  EXPECT_EQ(rec.fits[0].name, "warm");
  EXPECT_FALSE(rec.fits[0].confident);
  EXPECT_EQ(rec.recommended_size, 0u);  // no sizing advice while quiet
}

TEST(Advisor, BecomesConfidentAndRecommendationMatchesBatchSolve) {
  AdvisorConfig config = small_config();
  config.current_size = 4;
  Advisor advisor(config);
  dist::Xoshiro256 rng(29);
  unsigned k = 0;
  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  drive(advisor, "voice", 3.0, 0.0, 1.0, 0.0, 120.0, rng, k, heap);
  advisor.solve_now();
  EXPECT_EQ(advisor.state(), AdvisorState::kConfident);
  const Recommendation rec = advisor.recommendation();
  ASSERT_TRUE(rec.confident);
  ASSERT_EQ(rec.options.size(), 2u);
  EXPECT_GT(rec.solve_cycles, 0u);

  // Batch-equivalence: rebuilding the fitted model per candidate size and
  // solving through the same pipeline must reproduce the advisor's choice
  // and numbers exactly (the "live matches batch capacity planning"
  // acceptance bar, unit-sized).
  sweep::SolverCache cache;
  std::size_t chosen = config.candidate_sizes.size();
  for (std::size_t i = 0; i < config.candidate_sizes.size(); ++i) {
    const unsigned n = config.candidate_sizes[i];
    const core::CrossbarModel model(
        core::Dims::square(n), {rec.fits[0].traffic_class(n)});
    const core::SolveResult solved = cache.eval_result(model, config.solver);
    double worst = 0.0;
    for (const auto& cm : solved.measures.per_class) {
      worst = std::max(worst, cm.blocking);
    }
    EXPECT_NEAR(rec.options[i].worst_blocking, worst, 1e-12) << n;
    EXPECT_NEAR(rec.options[i].revenue, solved.measures.revenue, 1e-12) << n;
    if (worst <= config.target_blocking &&
        chosen == config.candidate_sizes.size()) {
      chosen = i;
    }
  }
  const unsigned expected_size =
      chosen < config.candidate_sizes.size()
          ? config.candidate_sizes[chosen]
          : config.candidate_sizes.back();
  EXPECT_EQ(rec.recommended_size, expected_size);
  EXPECT_EQ(rec.slo_met, chosen < config.candidate_sizes.size());
  // current_size = 4 is a candidate, so the delta is computable.
  EXPECT_NEAR(rec.revenue_delta, rec.revenue - rec.current_revenue, 1e-12);
}

TEST(Advisor, DriftTriggersRefitThenReconverges) {
  AdvisorConfig config = small_config();
  config.estimator.drift_window_seconds = 4.0;
  Advisor advisor(config);
  dist::Xoshiro256 rng(41);
  unsigned k = 0;
  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  drive(advisor, "c", 3.0, 0.0, 1.0, 0.0, 120.0, rng, k, heap);
  advisor.solve_now();
  ASSERT_EQ(advisor.state(), AdvisorState::kConfident);

  // 6x rate jump: drift must be noticed while observing, the slow window
  // reset, and the advisor eventually reconverge on the new rate.
  drive(advisor, "c", 18.0, 0.0, 1.0, 120.0, 240.0, rng, k, heap);
  advisor.solve_now();
  const Recommendation rec = advisor.recommendation();
  EXPECT_GE(rec.refits, 1u);
  EXPECT_EQ(advisor.state(), AdvisorState::kConfident);
  ASSERT_TRUE(rec.confident);
  ASSERT_EQ(rec.fits.size(), 1u);
  EXPECT_NEAR(rec.fits[0].arrival_rate, 18.0, 2.0);
}

TEST(Advisor, EnactmentDeniesUneconomicClassAndDriftReadmits) {
  AdvisorConfig config = small_config();
  config.enact = true;
  config.candidate_sizes = {8};
  Advisor advisor(config);
  dist::Xoshiro256 rng(53);
  unsigned kv = 0;
  unsigned kj = 0;
  std::priority_queue<double, std::vector<double>, std::greater<>> hv;
  std::priority_queue<double, std::vector<double>, std::greater<>> hj;

  // Heavy high-weight traffic plus a featherweight class whose weight is
  // far below the shadow cost of the ports it would occupy.
  for (int slice = 0; slice < 30; ++slice) {
    const double t0 = 4.0 * slice;
    drive(advisor, "voice", 4.0, 0.0, 1.0, t0, 4.0, rng, kv, hv, 1.0);
    drive(advisor, "junk", 1.0, 0.0, 1.0, t0, 4.0, rng, kj, hj, 0.01);
  }
  advisor.solve_now();
  ASSERT_EQ(advisor.state(), AdvisorState::kConfident);
  const Recommendation rec = advisor.recommendation();
  ASSERT_EQ(rec.per_class.size(), 2u);
  const auto junk = std::find_if(
      rec.per_class.begin(), rec.per_class.end(),
      [](const ClassAdvice& a) { return a.name == "junk"; });
  ASSERT_NE(junk, rec.per_class.end());
  ASSERT_FALSE(junk->admit);
  EXPECT_FALSE(advisor.admits("junk"));
  EXPECT_TRUE(advisor.admits("voice"));

  // A denied observe returns false and is counted.
  ObservedEvent event;
  event.class_name = "junk";
  event.t = 121.0;
  event.hold = 1.0;
  event.weight = 0.01;
  EXPECT_FALSE(advisor.observe(event));
  EXPECT_GT(advisor.events_denied(), 0u);

  // Safety valve: drift clears the deny set until the refit converges.
  drive(advisor, "voice", 24.0, 0.0, 1.0, 122.0, 30.0, rng, kv, hv, 1.0);
  if (advisor.state() == AdvisorState::kRefitting) {
    EXPECT_TRUE(advisor.admits("junk"));
  }
  EXPECT_GE(advisor.recommendation().refits, 1u);
}

TEST(Advisor, CandidateFloorSkipsSizesBelowWidestClass) {
  AdvisorConfig config = small_config();
  config.candidate_sizes = {2, 8};
  // Candidate filtering is under test, not change detection: at this low a
  // rate the 5 s fast window holds ~8 events and noisy estimates can flag
  // spurious drift, so drift is effectively disabled here.
  config.estimator.drift_threshold = 100.0;
  Advisor advisor(config);
  dist::Xoshiro256 rng(61);
  unsigned k = 0;
  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  drive(advisor, "wide", 1.5, 0.0, 1.0, 0.0, 120.0, rng, k, heap, 1.0,
        /*bandwidth=*/3);
  advisor.solve_now();
  const Recommendation rec = advisor.recommendation();
  ASSERT_TRUE(rec.confident);
  // A 2x2 switch cannot carry a bandwidth-3 connection: only 8 remains.
  ASSERT_EQ(rec.options.size(), 1u);
  EXPECT_EQ(rec.options[0].size, 8u);
  EXPECT_EQ(rec.recommended_size, 8u);
}

TEST(Advisor, ObserveBatchCountsAdmissions) {
  Advisor advisor(small_config());
  std::vector<ObservedEvent> events(10);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].class_name = "b";
    events[i].t = 0.5 * static_cast<double>(i);
    events[i].hold = 1.0;
  }
  EXPECT_EQ(advisor.observe_batch(events), events.size());
  EXPECT_EQ(advisor.events_observed(), events.size());
}

}  // namespace
}  // namespace xbar::advisor
