// Deterministic tests for the decorrelated-jitter backoff: every delay
// inside [base, cap], the envelope grows (bounded by 3x the previous
// delay), and a fixed seed reproduces the exact sequence.

#include "client/backoff.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xbar::client {
namespace {

TEST(Backoff, EveryDelayWithinBaseAndCap) {
  BackoffConfig config;
  config.base_seconds = 0.010;
  config.cap_seconds = 0.200;
  Backoff backoff(config, 42);
  for (int i = 0; i < 1000; ++i) {
    const double d = backoff.next_delay();
    EXPECT_GE(d, config.base_seconds);
    EXPECT_LE(d, config.cap_seconds);
  }
}

TEST(Backoff, FirstDelayIsBaseAndEnvelopeTriples) {
  BackoffConfig config;
  config.base_seconds = 0.010;
  config.cap_seconds = 1e9;  // no cap interference
  Backoff backoff(config, 7);
  double previous = backoff.next_delay();
  EXPECT_DOUBLE_EQ(previous, config.base_seconds);
  for (int i = 0; i < 50; ++i) {
    const double d = backoff.next_delay();
    EXPECT_GE(d, config.base_seconds);
    EXPECT_LE(d, 3.0 * previous);
    previous = d;
  }
}

TEST(Backoff, SameSeedSameSequence) {
  BackoffConfig config;
  Backoff a(config, 1234);
  Backoff b(config, 1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.next_delay(), b.next_delay());
  }
}

TEST(Backoff, DifferentSeedsDecorrelate) {
  BackoffConfig config;
  Backoff a(config, 1);
  Backoff b(config, 2);
  // Skip the deterministic first delay (== base for both).
  (void)a.next_delay();
  (void)b.next_delay();
  bool any_difference = false;
  for (int i = 0; i < 20; ++i) {
    if (a.next_delay() != b.next_delay()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Backoff, ResetCollapsesEnvelopeToBase) {
  BackoffConfig config;
  config.base_seconds = 0.010;
  Backoff backoff(config, 99);
  for (int i = 0; i < 10; ++i) {
    (void)backoff.next_delay();
  }
  backoff.reset();
  EXPECT_DOUBLE_EQ(backoff.next_delay(), config.base_seconds);
}

TEST(Backoff, CapClampsTheEnvelope) {
  BackoffConfig config;
  config.base_seconds = 0.050;
  config.cap_seconds = 0.060;  // tight: triple of base already exceeds it
  Backoff backoff(config, 3);
  std::vector<double> delays;
  for (int i = 0; i < 100; ++i) {
    delays.push_back(backoff.next_delay());
  }
  for (const double d : delays) {
    EXPECT_GE(d, config.base_seconds);
    EXPECT_LE(d, config.cap_seconds);
  }
}

}  // namespace
}  // namespace xbar::client
