// Integration tests for XbarClient against a real service::Server, with
// and without a chaos::ChaosProxy in the path.  Everything runs on
// 127.0.0.1 with ephemeral ports; fault schedules are deterministic, so
// the retry/breaker behavior asserted here is exactly reproducible.

#include <string>

#include <gtest/gtest.h>

#include "chaos/proxy.hpp"
#include "client/client.hpp"
#include "core/error.hpp"
#include "service/connection.hpp"
#include "service/server.hpp"

namespace xbar::client {
namespace {

constexpr const char* kPing = R"({"method":"ping","id":1})";

service::ServerConfig server_config() {
  service::ServerConfig config;
  config.workers = 2;
  config.idle_poll_seconds = 0.05;
  return config;
}

/// Client config with millisecond-scale backoff so retry-heavy tests
/// finish fast.
ClientConfig fast_client(std::uint16_t port) {
  ClientConfig config;
  config.port = port;
  config.connect_timeout_seconds = 1.0;
  config.request_timeout_seconds = 2.0;
  config.backoff.base_seconds = 0.002;
  config.backoff.cap_seconds = 0.010;
  config.backoff.max_attempts = 5;
  return config;
}

/// A port with nothing listening: bind an ephemeral listener, read the
/// port, close it.
std::uint16_t dead_port() {
  std::uint16_t port = 0;
  {
    service::Socket listener = service::listen_on("127.0.0.1", 0, port);
  }
  return port;
}

TEST(ClientServer, PingRoundTripsFirstAttempt) {
  service::Server server(server_config());
  server.start();
  XbarClient client(fast_client(server.port()));

  const CallResult result = client.call(kPing);
  EXPECT_EQ(result.outcome, Outcome::kOk);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_NE(result.response.find("pong"), std::string::npos);
  EXPECT_EQ(client.counters().retries, 0u);
  server.stop();
}

TEST(ClientServer, HealthMethodReportsServing) {
  service::Server server(server_config());
  server.start();
  XbarClient client(fast_client(server.port()));

  const CallResult result = client.call(R"({"method":"health"})");
  ASSERT_EQ(result.outcome, Outcome::kOk);
  EXPECT_NE(result.response.find(R"("live":true)"), std::string::npos);
  EXPECT_NE(result.response.find(R"("status":"serving")"),
            std::string::npos);
  EXPECT_NE(result.response.find(R"("queue_depth")"), std::string::npos);
  server.stop();
}

TEST(ClientServer, RefusedEndpointExhaustsRetriesWithTypedOutcome) {
  ClientConfig config = fast_client(dead_port());
  config.backoff.max_attempts = 4;
  config.breaker.min_samples = 8;  // keep the breaker out of this test
  XbarClient client(config);

  const CallResult result = client.call(kPing);
  EXPECT_EQ(result.outcome, Outcome::kRefused);
  EXPECT_EQ(result.attempts, 4u);
  EXPECT_EQ(client.counters().attempt_refused, 4u);
  EXPECT_EQ(client.counters().retries, 3u);
  EXPECT_GT(result.backoff_seconds, 0.0);
}

TEST(ClientServer, BreakerOpensOnRepeatedFailuresAndFailsFast) {
  ClientConfig config = fast_client(dead_port());
  config.backoff.max_attempts = 4;
  config.breaker.window = 4;
  config.breaker.min_samples = 2;
  config.breaker.failure_threshold = 0.5;
  config.breaker.open_seconds = 30.0;  // no half-open within the test
  XbarClient client(config);

  const CallResult first = client.call(kPing);
  // Two refused attempts trip the breaker; the remaining budget is
  // rejected without touching the network.
  EXPECT_EQ(first.outcome, Outcome::kBreakerOpen);
  EXPECT_EQ(first.attempts, 2u);
  EXPECT_EQ(client.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(client.breaker().times_opened(), 1u);

  const CallResult second = client.call(kPing);
  EXPECT_EQ(second.outcome, Outcome::kBreakerOpen);
  EXPECT_EQ(second.attempts, 0u);  // failed fast: no network attempts
  EXPECT_GE(client.counters().breaker_rejections, 6u);
}

TEST(ClientServer, OverloadedAnswersAreRetriedAndTripTheBreaker) {
  // workers=1 + queue_capacity=1: one connection pins the worker, one
  // fills the queue, and every further dial is answered with a typed
  // overloaded frame and closed.
  service::ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.idle_poll_seconds = 0.05;
  service::Server server(config);
  server.start();

  service::Socket pinned = service::dial("127.0.0.1", server.port());
  ASSERT_TRUE(pinned.valid());
  service::LineReader pinned_reader(pinned.fd(), 1 << 16);
  ASSERT_TRUE(service::write_line(pinned.fd(), kPing));
  std::string line;
  ASSERT_EQ(pinned_reader.read_line(line),
            service::LineReader::Status::kLine);
  service::Socket queued = service::dial("127.0.0.1", server.port());
  ASSERT_TRUE(queued.valid());

  ClientConfig cc = fast_client(server.port());
  cc.backoff.max_attempts = 3;
  cc.breaker.window = 4;
  cc.breaker.min_samples = 2;
  cc.breaker.open_seconds = 30.0;
  XbarClient client(cc);

  const CallResult result = client.call(kPing);
  // Every admitted attempt got the overloaded frame; after min_samples
  // of them the breaker opened, so the final outcome is one of the two
  // depending on which came last.
  EXPECT_TRUE(result.outcome == Outcome::kOverloaded ||
              result.outcome == Outcome::kBreakerOpen);
  EXPECT_GE(client.counters().attempt_overloaded, 2u);
  EXPECT_EQ(client.breaker().times_opened(), 1u);
  EXPECT_EQ(client.breaker().state(), CircuitBreaker::State::kOpen);

  pinned.reset();
  queued.reset();
  server.stop();
}

TEST(ClientServer, GarbageFaultDesynchronizesAndTheRetryRecovers) {
  service::Server server(server_config());
  server.start();
  chaos::ProxyConfig pc;
  pc.upstream_port = server.port();
  pc.faults = chaos::parse_fault_spec("0:garbage");
  chaos::ChaosProxy proxy(pc);
  proxy.start();

  XbarClient client(fast_client(proxy.port()));
  const CallResult result = client.call(kPing);
  EXPECT_EQ(result.outcome, Outcome::kOk);
  EXPECT_NE(result.response.find("pong"), std::string::npos);
  EXPECT_EQ(result.attempts, 2u);  // garbage line, reconnect, clean reply
  EXPECT_EQ(client.counters().attempt_resets, 1u);

  proxy.stop();
  server.stop();
}

TEST(ClientServer, DropAndTruncateFaultsAreRetriedToSuccess) {
  service::Server server(server_config());
  server.start();
  chaos::ProxyConfig pc;
  pc.upstream_port = server.port();
  // Connection 0 is closed before any response; connection 1 forwards
  // five response bytes and tears the frame; connection 2 is clean.
  pc.faults = chaos::parse_fault_spec("0:drop,1:truncate:5");
  chaos::ChaosProxy proxy(pc);
  proxy.start();

  XbarClient client(fast_client(proxy.port()));
  const CallResult result = client.call(kPing);
  EXPECT_EQ(result.outcome, Outcome::kOk);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_EQ(client.counters().attempt_resets, 2u);

  proxy.stop();
  server.stop();
}

TEST(ClientServer, ResetFaultSurfacesAsResetAndRecovers) {
  service::Server server(server_config());
  server.start();
  chaos::ProxyConfig pc;
  pc.upstream_port = server.port();
  pc.faults = chaos::parse_fault_spec("0:reset");
  chaos::ChaosProxy proxy(pc);
  proxy.start();

  XbarClient client(fast_client(proxy.port()));
  const CallResult result = client.call(kPing);
  EXPECT_EQ(result.outcome, Outcome::kOk);
  EXPECT_GE(client.counters().attempt_resets, 1u);

  proxy.stop();
  server.stop();
}

TEST(ClientServer, DelayFaultOnlyDelaysTheFirstConnection) {
  service::Server server(server_config());
  server.start();
  chaos::ProxyConfig pc;
  pc.upstream_port = server.port();
  pc.faults = chaos::parse_fault_spec("0:delay:50");
  chaos::ChaosProxy proxy(pc);
  proxy.start();

  XbarClient client(fast_client(proxy.port()));
  const CallResult result = client.call(kPing);
  EXPECT_EQ(result.outcome, Outcome::kOk);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(client.counters().retries, 0u);

  const chaos::ProxyCounters counters = proxy.counters();
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.faulted, 1u);

  proxy.stop();
  server.stop();
}

TEST(ClientServer, FaultSpecParserRejectsBadTokens) {
  EXPECT_THROW((void)chaos::parse_fault_spec("0:explode"), xbar::Error);
  EXPECT_THROW((void)chaos::parse_fault_spec("nope"), xbar::Error);
  EXPECT_THROW((void)chaos::parse_fault_spec("0:delay"), xbar::Error);
  const std::vector<chaos::FaultRule> rules =
      chaos::parse_fault_spec("0:delay:100,2:reset:8,4:truncate");
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].action, chaos::FaultAction::kDelay);
  EXPECT_DOUBLE_EQ(rules[0].delay_seconds, 0.1);
  EXPECT_EQ(rules[1].conn, 2u);
  EXPECT_EQ(rules[1].bytes, 8u);
  EXPECT_EQ(rules[2].bytes, 16u);  // truncate's default budget
}

}  // namespace
}  // namespace xbar::client
