// Coordinated-omission tests for client::open_loop_latency and the
// replay_open_loop oracle.  The regression being pinned: a paced
// (open-loop) load generator that timestamps from the actual send instant
// hides every queueing delay a stalled server causes, because the sender
// itself stops sending.  Correct open-loop latency is measured from the
// *intended* arrival on the schedule.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "client/open_loop.hpp"

namespace xbar::client {
namespace {

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

TEST(OpenLoop, CorrectedLatencyCountsFromTheIntendedArrival) {
  // Intended at t=1.0, actually sent at t=1.5 (the sender was stuck
  // behind a stalled response), done at t=1.6.
  const OpenLoopSample s = open_loop_latency(1.0, 1.5, 1.6);
  EXPECT_NEAR(s.service, 0.1, 1e-12);    // what the server took
  EXPECT_NEAR(s.corrected, 0.6, 1e-12);  // what a real open-loop client saw
}

TEST(OpenLoop, CorrectedNeverDropsBelowService) {
  // Sent *before* the intended instant (scheduler jitter): clamping keeps
  // corrected from under-reporting the service time.
  const OpenLoopSample s = open_loop_latency(1.0, 0.9, 0.95);
  EXPECT_NEAR(s.service, 0.05, 1e-12);
  EXPECT_NEAR(s.corrected, 0.05, 1e-12);
}

TEST(OpenLoop, ClosedLoopConventionMakesThemEqual) {
  // Closed-loop senders pass intended == sent; the correction vanishes.
  const OpenLoopSample s = open_loop_latency(2.0, 2.0, 2.25);
  EXPECT_DOUBLE_EQ(s.service, 0.25);
  EXPECT_DOUBLE_EQ(s.corrected, 0.25);
}

TEST(OpenLoop, NegativeDurationsClampToZero) {
  const OpenLoopSample s = open_loop_latency(1.0, 1.5, 1.4);
  EXPECT_DOUBLE_EQ(s.service, 0.0);
  EXPECT_NEAR(s.corrected, 0.4, 1e-12);  // done - intended still counts
}

TEST(OpenLoop, ReplaySurfacesAStallTheServiceTimesHide) {
  // 100 requests at 100 rps; the server answers in 1ms except requests
  // 20..29, which each take 500ms (a 5s stall in aggregate).  A serial
  // sender falls 5s behind the schedule and never catches up within the
  // run, so *most* intended arrivals wait out the backlog.
  std::vector<double> schedule(100);
  std::vector<double> service(100, 1e-3);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    schedule[i] = 0.01 * static_cast<double>(i);
  }
  for (std::size_t i = 20; i < 30; ++i) {
    service[i] = 0.5;
  }

  const std::vector<OpenLoopSample> samples =
      replay_open_loop(schedule, service);
  ASSERT_EQ(samples.size(), schedule.size());

  std::vector<double> corrected;
  std::vector<double> measured_service;
  corrected.reserve(samples.size());
  measured_service.reserve(samples.size());
  for (const OpenLoopSample& s : samples) {
    corrected.push_back(s.corrected);
    measured_service.push_back(s.service);
    EXPECT_GE(s.corrected, s.service);
  }

  // The naive (service-time) view says the run was fine...
  EXPECT_NEAR(median(measured_service), 1e-3, 1e-12);
  // ...the corrected view exposes the seconds of queueing delay.
  EXPECT_GT(median(corrected), 1.0);
  // Requests before the stall are unaffected either way.
  EXPECT_DOUBLE_EQ(samples[0].corrected, 1e-3);
  EXPECT_NEAR(samples[19].corrected, 1e-3, 1e-12);
  // The first stalled request pays only its own service time (it was sent
  // on schedule); the ones behind it inherit the backlog.
  EXPECT_DOUBLE_EQ(samples[20].corrected, 0.5);
  EXPECT_GT(samples[29].corrected, 4.0);
}

TEST(OpenLoop, ReplayWithoutBacklogMatchesService) {
  // Service always faster than the inter-arrival gap: no queueing, so
  // corrected == service for every sample.
  const std::vector<double> schedule = {0.0, 0.1, 0.2, 0.3};
  const std::vector<double> service = {0.01, 0.02, 0.01, 0.05};
  const std::vector<OpenLoopSample> samples =
      replay_open_loop(schedule, service);
  ASSERT_EQ(samples.size(), 4u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_NEAR(samples[i].corrected, service[i], 1e-12);
    EXPECT_NEAR(samples[i].service, service[i], 1e-12);
  }
}

}  // namespace
}  // namespace xbar::client
