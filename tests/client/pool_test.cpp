// ClientPool + SharedBreaker tests.  The load-bearing one is the
// half-open contract under concurrency: when the cooldown elapses and N
// threads race into allow(), exactly one wins the probe slot — run under
// TSan this also proves the monitor is data-race free.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "client/pool.hpp"
#include "client/shared_breaker.hpp"
#include "service/connection.hpp"
#include "service/server.hpp"

namespace xbar::client {
namespace {

constexpr const char* kPing = R"({"method":"ping","id":1})";

using TimePoint = SharedBreaker::TimePoint;

TimePoint at(double seconds) {
  return TimePoint() + std::chrono::duration_cast<TimePoint::duration>(
                           std::chrono::duration<double>(seconds));
}

BreakerConfig tight_breaker() {
  BreakerConfig config;
  config.window = 8;
  config.min_samples = 4;
  config.failure_threshold = 0.5;
  config.open_seconds = 1.0;
  return config;
}

/// A port with nothing listening.
std::uint16_t dead_port() {
  std::uint16_t port = 0;
  {
    service::Socket listener = service::listen_on("127.0.0.1", 0, port);
  }
  return port;
}

void trip(SharedBreaker& breaker) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.allow(at(i)));
    breaker.record_failure(at(i));
  }
  ASSERT_EQ(breaker.state(), SharedBreaker::State::kOpen);
}

/// N threads race allow(now) through a start barrier; returns how many
/// were admitted.
unsigned race_allow(SharedBreaker& breaker, TimePoint now,
                    unsigned racers) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::atomic<unsigned> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(racers);
  for (unsigned t = 0; t < racers; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load()) {
        std::this_thread::yield();
      }
      if (breaker.allow(now)) {
        admitted.fetch_add(1);
      }
    });
  }
  while (ready.load() < racers) {
    std::this_thread::yield();
  }
  go.store(true);
  for (std::thread& thread : threads) {
    thread.join();
  }
  return admitted.load();
}

TEST(SharedBreaker, HalfOpenAdmitsExactlyOneConcurrentProbe) {
  SharedBreaker breaker(tight_breaker());
  trip(breaker);

  // Cooldown elapsed; 8 threads race for the probe slot.  Any admitted
  // count other than exactly 1 means a recovering backend would be
  // re-buried under a thundering herd (or never probed at all).
  EXPECT_EQ(race_allow(breaker, at(10), 8), 1u);
  EXPECT_EQ(breaker.state(), SharedBreaker::State::kHalfOpen);
  SharedBreaker::Snapshot snapshot = breaker.snapshot();
  EXPECT_EQ(snapshot.half_open, 1u);

  // While the probe is in flight, later callers are still rejected.
  EXPECT_EQ(race_allow(breaker, at(11), 8), 0u);

  // Probe fails: re-open, new cooldown, and the next elapsed cooldown
  // again admits exactly one.
  breaker.record_failure(at(12));
  EXPECT_EQ(breaker.state(), SharedBreaker::State::kOpen);
  EXPECT_EQ(race_allow(breaker, at(12.5), 8), 0u);  // cooldown running
  EXPECT_EQ(race_allow(breaker, at(20), 8), 1u);
  snapshot = breaker.snapshot();
  EXPECT_EQ(snapshot.half_open, 2u);

  // Probe succeeds: closed, and the herd flows again.
  breaker.record_success(at(21));
  EXPECT_EQ(breaker.state(), SharedBreaker::State::kClosed);
  snapshot = breaker.snapshot();
  EXPECT_EQ(snapshot.reclosed, 1u);
  EXPECT_EQ(race_allow(breaker, at(22), 8), 8u);
}

TEST(SharedBreaker, ConcurrentOutcomeRecordingStaysConsistent) {
  SharedBreaker breaker(tight_breaker());
  // Hammer the monitor from many threads (success/failure interleaved);
  // under TSan this is the data-race check for the record paths.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&breaker, t] {
      for (int i = 0; i < 200; ++i) {
        if ((t + i) % 2 == 0) {
          breaker.record_success(at(i));
        } else {
          breaker.record_failure(at(i));
        }
        (void)breaker.snapshot();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const SharedBreaker::Snapshot snapshot = breaker.snapshot();
  EXPECT_GE(snapshot.failure_rate, 0.0);
  EXPECT_LE(snapshot.failure_rate, 1.0);
}

TEST(ClientPool, RoundTripsAndReturnsConnectionsToIdle) {
  service::ServerConfig sc;
  sc.workers = 4;
  sc.idle_poll_seconds = 0.05;
  service::Server server(sc);
  server.start();

  PoolConfig pc;
  pc.client.port = server.port();
  pc.max_idle = 2;
  ClientPool pool(pc);

  const CallResult result = pool.call(kPing);
  EXPECT_EQ(result.outcome, Outcome::kOk);
  EXPECT_NE(result.response.find("pong"), std::string::npos);
  EXPECT_EQ(pool.outstanding(), 0u);

  const ClientStats stats = pool.stats();
  EXPECT_EQ(stats.counters.calls, 1u);
  EXPECT_EQ(stats.endpoint,
            "127.0.0.1:" + std::to_string(server.port()));
  server.stop();
}

TEST(ClientPool, ConcurrentCallersAllSucceed) {
  service::ServerConfig sc;
  sc.workers = 6;
  sc.idle_poll_seconds = 0.05;
  service::Server server(sc);
  server.start();

  PoolConfig pc;
  pc.client.port = server.port();
  pc.max_idle = 4;
  ClientPool pool(pc);

  std::atomic<unsigned> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 16; ++i) {
        if (pool.call(kPing).outcome == Outcome::kOk) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(ok.load(), 64u);
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.stats().counters.calls, 64u);
  server.stop();
}

TEST(ClientPool, SingleAttemptPerCallSharedBreakerProtectsAllCallers) {
  PoolConfig pc;
  pc.client.port = dead_port();
  pc.client.connect_timeout_seconds = 0.5;
  pc.breaker.window = 4;
  pc.breaker.min_samples = 2;
  pc.breaker.failure_threshold = 0.5;
  pc.breaker.open_seconds = 30.0;  // no half-open within the test
  ClientPool pool(pc);

  // Pooled clients never retry (failover is the caller's job): each call
  // is exactly one network attempt, recorded into the shared breaker.
  const CallResult first = pool.call(kPing);
  EXPECT_EQ(first.outcome, Outcome::kRefused);
  EXPECT_EQ(first.attempts, 1u);
  const CallResult second = pool.call(kPing);
  EXPECT_EQ(second.outcome, Outcome::kRefused);
  EXPECT_EQ(second.attempts, 1u);

  // min_samples reached: the endpoint-wide breaker is open, every caller
  // now fails fast with zero attempts.
  EXPECT_EQ(pool.breaker().state(), SharedBreaker::State::kOpen);
  const CallResult third = pool.call(kPing);
  EXPECT_EQ(third.outcome, Outcome::kBreakerOpen);
  EXPECT_EQ(third.attempts, 0u);

  const ClientStats stats = pool.stats();
  EXPECT_EQ(stats.breaker_state, CircuitBreaker::State::kOpen);
  EXPECT_EQ(stats.breaker_opened, 1u);
  EXPECT_GE(stats.counters.attempt_refused, 2u);
}

}  // namespace
}  // namespace xbar::client
