// Deterministic state-machine tests for the circuit breaker.  Time is a
// parameter everywhere, so the transitions are driven with synthetic
// TimePoints and the test never sleeps.

#include "client/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace xbar::client {
namespace {

using State = CircuitBreaker::State;
using TimePoint = CircuitBreaker::TimePoint;

TimePoint at(double seconds) {
  return TimePoint() + std::chrono::duration_cast<TimePoint::duration>(
                           std::chrono::duration<double>(seconds));
}

BreakerConfig tight_config() {
  BreakerConfig config;
  config.window = 8;
  config.min_samples = 4;
  config.failure_threshold = 0.5;
  config.open_seconds = 1.0;
  return config;
}

TEST(CircuitBreaker, StartsClosedAndAllows) {
  CircuitBreaker breaker(tight_config());
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_TRUE(breaker.allow(at(0)));
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST(CircuitBreaker, StaysClosedBelowMinSamples) {
  CircuitBreaker breaker(tight_config());
  // Three straight failures: 100% failure rate but under min_samples.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow(at(i)));
    breaker.record_failure(at(i));
  }
  EXPECT_EQ(breaker.state(), State::kClosed);
}

TEST(CircuitBreaker, OpensAtThresholdWithEnoughSamples) {
  CircuitBreaker breaker(tight_config());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.allow(at(i)));
    breaker.record_failure(at(i));
  }
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.allow(at(3.5)));  // cooldown not elapsed
}

TEST(CircuitBreaker, SuccessesKeepItClosed) {
  CircuitBreaker breaker(tight_config());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(breaker.allow(at(i)));
    breaker.record_success(at(i));
  }
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 0.0);
}

TEST(CircuitBreaker, FullCycleClosedOpenHalfOpenClosed) {
  CircuitBreaker breaker(tight_config());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.allow(at(i)));
    breaker.record_failure(at(i));
  }
  ASSERT_EQ(breaker.state(), State::kOpen);

  // Cooldown (1s) not elapsed: still open, calls rejected.
  EXPECT_FALSE(breaker.allow(at(3.9)));
  EXPECT_EQ(breaker.state(), State::kOpen);

  // Cooldown elapsed: one probe admitted, concurrent calls still blocked.
  EXPECT_TRUE(breaker.allow(at(5.1)));
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(at(5.2)));

  // Probe succeeds: closed, window reset, calls flow again.
  breaker.record_success(at(5.3));
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 0.0);
  EXPECT_TRUE(breaker.allow(at(5.4)));
  EXPECT_EQ(breaker.times_opened(), 1u);
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopens) {
  CircuitBreaker breaker(tight_config());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.allow(at(i)));
    breaker.record_failure(at(i));
  }
  ASSERT_EQ(breaker.state(), State::kOpen);

  ASSERT_TRUE(breaker.allow(at(5.1)));  // probe
  breaker.record_failure(at(5.2));
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);

  // The new cooldown runs from the re-open, not the original trip.
  EXPECT_FALSE(breaker.allow(at(5.9)));
  EXPECT_TRUE(breaker.allow(at(6.3)));
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
}

TEST(CircuitBreaker, WindowSlidesOldFailuresOut) {
  BreakerConfig config = tight_config();
  config.window = 4;
  CircuitBreaker breaker(config);
  // Two failures then a run of successes: the failures age out of the
  // 4-slot ring, so the rate returns to zero.
  breaker.record_failure(at(0));
  breaker.record_failure(at(1));
  for (int i = 2; i < 6; ++i) {
    breaker.record_success(at(i));
  }
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 0.0);
}

TEST(CircuitBreaker, TransitionCountersRecordTheFullHistory) {
  CircuitBreaker breaker(tight_config());
  EXPECT_EQ(breaker.times_half_open(), 0u);
  EXPECT_EQ(breaker.times_reclosed(), 0u);

  // Trip, probe-and-fail, probe-and-succeed: opened twice, two probes
  // admitted, one of them re-closed the breaker.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.allow(at(i)));
    breaker.record_failure(at(i));
  }
  ASSERT_TRUE(breaker.allow(at(5.1)));
  breaker.record_failure(at(5.2));
  ASSERT_TRUE(breaker.allow(at(6.5)));
  breaker.record_success(at(6.6));

  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_EQ(breaker.times_opened(), 2u);
  EXPECT_EQ(breaker.times_half_open(), 2u);
  EXPECT_EQ(breaker.times_reclosed(), 1u);
}

TEST(CircuitBreaker, ToStringNamesStates) {
  EXPECT_EQ(to_string(State::kClosed), "closed");
  EXPECT_EQ(to_string(State::kOpen), "open");
  EXPECT_EQ(to_string(State::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace xbar::client
