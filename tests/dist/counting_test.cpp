#include "dist/counting.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "numeric/kahan.hpp"

namespace xbar::dist {
namespace {

// Shared checks for any counting distribution: pmf sums to 1 and the first
// two empirical moments of the pmf match the declared ones.
void check_moments(const CountingDistribution& d, unsigned support_probe,
                   double tol = 1e-9) {
  num::KahanSum total;
  num::KahanSum mean;
  num::KahanSum second;
  for (unsigned k = 0; k <= support_probe; ++k) {
    const double p = d.pmf(k);
    ASSERT_GE(p, 0.0);
    total.add(p);
    mean.add(k * p);
    second.add(static_cast<double>(k) * k * p);
  }
  EXPECT_NEAR(total.value(), 1.0, tol) << d.name();
  EXPECT_NEAR(mean.value(), d.mean(), tol * (1.0 + d.mean())) << d.name();
  const double var = second.value() - mean.value() * mean.value();
  EXPECT_NEAR(var, d.variance(), tol * (1.0 + d.variance())) << d.name();
}

TEST(BinomialCounting, MomentsAndNormalization) {
  const BinomialCounting d(40, 0.3);
  check_moments(d, 40);
  EXPECT_TRUE(d.has_finite_support());
  EXPECT_EQ(d.support_bound(), 40u);
  EXPECT_EQ(d.pmf(41), 0.0);
}

TEST(BinomialCounting, DegenerateProbabilities) {
  const BinomialCounting zero(10, 0.0);
  EXPECT_DOUBLE_EQ(zero.pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(zero.pmf(1), 0.0);
  const BinomialCounting one(10, 1.0);
  EXPECT_DOUBLE_EQ(one.pmf(10), 1.0);
  EXPECT_DOUBLE_EQ(one.pmf(9), 0.0);
}

TEST(BinomialCounting, PeakednessBelowOne) {
  EXPECT_LT(BinomialCounting(20, 0.4).peakedness(), 1.0);
}

TEST(PoissonCounting, MomentsAndNormalization) {
  const PoissonCounting d(3.7);
  check_moments(d, 60);
  EXPECT_FALSE(d.has_finite_support());
  EXPECT_DOUBLE_EQ(d.peakedness(), 1.0);
}

TEST(PoissonCounting, MatchesClosedFormPmf) {
  const PoissonCounting d(2.0);
  EXPECT_NEAR(d.pmf(0), std::exp(-2.0), 1e-14);
  EXPECT_NEAR(d.pmf(3), std::exp(-2.0) * 8.0 / 6.0, 1e-14);
}

TEST(PoissonCounting, ZeroRateIsPointMass) {
  const PoissonCounting d(0.0);
  EXPECT_DOUBLE_EQ(d.pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(d.pmf(1), 0.0);
}

TEST(PascalCounting, MomentsAndNormalization) {
  const PascalCounting d(2.5, 0.4);
  check_moments(d, 120);
  EXPECT_GT(d.peakedness(), 1.0);
}

TEST(PascalCounting, GeometricSpecialCase) {
  // r = 1 is geometric: pmf(k) = p^k (1-p).
  const PascalCounting d(1.0, 0.3);
  for (unsigned k = 0; k < 10; ++k) {
    EXPECT_NEAR(d.pmf(k), std::pow(0.3, k) * 0.7, 1e-12);
  }
}

TEST(PascalCounting, NonIntegerRSupported) {
  const PascalCounting d(0.5, 0.6);
  check_moments(d, 300, 1e-8);
}

TEST(Cdf, MonotoneAndBounded) {
  const PoissonCounting d(5.0);
  double prev = 0.0;
  for (unsigned k = 0; k < 30; ++k) {
    const double c = d.cdf(k);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(d.cdf(60), 1.0, 1e-12);
}

TEST(InfiniteServerFactory, DispatchesOnBetaSign) {
  // Smooth -> Binomial with n = -alpha/beta, p = q/(1+q), q = -beta/mu.
  const auto smooth = infinite_server_occupancy(BppParams{1.0, -0.25, 1.0});
  EXPECT_NE(smooth->name().find("Binomial"), std::string::npos);
  EXPECT_TRUE(smooth->has_finite_support());
  EXPECT_EQ(smooth->support_bound(), 4u);

  const auto regular = infinite_server_occupancy(BppParams{1.5, 0.0, 1.0});
  EXPECT_NE(regular->name().find("Poisson"), std::string::npos);
  EXPECT_DOUBLE_EQ(regular->mean(), 1.5);

  const auto peaky = infinite_server_occupancy(BppParams{1.0, 0.5, 1.0});
  EXPECT_NE(peaky->name().find("Pascal"), std::string::npos);
}

TEST(InfiniteServerFactory, MomentsMatchBppFormulas) {
  // The factory's distribution must reproduce the paper's M, V, Z.
  for (const auto& p :
       {BppParams{1.0, -0.25, 1.0}, BppParams{1.5, 0.0, 1.0},
        BppParams{1.0, 0.5, 1.0}, BppParams{0.8, 0.2, 2.0}}) {
    const auto d = infinite_server_occupancy(p);
    EXPECT_NEAR(d->mean(), p.mean(), 1e-12) << d->name();
    EXPECT_NEAR(d->variance(), p.variance(), 1e-12) << d->name();
    EXPECT_NEAR(d->peakedness(), p.peakedness(), 1e-12) << d->name();
  }
}

TEST(PeakednessOrdering, SmoothBelowRegularBelowPeaky) {
  const auto smooth = infinite_server_occupancy(BppParams{1.0, -0.5, 1.0});
  const auto regular = infinite_server_occupancy(BppParams{1.0, 0.0, 1.0});
  const auto peaky = infinite_server_occupancy(BppParams{1.0, 0.5, 1.0});
  EXPECT_LT(smooth->peakedness(), regular->peakedness());
  EXPECT_LT(regular->peakedness(), peaky->peakedness());
}

TEST(LogPmf, ConsistentWithPmf) {
  const PascalCounting d(3.0, 0.25);
  for (unsigned k = 0; k < 20; ++k) {
    EXPECT_NEAR(std::exp(d.log_pmf(k)), d.pmf(k), 1e-14);
  }
}

}  // namespace
}  // namespace xbar::dist
