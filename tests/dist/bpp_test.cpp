#include "dist/bpp.hpp"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace xbar::dist {
namespace {

TEST(BppParams, ShapeClassification) {
  EXPECT_EQ((BppParams{1.0, -0.1, 1.0}).shape(), TrafficShape::kSmooth);
  EXPECT_EQ((BppParams{1.0, 0.0, 1.0}).shape(), TrafficShape::kRegular);
  EXPECT_EQ((BppParams{1.0, 0.1, 1.0}).shape(), TrafficShape::kPeaky);
}

TEST(BppParams, ToStringNames) {
  EXPECT_EQ(to_string(TrafficShape::kSmooth), "smooth");
  EXPECT_EQ(to_string(TrafficShape::kRegular), "regular");
  EXPECT_EQ(to_string(TrafficShape::kPeaky), "peaky");
}

TEST(BppParams, IntensityIsLinearAndClamped) {
  const BppParams p{1.0, -0.25, 1.0};  // population 4
  EXPECT_DOUBLE_EQ(p.intensity(0), 1.0);
  EXPECT_DOUBLE_EQ(p.intensity(2), 0.5);
  EXPECT_DOUBLE_EQ(p.intensity(4), 0.0);
  EXPECT_DOUBLE_EQ(p.intensity(10), 0.0);  // clamped, not negative
}

TEST(BppParams, PaperMomentFormulas) {
  // Paper §2: M = alpha/(1-beta), V = alpha/(1-beta)^2, Z = 1/(1-beta)
  // (with mu = 1).
  const BppParams p{2.0, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(p.mean(), 4.0);
  EXPECT_DOUBLE_EQ(p.variance(), 8.0);
  EXPECT_DOUBLE_EQ(p.peakedness(), 2.0);
}

TEST(BppParams, PeakednessRegimes) {
  EXPECT_LT((BppParams{1.0, -0.5, 1.0}).peakedness(), 1.0);  // smooth
  EXPECT_DOUBLE_EQ((BppParams{1.0, 0.0, 1.0}).peakedness(), 1.0);
  EXPECT_GT((BppParams{1.0, 0.5, 1.0}).peakedness(), 1.0);  // peaky
}

TEST(BppParams, MuScalesTheFamily) {
  // Z depends on beta/mu, so doubling both leaves Z unchanged.
  const BppParams a{1.0, 0.5, 1.0};
  const BppParams b{2.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(a.peakedness(), b.peakedness());
}

TEST(BppParams, InfiniteMomentsAtCriticalBeta) {
  const BppParams p{1.0, 1.0, 1.0};
  EXPECT_TRUE(std::isinf(p.mean()));
  EXPECT_TRUE(std::isinf(p.variance()));
}

TEST(BppParams, SourcePopulation) {
  const BppParams p{2.4, -0.004, 1.0};
  EXPECT_DOUBLE_EQ(p.source_population(), 600.0);
}

TEST(BppValidity, PoissonAlwaysValid) {
  EXPECT_TRUE((BppParams{0.1, 0.0, 1.0}).is_valid(1000));
}

TEST(BppValidity, PascalRequiresBetaBelowMu) {
  EXPECT_TRUE((BppParams{1.0, 0.9, 1.0}).is_valid(10));
  EXPECT_FALSE((BppParams{1.0, 1.0, 1.0}).is_valid(10));
  EXPECT_FALSE((BppParams{1.0, 2.0, 1.0}).is_valid(10));
  EXPECT_TRUE((BppParams{1.0, 1.5, 2.0}).is_valid(10));  // beta/mu < 1
}

TEST(BppValidity, BernoulliRequiresIntegerPopulation) {
  // Figure 1 parameters: alpha~=.0024, beta~=-4e-6 -> population 600.
  EXPECT_TRUE((BppParams{0.0024, -4.0e-6, 1.0}).is_valid(128));
  // Non-integer ratio fails the strict check.
  EXPECT_FALSE((BppParams{0.0024, -4.1e-6, 1.0}).is_valid(128));
}

TEST(BppValidity, BernoulliIntensityMustCoverPortRange) {
  // population 100 < port bound 128: intensity would go negative.
  const BppParams p{1.0, -0.01, 1.0};
  EXPECT_TRUE(p.is_valid(100));
  EXPECT_FALSE(p.is_valid(128));
}

TEST(BppValidity, RequiresPositiveAlphaAndMu) {
  EXPECT_FALSE((BppParams{0.0, 0.0, 1.0}).is_valid(10));
  EXPECT_FALSE((BppParams{1.0, 0.0, 0.0}).is_valid(10));
}

TEST(BppAdmissible, RelaxesIntegerPopulationOnly) {
  // Non-integer population: inadmissible strictly, admissible relaxed.
  const BppParams p{0.0024, -4.1e-6, 1.0};
  EXPECT_FALSE(p.is_valid(128));
  EXPECT_TRUE(p.is_admissible(128));
  // But intensity must still stay non-negative over the port range.
  EXPECT_FALSE((BppParams{1.0, -0.01, 1.0}).is_admissible(128));
  // And Pascal convergence still applies.
  EXPECT_FALSE((BppParams{1.0, 1.0, 1.0}).is_admissible(10));
}

TEST(BppParams, FromMeanPeakednessRoundTrips) {
  for (const double z : {0.25, 0.5, 1.0, 2.0, 5.0}) {
    const BppParams p = BppParams::from_mean_peakedness(3.0, z, 2.0);
    EXPECT_NEAR(p.mean(), 3.0, 1e-12) << z;
    EXPECT_NEAR(p.peakedness(), z, 1e-12) << z;
    EXPECT_DOUBLE_EQ(p.mu, 2.0);
  }
}

TEST(BppParams, StreamOutputMentionsShape) {
  std::ostringstream os;
  os << BppParams{1.0, 0.5, 1.0};
  EXPECT_NE(os.str().find("peaky"), std::string::npos);
}

}  // namespace
}  // namespace xbar::dist
