#include "dist/service.hpp"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "dist/empirical.hpp"
#include "dist/rng.hpp"

namespace xbar::dist {
namespace {

struct ServiceCase {
  std::string label;
  std::function<std::unique_ptr<ServiceDistribution>()> make;
  double expected_mean;
  double expected_scv;
};

class ServiceDistributionTest : public ::testing::TestWithParam<ServiceCase> {
};

TEST_P(ServiceDistributionTest, DeclaredMomentsMatchParameters) {
  const auto d = GetParam().make();
  EXPECT_NEAR(d->mean(), GetParam().expected_mean, 1e-12);
  EXPECT_NEAR(d->scv(), GetParam().expected_scv, 1e-12);
}

TEST_P(ServiceDistributionTest, EmpiricalMomentsMatchDeclared) {
  const auto d = GetParam().make();
  Xoshiro256 rng(0xABCDEF);
  RunningMoments m;
  constexpr int kN = 400'000;
  for (int i = 0; i < kN; ++i) {
    const double v = d->sample(rng);
    ASSERT_GE(v, 0.0) << d->name();
    m.add(v);
  }
  EXPECT_NEAR(m.mean(), d->mean(), 0.02 * d->mean()) << d->name();
  const double scv = m.variance() / (m.mean() * m.mean());
  EXPECT_NEAR(scv, d->scv(), 0.05 * (d->scv() + 0.1)) << d->name();
}

TEST_P(ServiceDistributionTest, NameIsNonEmpty) {
  EXPECT_FALSE(GetParam().make()->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ServiceDistributionTest,
    ::testing::Values(
        ServiceCase{"exponential", [] { return make_exponential(2.0); }, 0.5,
                    1.0},
        ServiceCase{"deterministic", [] { return make_deterministic(1.5); },
                    1.5, 0.0},
        ServiceCase{"erlang2", [] { return make_erlang(2, 1.0); }, 1.0, 0.5},
        ServiceCase{"erlang8", [] { return make_erlang(8, 2.0); }, 2.0,
                    0.125},
        ServiceCase{"hyperexp", [] { return make_hyperexponential(1.0, 4.0); },
                    1.0, 4.0},
        ServiceCase{"uniform", [] { return make_uniform(3.0); }, 3.0,
                    1.0 / 3.0},
        ServiceCase{"lognormal", [] { return make_lognormal(1.0, 2.0); }, 1.0,
                    2.0}),
    [](const ::testing::TestParamInfo<ServiceCase>& info) {
      return info.param.label;
    });

TEST(Deterministic, AlwaysReturnsMean) {
  const auto d = make_deterministic(0.7);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(d->sample(rng), 0.7);
  }
}

TEST(Hyperexponential, ScvAboveOneRequired) {
  // scv == 1 degenerates to exponential; the factory requires scv > 1.
  const auto d = make_hyperexponential(1.0, 1.5);
  EXPECT_DOUBLE_EQ(d->scv(), 1.5);
}

TEST(Erlang, SumOfExponentialsShape) {
  // Erlang-k has P(X < mean/10) much smaller than exponential: check the
  // left tail thins as k grows.
  Xoshiro256 rng(3);
  const auto count_small = [&rng](const ServiceDistribution& d) {
    int hits = 0;
    for (int i = 0; i < 100000; ++i) {
      if (d.sample(rng) < 0.1) {
        ++hits;
      }
    }
    return hits;
  };
  const auto e1 = make_exponential(1.0);
  const auto e4 = make_erlang(4, 1.0);
  EXPECT_GT(count_small(*e1), 2 * count_small(*e4));
}

}  // namespace
}  // namespace xbar::dist
