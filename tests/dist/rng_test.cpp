#include "dist/rng.hpp"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace xbar::dist {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForFixedSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01OpenLeftNeverZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01_open_left();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanAndVariance) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 1'000'000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.5, 2e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 2e-3);
}

TEST(Xoshiro256, UniformBelowStaysInRangeAndCoversAll) {
  Xoshiro256 rng(13);
  constexpr std::uint64_t kBound = 7;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < 70000; ++i) {
    const std::uint64_t v = rng.uniform_below(kBound);
    ASSERT_LT(v, kBound);
    ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // ~5 sigma
  }
}

TEST(Xoshiro256, UniformBelowOneIsAlwaysZero) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_below(1), 0u);
  }
}

TEST(Xoshiro256, ExponentialHasCorrectMean) {
  Xoshiro256 rng(19);
  const double rate = 2.5;
  double sum = 0.0;
  constexpr int kN = 1'000'000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.exponential(rate);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 1.0 / rate, 2e-3);
}

TEST(Xoshiro256, SplitStreamsDiffer) {
  Xoshiro256 parent(99);
  Xoshiro256 child = parent.split();
  // The child reproduces what the parent WOULD have produced pre-jump, and
  // the parent continues from beyond 2^128 draws — so they must not collide.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(child.next());
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(seen.contains(parent.next()));
  }
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~0ULL);
}

}  // namespace
}  // namespace xbar::dist
