#include "dist/empirical.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace xbar::dist {
namespace {

TEST(RunningMoments, EmptyState) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.peakedness(), 0.0);
}

TEST(RunningMoments, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningMoments m;
  for (const double x : xs) {
    m.add(x);
  }
  EXPECT_EQ(m.count(), xs.size());
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  // Unbiased sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(m.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningMoments, SingleSampleHasZeroVariance) {
  RunningMoments m;
  m.add(3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_EQ(m.variance(), 0.0);
}

TEST(RunningMoments, NumericallyStableAroundLargeOffset) {
  // Welford keeps precision where the naive sum-of-squares method fails.
  RunningMoments m;
  for (int i = 0; i < 1000; ++i) {
    m.add(1e9 + (i % 2));
  }
  EXPECT_NEAR(m.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(TimeWeightedMoments, PiecewiseConstantAverage) {
  TimeWeightedMoments m;
  m.add(1.0, 2.0);  // value 1 for 2s
  m.add(3.0, 2.0);  // value 3 for 2s
  EXPECT_DOUBLE_EQ(m.total_time(), 4.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.variance(), 1.0);
  EXPECT_DOUBLE_EQ(m.peakedness(), 0.5);
}

TEST(TimeWeightedMoments, IgnoresNonPositiveDurations) {
  TimeWeightedMoments m;
  m.add(100.0, 0.0);
  m.add(100.0, -1.0);
  EXPECT_EQ(m.total_time(), 0.0);
  EXPECT_EQ(m.mean(), 0.0);
}

TEST(TimeWeightedMoments, ConstantProcessHasZeroVariance) {
  TimeWeightedMoments m;
  for (int i = 0; i < 100; ++i) {
    m.add(7.0, 0.5);
  }
  EXPECT_DOUBLE_EQ(m.mean(), 7.0);
  EXPECT_NEAR(m.variance(), 0.0, 1e-9);
}

TEST(Histogram, CountsAndFrequencies) {
  Histogram h(4);
  for (int i = 0; i < 3; ++i) {
    h.add(1);
  }
  h.add(0);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.frequency(1), 0.75);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.25);
  EXPECT_DOUBLE_EQ(h.frequency(2), 0.0);
}

TEST(Histogram, ClampsOverflowIntoLastBucket) {
  Histogram h(2);  // buckets 0,1,2
  h.add(100);
  h.add(2);
  EXPECT_DOUBLE_EQ(h.frequency(2), 1.0);
}

TEST(Histogram, OutOfRangeQueryIsZero) {
  Histogram h(2);
  h.add(0);
  EXPECT_DOUBLE_EQ(h.frequency(5), 0.0);
}

TEST(Histogram, EmptyFrequenciesAreZero) {
  Histogram h(3);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.0);
}

}  // namespace
}  // namespace xbar::dist
