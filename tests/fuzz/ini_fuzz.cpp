// Fuzz harness for the scenario/INI front door.
//
// Contract under test: any byte string fed to `parse_scenario_string`
// either yields a valid Scenario or raises a typed xbar::Error — never a
// crash, an uncaught foreign exception, UB, or a hang.  This is the same
// surface the CLI exposes to untrusted files, and exactly where the typed
// erlang/wilkinson/model domain checks must hold the line.
//
// Built two ways (tests/fuzz/CMakeLists.txt):
//   * clang + XBAR_BUILD_FUZZERS: a real libFuzzer binary (-fsanitize=
//     fuzzer,address) for CI's coverage-guided smoke run;
//   * any compiler, XBAR_FUZZ_STANDALONE: a plain main() that replays the
//     files given on the command line once each — the corpus regression
//     mode ctest runs everywhere (gcc has no libFuzzer).

#include <cstddef>
#include <cstdint>
#include <string>

#include "config/scenario_file.hpp"
#include "core/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)xbar::config::parse_scenario_string(text);
  } catch (const xbar::Error&) {
    // Typed rejection is the accepted outcome for malformed input.
  }
  return 0;
}

#ifdef XBAR_FUZZ_STANDALONE
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i], std::ios::binary);
    if (!file) {
      std::cerr << "cannot read corpus file " << argv[i] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();
    (void)LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    ++replayed;
  }
  std::cout << "replayed " << replayed << " corpus inputs\n";
  return 0;
}
#endif
