// Fuzz harness for the router's backend-response reassembly — the trust
// boundary between the front tier and its own fleet.
//
// Contract under test: `router::relay_or_error` fed any byte string
// either relays the line verbatim (it was a well-formed response
// envelope) or synthesizes a typed "io" error frame under the client's
// request id — never a crash, never an exception escaping, and never a
// non-protocol line toward the client.  A backend that truncates a frame
// mid-write or speaks a different protocol entirely must not be able to
// corrupt a client's NDJSON stream.
//
// Built two ways, same as ini_fuzz (see tests/fuzz/CMakeLists.txt):
// libFuzzer under clang, standalone corpus replayer elsewhere.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "router/reassembly.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  const xbar::router::RelayResult result =
      xbar::router::relay_or_error(line, "null");
  // Invariants the router's data path leans on; a violation here is a
  // client-visible protocol corruption, so trap on it like a crash.
  if (result.relayed) {
    if (result.frame != line) {
      std::abort();  // relayed frames must be verbatim
    }
  } else {
    const std::string_view frame(result.frame);
    if (frame.empty() || frame.front() != '{' ||
        frame.find("\"status\":\"error\"") == std::string_view::npos ||
        frame.find("\"kind\":\"io\"") == std::string_view::npos) {
      std::abort();  // synthesized frames must be typed protocol errors
    }
  }
  return 0;
}

#ifdef XBAR_FUZZ_STANDALONE
#include <fstream>
#include <iostream>
#include <sstream>

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i], std::ios::binary);
    if (!file) {
      std::cerr << "cannot read corpus file " << argv[i] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();
    (void)LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    ++replayed;
  }
  std::cout << "replayed " << replayed << " corpus inputs\n";
  return 0;
}
#endif
