// Fuzz harness for the serving front door: raw socket bytes -> JSON parse
// -> request validation -> model construction.
//
// Contract under test: any byte string fed to `service::parse_request`
// either yields a valid Request or raises a typed xbar::Error — never a
// crash, unbounded recursion (nesting depth limit), unbounded allocation
// (class/size caps), or a hang.  This is exactly the surface xbar_serve
// exposes to untrusted network input.
//
// Built two ways, same as ini_fuzz (see tests/fuzz/CMakeLists.txt):
// libFuzzer under clang, standalone corpus replayer elsewhere.

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/error.hpp"
#include "service/protocol.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)xbar::service::parse_request(text);
  } catch (const xbar::Error&) {
    // Typed rejection is the accepted outcome for malformed input.
  }
  return 0;
}

#ifdef XBAR_FUZZ_STANDALONE
#include <fstream>
#include <iostream>
#include <sstream>

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i], std::ios::binary);
    if (!file) {
      std::cerr << "cannot read corpus file " << argv[i] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();
    (void)LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    ++replayed;
  }
  std::cout << "replayed " << replayed << " corpus inputs\n";
  return 0;
}
#endif
