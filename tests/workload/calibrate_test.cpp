#include "workload/calibrate.hpp"

#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "workload/scenario.hpp"

namespace xbar::workload {
namespace {

TEST(Calibrate, HitsTargetBlockingPoisson) {
  const auto result = calibrate_load(16, 1, 0.005);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->blocking, 0.005, 1e-8);
  EXPECT_GT(result->alpha_tilde, 0.0);
  EXPECT_GT(result->concurrency, 0.0);
}

TEST(Calibrate, HitsTargetBlockingPeaky) {
  const auto result = calibrate_load(16, 1, 0.005, 0.5);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->blocking, 0.005, 1e-8);
}

TEST(Calibrate, HitsTargetBlockingSmooth) {
  const auto result = calibrate_load(16, 1, 0.005, -0.001);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->blocking, 0.005, 1e-8);
}

TEST(Calibrate, PeakyTrafficAdmitsLessLoadAtSameBlocking) {
  // The operational consequence of Figure 2: at the same blocking target a
  // peaky stream must be admitted at lower alpha~.
  const auto poisson = calibrate_load(16, 1, 0.005, 0.0);
  const auto peaky = calibrate_load(16, 1, 0.005, 0.9);
  ASSERT_TRUE(poisson && peaky);
  EXPECT_LT(peaky->alpha_tilde, poisson->alpha_tilde);
}

TEST(Calibrate, WiderBandwidthAdmitsLessLoad) {
  const auto narrow = calibrate_load(16, 1, 0.005);
  const auto wide = calibrate_load(16, 2, 0.005);
  ASSERT_TRUE(narrow && wide);
  // Compare carried port-load: the wide class carries fewer connections.
  EXPECT_LT(wide->concurrency * 2.0, narrow->concurrency * 1.0 + 1e-9);
}

TEST(Calibrate, CalibratedModelReproducesTarget) {
  const auto result = calibrate_load(8, 1, 0.01, 0.25);
  ASSERT_TRUE(result.has_value());
  const core::CrossbarModel model(
      core::Dims::square(8),
      {core::TrafficClass::bursty("check", result->alpha_tilde,
                                  0.25 * result->alpha_tilde)});
  EXPECT_NEAR(core::solve(model).per_class[0].blocking, 0.01, 1e-8);
}

TEST(Calibrate, PaperOperatingPointIsNearFigureLoad) {
  // The paper says alpha~ = .0024 drives blocking to ~0.5%.  Calibrating a
  // 64x64 Poisson stream to exactly 0.5% must land in the same decade.
  const auto result = calibrate_load(64, 1, 0.005);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->alpha_tilde, 0.0024 / 10.0);
  EXPECT_LT(result->alpha_tilde, 0.0024 * 10.0);
}

}  // namespace
}  // namespace xbar::workload
