#include "workload/scenario.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace xbar::workload {
namespace {

TEST(Scenario, Fig1BetasAreThePapersAndBernoulliValid) {
  const auto betas = fig1_beta_tildes();
  ASSERT_EQ(betas.size(), 5u);
  EXPECT_DOUBLE_EQ(betas.front(), 0.0);
  EXPECT_DOUBLE_EQ(betas.back(), -4.0e-6);
  // alpha~/beta~ must be a negative integer (paper §2) for each nonzero one.
  for (const double b : betas) {
    if (b == 0.0) {
      continue;
    }
    const double ratio = kFigureAlphaTilde / b;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-9) << b;
    EXPECT_LT(ratio, 0.0);
  }
}

TEST(Scenario, Fig2BetasArePeaky) {
  for (const double b : fig2_beta_tildes()) {
    EXPECT_GE(b, 0.0);
  }
  EXPECT_EQ(fig2_beta_tildes().front(), 0.0);
}

TEST(Scenario, FigureSizesSpanPaperRange) {
  const auto sizes = figure_sizes();
  EXPECT_EQ(sizes.front(), 1u);
  EXPECT_EQ(sizes.back(), 128u);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);
  }
}

TEST(Scenario, SingleClassModelsValidateAtEverySize) {
  for (const unsigned n : figure_sizes()) {
    for (const double b : fig1_beta_tildes()) {
      EXPECT_NO_THROW(single_class_model(n, kFigureAlphaTilde, b)) << n;
    }
    for (const double b : fig2_beta_tildes()) {
      EXPECT_NO_THROW(single_class_model(n, kFigureAlphaTilde, b)) << n;
    }
  }
}

TEST(Scenario, TwoClassModelHasPoissonThenBursty) {
  const auto m = two_class_model(8, 0.0012, 0.0012, 0.0036);
  ASSERT_EQ(m.num_classes(), 2u);
  EXPECT_TRUE(m.normalized(0).is_poisson());
  EXPECT_FALSE(m.normalized(1).is_poisson());
}

// Table 1 of the paper, digit for digit.
TEST(Scenario, Table1LoadsReproduceThePaper) {
  const struct {
    unsigned n;
    double rho1;
    double rho2;
  } rows[] = {{4, 0.000600, 0.000800},
              {8, 0.000300, 0.000171},
              {16, 0.000150, 0.0000400},
              {32, 0.0000750, 0.00000967},
              {64, 0.0000375, 0.00000238}};
  for (const auto& row : rows) {
    EXPECT_NEAR(fig4_rho_tilde(row.n, 1), row.rho1, 1e-6 + row.rho1 * 5e-3)
        << row.n;
    EXPECT_NEAR(fig4_rho_tilde(row.n, 2), row.rho2, 1e-8 + row.rho2 * 5e-3)
        << row.n;
  }
}

TEST(Scenario, Fig4ModelsValidate) {
  for (const unsigned n : fig4_sizes()) {
    for (const unsigned a : {1u, 2u}) {
      const auto m = fig4_model(n, a);
      EXPECT_EQ(m.normalized(0).bandwidth, a);
    }
  }
}

TEST(Scenario, Table2SetsMatchPaperHeaders) {
  const auto sets = table2_sets();
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_DOUBLE_EQ(sets[0].rho2_tilde, 0.0012);
  EXPECT_DOUBLE_EQ(sets[1].beta2_tilde, 0.0036);
  EXPECT_DOUBLE_EQ(sets[2].rho2_tilde, 0.0036);
  for (const auto& s : sets) {
    EXPECT_DOUBLE_EQ(s.rho1_tilde, 0.0012);
  }
}

TEST(Scenario, Table2ModelWeightsMatchPaper) {
  const auto m = table2_model(4, table2_sets()[0]);
  EXPECT_DOUBLE_EQ(m.normalized(0).weight, 1.0);
  EXPECT_DOUBLE_EQ(m.normalized(1).weight, 0.0001);
}

TEST(Scenario, Table2SizesRunTo256) {
  EXPECT_EQ(table2_sizes().back(), 256u);
  EXPECT_EQ(table2_sizes().front(), 1u);
}

}  // namespace
}  // namespace xbar::workload
