#include "workload/bpp_source.hpp"

#include <gtest/gtest.h>

#include "dist/counting.hpp"

namespace xbar::workload {
namespace {

struct SourceCase {
  std::string label;
  dist::BppParams params;
};

class BppSourceTest : public ::testing::TestWithParam<SourceCase> {};

TEST_P(BppSourceTest, OccupancyMomentsMatchTheory) {
  const auto& p = GetParam().params;
  const auto trace = run_bpp_source(p, 200.0, 60'000.0, 42);
  EXPECT_NEAR(trace.occupancy.mean(), p.mean(), 0.05 * p.mean() + 0.02);
  EXPECT_NEAR(trace.occupancy.peakedness(), p.peakedness(),
              0.12 * p.peakedness() + 0.03);
}

TEST_P(BppSourceTest, OccupancyHistogramMatchesCountingDistribution) {
  const auto& p = GetParam().params;
  const auto trace = run_bpp_source(p, 200.0, 60'000.0, 43);
  const auto theory = dist::infinite_server_occupancy(p);
  for (unsigned k = 0; k < 12; ++k) {
    EXPECT_NEAR(trace.occupancy_histogram.frequency(k), theory->pmf(k), 0.02)
        << GetParam().label << " k=" << k;
  }
}

TEST_P(BppSourceTest, ArrivalRateMatchesMeanTimesMu) {
  // In steady state, arrival rate == departure rate == mean * mu.
  const auto& p = GetParam().params;
  const auto trace = run_bpp_source(p, 200.0, 60'000.0, 44);
  const double rate =
      static_cast<double>(trace.arrivals.size()) / trace.horizon;
  EXPECT_NEAR(rate, p.mean() * p.mu, 0.05 * p.mean() * p.mu + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BppSourceTest,
    ::testing::Values(
        SourceCase{"smooth", dist::BppParams{4.0, -0.5, 1.0}},
        SourceCase{"regular", dist::BppParams{3.0, 0.0, 1.0}},
        SourceCase{"peaky", dist::BppParams{1.5, 0.5, 1.0}},
        SourceCase{"peaky_fast_service", dist::BppParams{3.0, 1.0, 2.0}}),
    [](const ::testing::TestParamInfo<SourceCase>& info) {
      return info.param.label;
    });

TEST(BppSource, ArrivalTimesAreIncreasingAndInHorizon) {
  const auto trace =
      run_bpp_source(dist::BppParams{2.0, 0.0, 1.0}, 10.0, 1000.0, 7);
  double prev = 0.0;
  for (const auto& e : trace.arrivals) {
    EXPECT_GE(e.time, prev);
    EXPECT_LE(e.time, trace.horizon);
    prev = e.time;
  }
  EXPECT_GT(trace.arrivals.size(), 1000u);  // rate ~2/s for 1000s
}

TEST(BppSource, DeterministicForSeed) {
  const auto a = run_bpp_source(dist::BppParams{2.0, 0.5, 1.0}, 10.0, 500.0, 9);
  const auto b = run_bpp_source(dist::BppParams{2.0, 0.5, 1.0}, 10.0, 500.0, 9);
  EXPECT_EQ(a.arrivals.size(), b.arrivals.size());
  EXPECT_DOUBLE_EQ(a.occupancy.mean(), b.occupancy.mean());
}

TEST(BppSource, PeakinessOrderingInSimulatedTraffic) {
  // The whole point of BPP: measured Z orders smooth < regular < peaky.
  const auto smooth =
      run_bpp_source(dist::BppParams{4.0, -0.5, 1.0}, 100.0, 30'000.0, 1);
  const auto regular =
      run_bpp_source(dist::BppParams{8.0 / 3.0, 0.0, 1.0}, 100.0, 30'000.0, 1);
  const auto peaky =
      run_bpp_source(dist::BppParams{4.0 / 3.0, 0.5, 1.0}, 100.0, 30'000.0, 1);
  // All three have mean 8/3; peakedness must order.
  EXPECT_LT(smooth.occupancy.peakedness(), regular.occupancy.peakedness());
  EXPECT_LT(regular.occupancy.peakedness(), peaky.occupancy.peakedness());
}

}  // namespace
}  // namespace xbar::workload
