// OverloadController unit tests (synthetic clock, no sleeps for the AIMD
// loop) plus loopback integration for the degradation ladder: stale
// serving with age_ms, bound-only knapsack answers with an error bracket,
// trunk-reservation priority shedding, the adaptive admission limit, and
// pressure surfacing in the stats/health frames.

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "service/connection.hpp"
#include "service/overload.hpp"
#include "service/server.hpp"

namespace xbar::service {
namespace {

using TimePoint = OverloadController::TimePoint;

TimePoint at(double seconds) {
  return TimePoint() +
         std::chrono::duration_cast<TimePoint::duration>(
             std::chrono::duration<double>(seconds));
}

OverloadConfig controller_config() {
  OverloadConfig config;
  config.target_p99_seconds = 0.1;
  config.min_limit = 2;
  config.max_limit = 64;
  config.initial_limit = 10;
  config.additive_step = 2.0;
  config.decrease_factor = 0.7;
  config.window = 4;
  config.window_seconds = 1.0;
  config.smoothing = 1.0;  // tests read the newest window directly
  return config;
}

void feed_window(OverloadController& controller, double seconds,
                 double base_time) {
  for (std::size_t i = 0; i < controller.config().window; ++i) {
    controller.on_latency(seconds, at(base_time + 1e-3 * double(i)));
  }
}

TEST(OverloadController, AdditiveIncreaseWhenUnderTarget) {
  OverloadController controller(controller_config());
  EXPECT_EQ(controller.limit(), 10u);
  feed_window(controller, 0.01, 0.0);  // p99 well under the 100ms target
  EXPECT_EQ(controller.limit(), 12u);
  const OverloadSnapshot s = controller.snapshot();
  EXPECT_EQ(s.windows, 1u);
  EXPECT_EQ(s.limit_increases, 1u);
  EXPECT_EQ(s.limit_decreases, 0u);
  EXPECT_DOUBLE_EQ(s.pressure, 0.0);  // under target: no latency pressure
}

TEST(OverloadController, MultiplicativeDecreaseWhenOverTarget) {
  OverloadController controller(controller_config());
  feed_window(controller, 0.5, 0.0);  // 5x the target
  EXPECT_EQ(controller.limit(), 7u);  // 10 * 0.7
  feed_window(controller, 0.5, 0.1);
  feed_window(controller, 0.5, 0.2);
  feed_window(controller, 0.5, 0.3);
  feed_window(controller, 0.5, 0.4);
  // Decrease is floored at min_limit.
  EXPECT_EQ(controller.limit(), 2u);
  EXPECT_GE(controller.snapshot().limit_decreases, 5u);
}

TEST(OverloadController, WindowClosesByTimeAtLowRates) {
  OverloadConfig config = controller_config();
  config.window = 1000;  // never closes by count here
  OverloadController controller(config);
  controller.on_latency(0.01, at(0.0));
  EXPECT_EQ(controller.snapshot().windows, 0u);
  controller.on_latency(0.01, at(2.0));  // > window_seconds elapsed
  EXPECT_EQ(controller.snapshot().windows, 1u);
}

TEST(OverloadController, PressureWalksTheLadderThresholds) {
  OverloadController controller(controller_config());
  // ratio 2 -> latency component 1 - 1/2 = 0.5 -> exactly stale_at.
  feed_window(controller, 0.2, 0.0);
  EXPECT_DOUBLE_EQ(controller.pressure(), 0.5);
  EXPECT_EQ(controller.classify(0), LadderRung::kStale);
  EXPECT_EQ(controller.classify(3), LadderRung::kStale);

  // ratio 5 -> component 0.8: bound-only for every rank (< shed_start).
  feed_window(controller, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(controller.pressure(), 0.8);
  EXPECT_EQ(controller.classify(0), LadderRung::kBoundOnly);
  EXPECT_EQ(controller.classify(3), LadderRung::kBoundOnly);

  // ratio 100 -> component 0.99: trunk reservation separates the ranks —
  // thresholds 0.85 / 0.90 / 0.95 shed, the top rank's 1.00 does not.
  feed_window(controller, 10.0, 2.0);
  EXPECT_DOUBLE_EQ(controller.pressure(), 0.99);
  EXPECT_EQ(controller.classify(0), LadderRung::kShed);
  EXPECT_EQ(controller.classify(1), LadderRung::kShed);
  EXPECT_EQ(controller.classify(2), LadderRung::kShed);
  EXPECT_EQ(controller.classify(3), LadderRung::kBoundOnly);

  // step_scale widens the spacing: rank 1's threshold becomes
  // 0.85 + 1 * 0.05 * 4 = 1.05, out of reach.
  EXPECT_EQ(controller.classify(1, 4.0), LadderRung::kBoundOnly);
}

TEST(OverloadController, QueueFractionFeedsPressure) {
  OverloadController controller(controller_config());
  controller.note_queue(64, 128);
  EXPECT_DOUBLE_EQ(controller.pressure(), 0.5);
  controller.note_queue(0, 128);
  EXPECT_DOUBLE_EQ(controller.pressure(), 0.0);
}

TEST(OverloadController, RankOfMapsPriorities) {
  OverloadController controller(controller_config());  // 4 levels
  EXPECT_EQ(controller.rank_of(-1), 3u);  // unset: shed last
  EXPECT_EQ(controller.rank_of(0), 0u);   // explicit 0: shed first
  EXPECT_EQ(controller.rank_of(2), 2u);
  EXPECT_EQ(controller.rank_of(99), 3u);  // clamped to the top rank
}

TEST(OverloadController, AdmitEnforcesTheLimitAndCounts) {
  OverloadConfig config = controller_config();
  config.initial_limit = 4;
  OverloadController controller(config);
  EXPECT_TRUE(controller.admit(3));
  EXPECT_FALSE(controller.admit(4));
  const OverloadSnapshot s = controller.snapshot();
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.limited, 1u);
}

// ---------------------------------------------------------------------------
// Loopback integration: one Server per test, the ladder rung forced
// deterministic by setting its threshold to 0 (any pressure qualifies,
// including none) and parking the others out of reach (> 1).

class Client {
 public:
  explicit Client(std::uint16_t port)
      : socket_(dial("127.0.0.1", port)), reader_(socket_.fd(), 1 << 20) {}

  [[nodiscard]] bool connected() const { return socket_.valid(); }

  std::string rpc(const std::string& line) {
    if (!socket_.valid() || !write_line(socket_.fd(), line)) {
      return std::string();
    }
    std::string out;
    return reader_.read_line(out) == LineReader::Status::kLine
               ? out
               : std::string();
  }

 private:
  Socket socket_;
  LineReader reader_;
};

constexpr const char* kSolveLine =
    R"({"method":"solve","id":1,"scenario":{"switch":{"inputs":8},)"
    R"("classes":[{"name":"voice","shape":"poisson","rho":0.45}]}})";

ServerConfig overload_server_config() {
  ServerConfig config;
  config.workers = 2;
  config.idle_poll_seconds = 0.05;
  OverloadConfig overload;
  // Park every rung out of reach; each test pulls one down to 0.
  overload.stale_at = 2.0;
  overload.bound_at = 2.0;
  overload.shed_start = 2.0;
  overload.shed_step = 0.05;
  overload.stale_ttl_seconds = 0.1;
  config.overload = overload;
  return config;
}

// The solve diagnostics embed the measured wall time, which differs run
// to run; blank it out so the comparison pins everything else.
std::string strip_wall_seconds(std::string frame) {
  const std::string key = "\"wall_seconds\":";
  const std::size_t begin = frame.find(key);
  if (begin == std::string::npos) {
    return frame;
  }
  const std::size_t end = frame.find_first_of(",}", begin + key.size());
  frame.erase(begin, end - begin);
  return frame;
}

TEST(ServerOverload, ExactPathFramesMatchTheUnloadedServer) {
  // Same request against an overload-enabled and a plain server: the
  // exact-path frames must be byte-identical (the PR's compatibility
  // guarantee) — modulo the measured wall time in the diagnostics.
  ServerConfig plain;
  plain.workers = 2;
  plain.idle_poll_seconds = 0.05;
  Server baseline(plain);
  baseline.start();
  Server overloaded(overload_server_config());
  overloaded.start();

  Client a(baseline.port());
  Client b(overloaded.port());
  EXPECT_EQ(strip_wall_seconds(a.rpc(kSolveLine)),
            strip_wall_seconds(b.rpc(kSolveLine)));  // computed
  EXPECT_EQ(strip_wall_seconds(a.rpc(kSolveLine)),
            strip_wall_seconds(b.rpc(kSolveLine)));  // cached
  baseline.stop();
  overloaded.stop();
}

TEST(ServerOverload, StaleRungServesExpiredEntriesWithAge) {
  ServerConfig config = overload_server_config();
  config.overload->stale_at = 0.0;  // always at least stale
  Server server(config);
  server.start();
  Client client(server.port());

  // Warm the cache (rung kStale, but a miss still computes), then let the
  // entry expire past the 100ms ttl.
  const std::string first = client.rpc(kSolveLine);
  EXPECT_NE(first.find(R"("cached":false)"), std::string::npos);
  const std::string fresh = client.rpc(kSolveLine);
  EXPECT_NE(fresh.find(R"("cached":true)"), std::string::npos);
  EXPECT_EQ(fresh.find("degraded"), std::string::npos);

  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const std::string stale = client.rpc(kSolveLine);
  EXPECT_NE(stale.find(R"("degraded":{"mode":"stale","age_ms":)"),
            std::string::npos);
  EXPECT_NE(stale.find(R"("cached":true)"), std::string::npos);
  // The payload is the cached exact answer, only the envelope differs.
  EXPECT_NE(stale.find(R"("measures")"), std::string::npos);

  const std::string stats = client.rpc(R"({"method":"stats"})");
  EXPECT_NE(stats.find(R"("stale_served":1)"), std::string::npos);
  server.stop();
}

TEST(ServerOverload, BoundRungAnswersWithKnapsackBracket) {
  ServerConfig config = overload_server_config();
  config.overload->bound_at = 0.0;  // always bound-only
  Server server(config);
  server.start();
  Client client(server.port());

  const std::string response = client.rpc(kSolveLine);
  EXPECT_NE(response.find(R"("degraded":{"mode":"bound"})"),
            std::string::npos);
  EXPECT_NE(response.find(R"("method":"knapsack")"), std::string::npos);
  EXPECT_NE(response.find(R"("blocking_lower")"), std::string::npos);
  EXPECT_NE(response.find(R"("blocking_upper")"), std::string::npos);
  EXPECT_NE(response.find(R"("error_bar")"), std::string::npos);
  // Bound answers are never cached: the repeat is computed again.
  EXPECT_NE(client.rpc(kSolveLine).find(R"("cached":false)"),
            std::string::npos);

  const std::string stats = client.rpc(R"({"method":"stats"})");
  EXPECT_NE(stats.find(R"("bound_served":2)"), std::string::npos);
  server.stop();
}

TEST(ServerOverload, ShedRungIsPriorityAware) {
  ServerConfig config = overload_server_config();
  config.overload->shed_start = 0.0;  // rank 0 sheds at any pressure
  config.overload->shed_step = 0.1;   // rank >= 1 needs pressure > 0
  Server server(config);
  server.start();
  Client client(server.port());

  // priority 0: shed first — a typed overloaded error, not a hangup.
  const std::string low = client.rpc(
      R"({"method":"solve","id":2,"priority":0,"scenario":{"switch":)"
      R"({"inputs":8},"classes":[{"name":"voice","shape":"poisson",)"
      R"("rho":0.45}]}})");
  EXPECT_NE(low.find(R"("kind":"overloaded")"), std::string::npos);
  EXPECT_NE(low.find("priority-shed"), std::string::npos);

  // Unset priority rides the top rank: still served exactly.
  const std::string top = client.rpc(kSolveLine);
  EXPECT_NE(top.find(R"("status":"ok")"), std::string::npos);
  EXPECT_EQ(top.find("degraded"), std::string::npos);

  const std::string stats = client.rpc(R"({"method":"stats"})");
  EXPECT_NE(stats.find(R"("shed":1)"), std::string::npos);
  server.stop();
}

TEST(ServerOverload, AdaptiveLimitRejectsAtTheDoor) {
  ServerConfig config = overload_server_config();
  config.overload->min_limit = 1;
  config.overload->max_limit = 1;
  config.overload->initial_limit = 1;
  Server server(config);
  server.start();

  Client first(server.port());
  ASSERT_TRUE(first.connected());
  // Make the first connection active so in_flight is visibly 1.
  EXPECT_NE(first.rpc(R"({"method":"ping","id":1})").find("pong"),
            std::string::npos);

  Client second(server.port());
  std::string rejection;
  // The rejection frame is written by the acceptor before closing.
  if (second.connected()) {
    rejection = second.rpc(R"({"method":"ping","id":2})");
    if (rejection.empty()) {
      rejection = "(connection closed)";
    }
  }
  const StatsSnapshot stats = server.stats();
  EXPECT_TRUE(stats.overload_enabled);
  EXPECT_GE(stats.overload.limited, 1u);
  EXPECT_EQ(stats.overload.limit, 1u);
  server.stop();
}

TEST(ServerOverload, PressureRidesStatsAndHealthFrames) {
  Server server(overload_server_config());
  server.start();
  Client client(server.port());

  const std::string stats = client.rpc(R"({"method":"stats"})");
  EXPECT_NE(stats.find(R"("overload":{)"), std::string::npos);
  EXPECT_NE(stats.find(R"("pressure":)"), std::string::npos);
  EXPECT_NE(stats.find(R"("limit":)"), std::string::npos);
  const std::string health = client.rpc(R"({"method":"health"})");
  EXPECT_NE(health.find(R"("pressure":)"), std::string::npos);
  EXPECT_NE(health.find(R"("overload_limit":)"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace xbar::service
