// In-process integration of the streaming capacity advisor behind
// xbar_serve's observe/advise methods: trace ingestion over the NDJSON
// protocol, a scripted load shift, drift-triggered refitting, and the
// advise frame converging to the same answer the batch pipeline gives for
// the fitted traffic.  One Server per test, loopback sockets.

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.hpp"
#include "dist/rng.hpp"
#include "service/connection.hpp"
#include "service/server.hpp"

namespace xbar::service {
namespace {

/// One test client: a persistent connection with framing (same shape as
/// server_loopback_test.cpp).
class Client {
 public:
  explicit Client(std::uint16_t port)
      : socket_(dial("127.0.0.1", port)), reader_(socket_.fd(), 1 << 20) {}

  [[nodiscard]] bool connected() const { return socket_.valid(); }

  std::string rpc(const std::string& line) {
    if (!socket_.valid() || !write_line(socket_.fd(), line)) {
      return std::string();
    }
    std::string out;
    return reader_.read_line(out) == LineReader::Status::kLine
               ? out
               : std::string();
  }

 private:
  Socket socket_;
  LineReader reader_;
};

ServerConfig advisor_config(bool enact = false,
                            double drift_threshold = 0.35) {
  ServerConfig config;
  config.workers = 2;
  config.idle_poll_seconds = 0.05;
  advisor::AdvisorConfig adv;
  adv.candidate_sizes = {4, 8, 16};
  adv.solve_every_events = 64;
  adv.estimator.window_seconds = 40.0;
  adv.estimator.min_events = 40.0;
  adv.estimator.drift_window_seconds = 4.0;
  adv.estimator.drift_threshold = drift_threshold;
  adv.enact = enact;
  config.advisor = adv;
  return config;
}

double scrape_number(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = response.find(needle);
  if (at == std::string::npos) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double value = 0.0;
  std::from_chars(response.data() + at + needle.size(),
                  response.data() + response.size(), value);
  return value;
}

/// Render one observe frame from pre-simulated events.
std::string observe_frame(std::size_t id,
                          const std::vector<advisor::ObservedEvent>& events) {
  std::string line =
      "{\"method\":\"observe\",\"id\":" + std::to_string(id) +
      ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const advisor::ObservedEvent& e = events[i];
    if (i != 0) {
      line += ',';
    }
    line += "{\"class\":\"" + e.class_name +
            "\",\"t\":" + std::to_string(e.t) +
            ",\"hold\":" + std::to_string(e.hold) +
            ",\"weight\":" + std::to_string(e.weight) + "}";
  }
  line += "]}";
  return line;
}

/// Simulate a Poisson connection trace segment (rate lambda, holds
/// ~exp(mu)) and append the arrivals to `out`.  Occupancy state persists
/// via the departure heap + k so segments chain into one process.
void simulate_segment(std::vector<advisor::ObservedEvent>& out,
                      const std::string& name, double lambda, double mu,
                      double start, double seconds, dist::Xoshiro256& rng,
                      unsigned& k,
                      std::priority_queue<double, std::vector<double>,
                                          std::greater<>>& departures,
                      double weight = 1.0) {
  double t = start;
  const double end = start + seconds;
  double next_arrival = t + rng.exponential(lambda);
  while (true) {
    const bool departure_next =
        !departures.empty() && departures.top() < next_arrival;
    const double at = departure_next ? departures.top() : next_arrival;
    if (at >= end) {
      break;
    }
    t = at;
    if (departure_next) {
      departures.pop();
      --k;
    } else {
      advisor::ObservedEvent e;
      e.class_name = name;
      e.t = t;
      e.hold = rng.exponential(mu);
      e.weight = weight;
      out.push_back(e);
      departures.push(t + e.hold);
      ++k;
      next_arrival = t + rng.exponential(lambda);
    }
  }
}

TEST(AdvisorIntegration, ObserveAndAdviseRejectedWithoutAdvisor) {
  ServerConfig config;
  config.workers = 1;
  config.idle_poll_seconds = 0.05;
  Server server(config);
  server.start();
  Client client(server.port());
  const std::string observe = client.rpc(
      R"({"method":"observe","id":1,"events":[{"class":"c","t":0.5}]})");
  EXPECT_NE(observe.find(R"("status":"error")"), std::string::npos);
  EXPECT_NE(observe.find(R"("kind":"config")"), std::string::npos);
  const std::string advise = client.rpc(R"({"method":"advise","id":2})");
  EXPECT_NE(advise.find(R"("kind":"config")"), std::string::npos);
  server.stop();
}

TEST(AdvisorIntegration, ObserveFrameValidation) {
  Server server(advisor_config());
  server.start();
  Client client(server.port());
  // Empty events array is a config error, not a crash.
  const std::string empty =
      client.rpc(R"({"method":"observe","id":1,"events":[]})");
  EXPECT_NE(empty.find(R"("kind":"config")"), std::string::npos);
  // Negative timestamps are rejected.
  const std::string bad_t = client.rpc(
      R"({"method":"observe","id":2,"events":[{"class":"c","t":-1}]})");
  EXPECT_NE(bad_t.find(R"("kind":"config")"), std::string::npos);
  server.stop();
}

TEST(AdvisorIntegration, ScriptedShiftConvergesAndCountsRefit) {
  Server server(advisor_config());
  server.start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  dist::Xoshiro256 rng(71);
  unsigned k = 0;
  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  std::vector<advisor::ObservedEvent> events;
  // Phase 1: lambda = 3 for 120 trace seconds; phase 2: lambda = 18.
  simulate_segment(events, "voice", 3.0, 1.0, 0.0, 120.0, rng, k, heap);
  const std::size_t phase1 = events.size();
  simulate_segment(events, "voice", 18.0, 1.0, 120.0, 240.0, rng, k, heap);
  ASSERT_GT(phase1, 100u);
  ASSERT_GT(events.size(), phase1 + 1000u);

  // Stream in protocol-sized batches.
  std::size_t id = 0;
  std::uint64_t ingested = 0;
  for (std::size_t at = 0; at < events.size(); at += 64) {
    const std::vector<advisor::ObservedEvent> batch(
        events.begin() + static_cast<std::ptrdiff_t>(at),
        events.begin() + static_cast<std::ptrdiff_t>(
                             std::min(at + 64, events.size())));
    const std::string response = client.rpc(observe_frame(id++, batch));
    ASSERT_NE(response.find(R"("status":"ok")"), std::string::npos)
        << response;
    ingested += static_cast<std::uint64_t>(
        scrape_number(response, "ingested"));
  }
  EXPECT_EQ(ingested, events.size());

  const std::string advise =
      client.rpc(R"({"method":"advise","id":99999})");
  ASSERT_NE(advise.find(R"("status":"ok")"), std::string::npos) << advise;
  // Post-shift: confident again, at least one drift-triggered refit, and
  // the fitted arrival rate converged to the phase-2 rate.
  EXPECT_NE(advise.find(R"("state":"confident")"), std::string::npos)
      << advise;
  EXPECT_NE(advise.find(R"("confident":true)"), std::string::npos);
  EXPECT_GE(scrape_number(advise, "refits"), 1.0) << advise;
  EXPECT_NEAR(scrape_number(advise, "arrival_rate"), 18.0, 2.0) << advise;

  // The recommendation matches the batch answer for the fitted traffic:
  // rebuild the advisor's own choice from the rendered options list.
  const double recommended = scrape_number(advise, "n1");
  double expected = 0.0;
  const double target = scrape_number(advise, "target_blocking");
  std::size_t pos = 0;
  double largest = 0.0;
  while ((pos = advise.find("{\"n\":", pos)) != std::string::npos) {
    const std::string option = advise.substr(pos, 120);
    pos += 5;
    const double n = scrape_number(option, "n");
    const double worst = scrape_number(option, "worst_blocking");
    largest = std::max(largest, n);
    if (expected == 0.0 && worst <= target) {
      expected = n;
    }
  }
  if (expected == 0.0) {
    expected = largest;  // SLO unmeetable: largest candidate wins
  }
  ASSERT_GT(largest, 0.0);
  EXPECT_EQ(recommended, expected) << advise;

  // The stats frame carries the per-class traffic ledger and advisor
  // counters fed by the same trace.
  const std::string stats = client.rpc(R"({"method":"stats","id":100000})");
  EXPECT_NE(stats.find(R"("class":"voice")"), std::string::npos) << stats;
  EXPECT_NE(stats.find(R"("advisor")"), std::string::npos);
  EXPECT_EQ(scrape_number(stats, "events"),
            static_cast<double>(events.size()));
  server.stop();
}

TEST(AdvisorIntegration, EnactmentDeniesAndReportsInObserveResponse) {
  // Drift is effectively disabled: a spurious late refit would clear the
  // deny set (the safety valve) and hide the admission verdict under test.
  Server server(advisor_config(/*enact=*/true, /*drift_threshold=*/100.0));
  server.start();
  Client client(server.port());

  dist::Xoshiro256 rng(83);
  unsigned kv = 0;
  unsigned kj = 0;
  std::priority_queue<double, std::vector<double>, std::greater<>> hv;
  std::priority_queue<double, std::vector<double>, std::greater<>> hj;
  std::vector<advisor::ObservedEvent> events;
  // Interleave heavy paying traffic with a featherweight class in short
  // slices so both classes stay warm across the whole trace.
  for (int slice = 0; slice < 40; ++slice) {
    const double t0 = 4.0 * slice;
    simulate_segment(events, "voice", 5.0, 1.0, t0, 4.0, rng, kv, hv, 1.0);
    simulate_segment(events, "junk", 1.0, 1.0, t0, 4.0, rng, kj, hj, 0.01);
  }
  std::sort(events.begin(), events.end(),
            [](const advisor::ObservedEvent& a,
               const advisor::ObservedEvent& b) { return a.t < b.t; });

  std::size_t id = 0;
  std::uint64_t denied = 0;
  for (std::size_t at = 0; at < events.size(); at += 64) {
    const std::vector<advisor::ObservedEvent> batch(
        events.begin() + static_cast<std::ptrdiff_t>(at),
        events.begin() + static_cast<std::ptrdiff_t>(
                             std::min(at + 64, events.size())));
    const std::string response = client.rpc(observe_frame(id++, batch));
    ASSERT_NE(response.find(R"("status":"ok")"), std::string::npos);
    denied += static_cast<std::uint64_t>(scrape_number(response, "denied"));
  }
  // Once the advisor turned confident the junk class became uneconomic and
  // later frames report denials.
  EXPECT_GT(denied, 0u);
  const std::string advise = client.rpc(R"({"method":"advise","id":777})");
  const std::size_t junk_at = advise.find(R"("name":"junk")");
  ASSERT_NE(junk_at, std::string::npos) << advise;
  EXPECT_NE(advise.find(R"("admit":false)", junk_at), std::string::npos)
      << advise;
  server.stop();
}

}  // namespace
}  // namespace xbar::service
