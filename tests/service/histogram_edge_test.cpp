// Edge-case coverage for service::Histogram: empty/single/all-equal
// quantiles, the top-bucket clamp for absurd samples, negative input
// clamping, and concurrent recording (this binary runs under TSan in CI,
// which exercises the relaxed-atomic bucket counters).

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/histogram.hpp"

namespace xbar::service {
namespace {

TEST(HistogramEdge, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(HistogramEdge, SingleSampleCollapsesQuantiles) {
  Histogram h;
  h.record(5e-3);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  // Every quantile is the one occupied bucket's upper edge: at least the
  // sample, at most ~19% above it (4 buckets per octave).
  EXPECT_EQ(s.p50, s.p90);
  EXPECT_EQ(s.p90, s.p99);
  EXPECT_GE(s.p50, 5e-3);
  EXPECT_LE(s.p50, 5e-3 * 1.2);
  // max is exact, not bucketed.
  EXPECT_NEAR(s.max, 5e-3, 1e-9);
  EXPECT_NEAR(s.mean, 5e-3, 1e-9);
}

TEST(HistogramEdge, AllEqualSamplesShareOneBucket) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) {
    h.record(5e-3);
  }
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.p50, s.p99);
  EXPECT_NEAR(s.mean, 5e-3, 1e-9);
  EXPECT_NEAR(s.max, 5e-3, 1e-9);
}

TEST(HistogramEdge, TopBucketClampsAbsurdSamples) {
  Histogram h;
  h.record(1e9);  // ~31 years; far past the last bucket edge
  const Histogram::Snapshot s = h.snapshot();
  // Quantiles saturate at the top bucket's upper edge (~an hour), finite.
  EXPECT_TRUE(std::isfinite(s.p99));
  EXPECT_GT(s.p99, 3000.0);
  EXPECT_LT(s.p99, 4000.0);
  // max keeps the exact value even when the bucket clamps.
  EXPECT_NEAR(s.max, 1e9, 1.0);
}

TEST(HistogramEdge, NegativeSamplesClampToTheFloorBucket) {
  Histogram h;
  h.record(-1.0);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  // Lands in bucket 0 (everything <= 1us), contributes 0 to mean/max.
  EXPECT_LE(s.p50, 1e-6);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(HistogramEdge, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Spread across a few buckets so the quantile walk sees a real
        // distribution, deterministically per thread.
        h.record(1e-4 * static_cast<double>((t + i) % 7 + 1));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(s.p50, 1e-4);
  EXPECT_LE(s.p99, 7e-4 * 1.2);
  EXPECT_NEAR(s.max, 7e-4, 1e-9);
}

}  // namespace
}  // namespace xbar::service
