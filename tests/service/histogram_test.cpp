// Histogram tests: counts/mean/max are exact, quantiles respect the
// geometric bucket error bound, and concurrent recorders never lose an
// observation.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/histogram.hpp"

namespace xbar::service {
namespace {

TEST(Histogram, EmptySnapshotIsAllZeros) {
  const Histogram h;
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Histogram, CountMeanAndMaxAreExact) {
  Histogram h;
  h.record(0.001);
  h.record(0.002);
  h.record(0.003);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.mean, 0.002, 1e-6);  // mean uses the exact total, not buckets
  EXPECT_NEAR(s.max, 0.003, 1e-6);
}

TEST(Histogram, QuantilesRespectTheBucketErrorBound) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) {
    h.record(0.010);  // everything in one bucket
  }
  // Buckets are spaced at 2^(1/4): the reported quantile is the bucket's
  // upper edge, so it overestimates by at most ~19%.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 0.010);
  EXPECT_LE(p50, 0.010 * 1.19 + 1e-12);
  EXPECT_EQ(h.quantile(0.99), p50);  // same bucket
}

TEST(Histogram, QuantilesOrderAcrossDistinctMagnitudes) {
  Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.record(1e-4);
  }
  for (int i = 0; i < 10; ++i) {
    h.record(1e-1);  // a slow tail, 3 decades up
  }
  EXPECT_LT(h.quantile(0.5), 2e-4);
  EXPECT_GT(h.quantile(0.99), 5e-2);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
}

TEST(Histogram, NegativeAndHugeObservationsClampToTheEdgeBuckets) {
  Histogram h;
  h.record(-1.0);     // clamps to the first bucket
  h.record(1e9);      // clamps to the last bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.quantile(1.0), 0.0);
}

TEST(Histogram, ConcurrentRecordersLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kEach = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kEach; ++i) {
        h.record(1e-6 * static_cast<double>(1 + (t + i) % 1000));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kEach);
}

}  // namespace
}  // namespace xbar::service
