// End-to-end loopback tests for service::Server: protocol round trips,
// result-cache hits surfacing in stats, typed error frames (parse /
// config / deadline / overloaded), and graceful drain.  Everything runs on
// 127.0.0.1 with ephemeral ports, one Server per test.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "service/connection.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace xbar::service {
namespace {

constexpr const char* kSolveLine =
    R"({"method":"solve","id":1,"scenario":{"switch":{"inputs":8},)"
    R"("classes":[{"name":"voice","shape":"poisson","rho":0.45}]}})";

/// One test client: a persistent connection with framing.
class Client {
 public:
  explicit Client(std::uint16_t port)
      : socket_(dial("127.0.0.1", port)), reader_(socket_.fd(), 1 << 20) {}

  [[nodiscard]] bool connected() const { return socket_.valid(); }
  [[nodiscard]] int fd() const { return socket_.fd(); }
  void close() { socket_.reset(); }

  /// Round trip; returns the response line ("" on transport failure).
  std::string rpc(const std::string& line) {
    if (!socket_.valid() || !write_line(socket_.fd(), line)) {
      return std::string();
    }
    return read();
  }

  /// Read one already-in-flight line ("" on EOF/error/timeout).
  std::string read() {
    std::string out;
    return reader_.read_line(out) == LineReader::Status::kLine
               ? out
               : std::string();
  }

  [[nodiscard]] LineReader::Status read_status(std::string& out) {
    return reader_.read_line(out);
  }

 private:
  Socket socket_;
  LineReader reader_;
};

ServerConfig test_config() {
  ServerConfig config;
  config.workers = 2;
  config.idle_poll_seconds = 0.05;  // fast drain in tests
  return config;
}

TEST(ServerLoopback, PingPong) {
  Server server(test_config());
  server.start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.rpc(R"({"method":"ping","id":9})"),
            R"({"id":9,"status":"ok","cached":false,"result":"pong"})");
  server.stop();
}

TEST(ServerLoopback, RepeatedSolveHitsTheResultCacheAndStatsShowsIt) {
  Server server(test_config());
  server.start();
  Client client(server.port());

  const std::string first = client.rpc(kSolveLine);
  EXPECT_NE(first.find(R"("status":"ok")"), std::string::npos);
  EXPECT_NE(first.find(R"("cached":false)"), std::string::npos);
  EXPECT_NE(first.find(R"("measures")"), std::string::npos);
  EXPECT_NE(first.find(R"("diagnostics")"), std::string::npos);

  const std::string second = client.rpc(kSolveLine);
  EXPECT_NE(second.find(R"("cached":true)"), std::string::npos);
  // The cached payload is byte-identical to the computed one.
  const auto result_of = [](const std::string& line) {
    return line.substr(line.find(R"("result":)"));
  };
  EXPECT_EQ(result_of(first), result_of(second));

  const std::string stats = client.rpc(R"({"method":"stats"})");
  EXPECT_NE(stats.find(R"("hits":1)"), std::string::npos);
  EXPECT_NE(stats.find(R"("misses":1)"), std::string::npos);
  EXPECT_NE(stats.find(R"("solve":2)"), std::string::npos);

  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.cache.hits, 1u);
  EXPECT_EQ(s.cache.misses, 1u);
  EXPECT_GE(s.latency.count, 2u);
  server.stop();
}

TEST(ServerLoopback, NoCacheBypassesTheResultCache) {
  Server server(test_config());
  server.start();
  Client client(server.port());
  const std::string line =
      R"({"method":"solve","no_cache":true,"scenario":{"switch")"
      R"(:{"inputs":8},"classes":[{"shape":"poisson","rho":0.3}]}})";
  EXPECT_NE(client.rpc(line).find(R"("cached":false)"), std::string::npos);
  EXPECT_NE(client.rpc(line).find(R"("cached":false)"), std::string::npos);
  EXPECT_EQ(server.stats().cache.hits, 0u);
  EXPECT_EQ(server.stats().cache.misses, 0u);  // lookup skipped entirely
  server.stop();
}

TEST(ServerLoopback, TypedErrorsComeBackAsFrames) {
  Server server(test_config());
  server.start();
  Client client(server.port());

  // Malformed JSON: parse error, connection stays usable.
  const std::string parse_error = client.rpc("this is not json");
  EXPECT_NE(parse_error.find(R"("kind":"parse")"), std::string::npos);

  // Depth-bombing the parser is a parse error too, not a crash.
  std::string bomb = R"({"method":"ping","id":)";
  for (int i = 0; i < 200; ++i) {
    bomb += '[';
  }
  EXPECT_NE(client.rpc(bomb + "1").find(R"("kind":"parse")"),
            std::string::npos);

  // Unknown method: config error.
  EXPECT_NE(client.rpc(R"({"method":"warp"})").find(R"("kind":"config")"),
            std::string::npos);

  // Ill-posed model: model error with the id echoed.
  const std::string model_error = client.rpc(
      R"({"method":"solve","id":"m","scenario":{"switch":{"inputs":8},)"
      R"("classes":[{"shape":"poisson","rho":-1}]}})");
  EXPECT_NE(model_error.find(R"("kind":"model")"), std::string::npos);

  // The connection survived all four errors.
  EXPECT_NE(client.rpc(R"({"method":"ping"})").find("pong"),
            std::string::npos);

  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.errors, 4u);
  EXPECT_EQ(s.ok, 1u);
  server.stop();
}

TEST(ServerLoopback, SweepAndRevenueMethodsWork) {
  Server server(test_config());
  server.start();
  Client client(server.port());

  const std::string sweep = client.rpc(
      R"({"method":"sweep","scenario":{"switch":{"inputs":4},)"
      R"("classes":[{"shape":"poisson","rho":0.4}]},"sizes":[2,4,8]})");
  EXPECT_NE(sweep.find(R"("status":"ok")"), std::string::npos);
  EXPECT_NE(sweep.find(R"("complete":true)"), std::string::npos);
  EXPECT_NE(sweep.find(R"("points":[)"), std::string::npos);

  const std::string revenue = client.rpc(
      R"({"method":"revenue","scenario":{"switch":{"inputs":4},)"
      R"("classes":[{"shape":"poisson","rho":0.4,"weight":2}]}})");
  EXPECT_NE(revenue.find(R"("sensitivities")"), std::string::npos);
  EXPECT_NE(revenue.find(R"("shadow_cost")"), std::string::npos);
  server.stop();
}

TEST(ServerLoopback, ExpiredDeadlineReturnsATypedDeadlineError) {
  Server server(test_config());
  server.start();
  Client client(server.port());
  // A deadline of 1 nanosecond is over before execution starts.
  const std::string response = client.rpc(
      R"({"method":"solve","id":5,"deadline_ms":1e-6,"scenario")"
      R"(:{"switch":{"inputs":8},"classes":[{"shape":"poisson",)"
      R"("rho":0.45}]}})");
  EXPECT_NE(response.find(R"("kind":"deadline")"), std::string::npos);
  EXPECT_NE(response.find(R"("id":5)"), std::string::npos);
  EXPECT_EQ(server.stats().deadlines, 1u);
  server.stop();
}

TEST(ServerLoopback, AdmissionControlRejectsWithTypedOverloaded) {
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.idle_poll_seconds = 0.05;
  Server server(config);
  server.start();

  // Pin the single worker: a connection is held by its worker until EOF,
  // so after one round trip the worker is parked reading `pinned`.
  Client pinned(server.port());
  ASSERT_NE(pinned.rpc(R"({"method":"ping"})").find("pong"),
            std::string::npos);

  // Fills the queue (no response expected — it is waiting for a worker).
  Client queued(server.port());
  ASSERT_TRUE(queued.connected());
  set_recv_timeout(queued.fd(), 0.3);
  std::string none;
  EXPECT_EQ(queued.read_status(none), LineReader::Status::kTimeout);

  // Queue full: the acceptor answers with a typed overloaded error and
  // closes — never an unbounded buffer, never a hang.
  Client rejected(server.port());
  ASSERT_TRUE(rejected.connected());
  const std::string frame = rejected.read();
  EXPECT_NE(frame.find(R"("kind":"overloaded")"), std::string::npos);
  EXPECT_EQ(server.stats().overload_rejections, 1u);

  // Releasing the worker drains the queue: `queued` now gets served.
  pinned.close();
  set_recv_timeout(queued.fd(), 5.0);
  EXPECT_NE(queued.rpc(R"({"method":"ping"})").find("pong"),
            std::string::npos);
  server.stop();
}

TEST(ServerLoopback, DrainStopsAcceptingAndFinishesInFlight) {
  Server server(test_config());
  server.start();
  Client client(server.port());
  ASSERT_NE(client.rpc(R"({"method":"ping"})").find("pong"),
            std::string::npos);

  server.request_drain();
  server.wait();  // returns once the idle connection is closed

  EXPECT_TRUE(server.stats().draining);
  // The listen socket is gone: a fresh dial cannot complete a round trip.
  Client late(server.port());
  EXPECT_EQ(late.rpc(R"({"method":"ping"})"), "");
  server.stop();
}

TEST(ServerLoopback, HealthMethodIsCheapAndReportsServingState) {
  Server server(test_config());
  server.start();
  Client client(server.port());
  const std::string health = client.rpc(R"({"method":"health","id":7})");
  EXPECT_NE(health.find(R"("id":7)"), std::string::npos);
  EXPECT_NE(health.find(R"("live":true)"), std::string::npos);
  EXPECT_NE(health.find(R"("status":"serving")"), std::string::npos);
  EXPECT_NE(health.find(R"("draining":false)"), std::string::npos);
  EXPECT_NE(health.find(R"("queue_depth":0)"), std::string::npos);
  EXPECT_NE(health.find(R"("queue_capacity")"), std::string::npos);

  // health is counted as a method in stats like any other.
  const std::string stats = client.rpc(R"({"method":"stats"})");
  EXPECT_NE(stats.find(R"("health":1)"), std::string::npos);
  server.stop();
}

TEST(ServerLoopback, RequestBudgetRecyclesTheConnection) {
  ServerConfig config = test_config();
  config.max_requests_per_connection = 2;
  Server server(config);
  server.start();
  Client client(server.port());
  EXPECT_NE(client.rpc(R"({"method":"ping"})").find("pong"),
            std::string::npos);
  EXPECT_NE(client.rpc(R"({"method":"ping"})").find("pong"),
            std::string::npos);
  // The second response was the budget: the server closed the connection.
  EXPECT_EQ(client.rpc(R"({"method":"ping"})"), "");
  EXPECT_EQ(server.stats().budget_disconnects, 1u);

  // A redial gets a fresh budget.
  Client again(server.port());
  EXPECT_NE(again.rpc(R"({"method":"ping"})").find("pong"),
            std::string::npos);
  server.stop();
}

TEST(ServerLoopback, ByteBudgetRecyclesTheConnection) {
  ServerConfig config = test_config();
  config.max_bytes_per_connection = 10;  // any real request exceeds this
  Server server(config);
  server.start();
  Client client(server.port());
  // The over-budget request is still served before the close.
  EXPECT_NE(client.rpc(R"({"method":"ping"})").find("pong"),
            std::string::npos);
  EXPECT_EQ(client.rpc(R"({"method":"ping"})"), "");
  EXPECT_EQ(server.stats().budget_disconnects, 1u);
  server.stop();
}

TEST(ServerLoopback, IdleConnectionsAreReaped) {
  ServerConfig config = test_config();
  config.idle_timeout_seconds = 0.15;
  Server server(config);
  server.start();
  Client client(server.port());
  EXPECT_NE(client.rpc(R"({"method":"ping"})").find("pong"),
            std::string::npos);
  // Go quiet past the idle budget: the server closes the connection.
  std::string out;
  set_recv_timeout(client.fd(), 2.0);
  EXPECT_EQ(client.read_status(out), LineReader::Status::kEof);
  EXPECT_EQ(server.stats().idle_disconnects, 1u);
  server.stop();
}

TEST(ServerLoopback, SlowReaderIsDisconnectedNotBlockedForever) {
  ServerConfig config = test_config();
  config.workers = 1;
  config.send_timeout_seconds = 0.3;
  config.send_buffer_bytes = 2048;  // kernel clamps to its floor
  Server server(config);
  server.start();

  // A reader that never drains: tiny SO_RCVBUF *before* connect keeps the
  // advertised window small, so in-flight capacity is a few KB, not the
  // default ~128 KB.
  Socket slow(::socket(AF_INET, SOCK_STREAM, 0));
  ASSERT_TRUE(slow.valid());
  const int tiny = 2048;
  ::setsockopt(slow.fd(), SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(slow.fd(),
                      reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // Pipeline enough requests that the responses overflow the send buffer
  // plus the tiny receive window while nobody reads them.  The solve
  // responses are ~1 KB each and all but the first are cache hits, so the
  // server produces them far faster than the dead reader "drains" them.
  std::string burst;
  for (int i = 0; i < 64; ++i) {
    burst += kSolveLine;
    burst += '\n';
  }
  (void)::send(slow.fd(), burst.data(), burst.size(), MSG_NOSIGNAL);

  // The worker's blocked send must give up within send_timeout_seconds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().slow_reader_disconnects == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.stats().slow_reader_disconnects, 1u);

  slow.reset();
  server.stop();
}

TEST(ServerLoopback, OversizedFrameIsRejectedAndTheConnectionCloses) {
  ServerConfig config = test_config();
  config.max_line_bytes = 256;
  Server server(config);
  server.start();
  Client client(server.port());
  const std::string big(1024, 'x');
  const std::string response = client.rpc(big);
  EXPECT_NE(response.find(R"("kind":"parse")"), std::string::npos);
  EXPECT_NE(response.find("exceeds"), std::string::npos);
  // Framing is unsynchronized after an overflow: the server closed it.
  EXPECT_EQ(client.rpc(R"({"method":"ping"})"), "");
  server.stop();
}

TEST(ServerLoopback, BatchSolvesScenariosSharingDimsThroughOneTraversal) {
  Server server(test_config());
  server.start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  // Two fresh same-dims scenarios (the fast solver resolves to the
  // dynamic-scaling lane backend) batch through one traversal; the repeat
  // of the first scenario is answered from the grid the batch just cached.
  const std::string response = client.rpc(
      R"({"method":"batch","id":1,"solver":"fast","scenarios":[)"
      R"({"switch":{"inputs":12},"classes":[{"shape":"poisson","rho":0.3},)"
      R"({"shape":"bursty","alpha":0.1,"beta":0.04,"bandwidth":2}]},)"
      R"({"switch":{"inputs":12},"classes":[{"shape":"poisson","rho":0.35},)"
      R"({"shape":"bursty","alpha":0.12,"beta":0.04,"bandwidth":2}]},)"
      R"({"switch":{"inputs":12},"classes":[{"shape":"poisson","rho":0.3},)"
      R"({"shape":"bursty","alpha":0.1,"beta":0.04,"bandwidth":2}]}]})");
  ASSERT_NE(response.find(R"("status":"ok")"), std::string::npos) << response;
  EXPECT_NE(response.find(R"("batched":true)"), std::string::npos)
      << response;
  EXPECT_NE(response.find(R"("cache_hit":true)"), std::string::npos)
      << response;

  // Each scenario's measures match its standalone solve bit-for-bit: the
  // solve response embeds the same serialized measures object.
  const std::string single = client.rpc(
      R"({"method":"solve","id":2,"solver":"fast",)"
      R"("scenario":{"switch":{"inputs":12},)"
      R"("classes":[{"shape":"poisson","rho":0.35},)"
      R"({"shape":"bursty","alpha":0.12,"beta":0.04,"bandwidth":2}]}})");
  ASSERT_NE(single.find(R"("status":"ok")"), std::string::npos) << single;
  const auto measures_of = [](const std::string& payload, std::size_t from) {
    const std::size_t begin = payload.find(R"("measures":)", from);
    const std::size_t end = payload.find(R"(,"diagnostics")", begin);
    return payload.substr(begin, end - begin);
  };
  const std::size_t second =
      response.find(R"("measures":)", response.find(R"("measures":)") + 1);
  EXPECT_EQ(measures_of(response, second), measures_of(single, 0));
  server.stop();
}

}  // namespace
}  // namespace xbar::service
