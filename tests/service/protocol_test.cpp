// Wire-protocol tests: request parsing (defaults, id echo, typed error
// classification, untrusted-input bounds), canonical cache keys, and
// response rendering.

#include <string>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "service/protocol.hpp"

namespace xbar::service {
namespace {

using xbar::Error;
using xbar::ErrorKind;

ErrorKind kind_of(const std::string& line) {
  try {
    (void)parse_request(line);
  } catch (const Error& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected an error for: " << line;
  return ErrorKind::kInternal;
}

const char* kSolveLine =
    R"({"method":"solve","id":7,"scenario":{"switch":{"inputs":8},)"
    R"("classes":[{"name":"voice","shape":"poisson","rho":0.45}]}})";

TEST(Protocol, ParsesAMinimalPing) {
  const Request req = parse_request(R"({"method":"ping"})");
  EXPECT_EQ(req.method, Method::kPing);
  EXPECT_EQ(req.id, "null");  // absent id echoes as JSON null
  EXPECT_FALSE(req.model.has_value());
  EXPECT_EQ(req.deadline_ms, 0.0);
  EXPECT_FALSE(req.no_cache);
}

TEST(Protocol, EchoesStringAndNumberIds) {
  EXPECT_EQ(parse_request(R"({"method":"ping","id":"a\"b"})").id,
            "\"a\\\"b\"");
  EXPECT_EQ(parse_request(R"({"method":"ping","id":42})").id, "42");
  EXPECT_EQ(kind_of(R"({"method":"ping","id":[1]})"), ErrorKind::kConfig);
}

TEST(Protocol, ParsesASolveScenario) {
  const Request req = parse_request(kSolveLine);
  EXPECT_EQ(req.method, Method::kSolve);
  EXPECT_EQ(req.id, "7");
  ASSERT_TRUE(req.model.has_value());
  EXPECT_EQ(req.model->dims().n1, 8u);
  EXPECT_EQ(req.model->dims().n2, 8u);  // outputs default to inputs
  ASSERT_EQ(req.model->num_classes(), 1u);
  EXPECT_EQ(req.model->classes()[0].name, "voice");
  EXPECT_FALSE(req.cache_key.empty());
}

TEST(Protocol, ErrorKindsClassifyTheFailure) {
  EXPECT_EQ(kind_of("not json"), ErrorKind::kParse);
  EXPECT_EQ(kind_of(R"({"method":"solve"} trailing)"), ErrorKind::kParse);
  EXPECT_EQ(kind_of(R"({"method":"warp"})"), ErrorKind::kConfig);
  EXPECT_EQ(kind_of(R"({"id":1})"), ErrorKind::kParse);  // missing method
  EXPECT_EQ(kind_of(R"({"method":"solve"})"), ErrorKind::kParse);
  // Well-formed request, ill-posed model (rho <= 0): the model layer's
  // typed error propagates.
  EXPECT_EQ(
      kind_of(
          R"({"method":"solve","scenario":{"switch":{"inputs":8},)"
          R"("classes":[{"shape":"poisson","rho":-1}]}})"),
      ErrorKind::kModel);
}

TEST(Protocol, EnforcesUntrustedInputBounds) {
  // Switch side beyond the cap.
  EXPECT_EQ(
      kind_of(
          R"({"method":"solve","scenario":{"switch":{"inputs":1000000},)"
          R"("classes":[{"shape":"poisson","rho":0.4}]}})"),
      ErrorKind::kConfig);
  // Class count beyond the cap.
  std::string many = R"({"method":"solve","scenario":{"switch")"
                     R"(:{"inputs":8},"classes":[)";
  for (std::size_t i = 0; i < kMaxClasses + 1; ++i) {
    many += (i == 0 ? "" : ",");
    many += R"({"shape":"poisson","rho":0.01})";
  }
  many += "]}}";
  EXPECT_EQ(kind_of(many), ErrorKind::kConfig);
  // Sweep sizes: zero and absent both rejected.
  EXPECT_EQ(
      kind_of(
          R"({"method":"sweep","scenario":{"switch":{"inputs":8},)"
          R"("classes":[{"shape":"poisson","rho":0.4}]},"sizes":[0]})"),
      ErrorKind::kConfig);
  EXPECT_EQ(
      kind_of(R"({"method":"sweep","scenario":{"switch":{"inputs":8},)"
              R"("classes":[{"shape":"poisson","rho":0.4}]}})"),
      ErrorKind::kParse);
  // Negative / non-finite deadline.
  EXPECT_EQ(kind_of(R"({"method":"ping","deadline_ms":-5})"),
            ErrorKind::kConfig);
}

TEST(Protocol, CacheKeyIdentifiesTheComputation) {
  const std::string base = parse_request(kSolveLine).cache_key;
  // Byte-for-byte identical request -> same key (that is the cache hit).
  EXPECT_EQ(parse_request(kSolveLine).cache_key, base);
  // Whitespace / key order do not change the computation -> same key.
  EXPECT_EQ(
      parse_request(
          R"({ "scenario": {"classes":[{"name":"voice","shape":"poisson",)"
          R"("rho":0.45}], "switch":{"inputs":8}}, "method": "solve" })")
          .cache_key,
      base);
  // A different load, method, or solver is a different computation.
  EXPECT_NE(
      parse_request(
          R"({"method":"solve","scenario":{"switch":{"inputs":8},)"
          R"("classes":[{"name":"voice","shape":"poisson","rho":0.451}]}})")
          .cache_key,
      base);
  EXPECT_NE(
      parse_request(
          R"({"method":"revenue","scenario":{"switch":{"inputs":8},)"
          R"("classes":[{"name":"voice","shape":"poisson","rho":0.45}]}})")
          .cache_key,
      base);
  EXPECT_NE(
      parse_request(
          R"({"method":"solve","solver":"algorithm2","scenario":)"
          R"({"switch":{"inputs":8},"classes":[{"name":"voice",)"
          R"("shape":"poisson","rho":0.45}]}})")
          .cache_key,
      base);
}

TEST(Protocol, ParsesABatchOfScenarios) {
  const Request req = parse_request(
      R"({"method":"batch","id":3,"solver":"fast","scenarios":[)"
      R"({"switch":{"inputs":8},"classes":[{"shape":"poisson","rho":0.4}]},)"
      R"({"switch":{"inputs":8},"classes":[{"shape":"bursty","alpha":0.1,)"
      R"("beta":0.05,"bandwidth":2}]}]})");
  EXPECT_EQ(req.method, Method::kBatch);
  ASSERT_EQ(req.scenarios.size(), 2u);
  EXPECT_EQ(req.scenarios[0].dims().n1, 8u);
  EXPECT_EQ(req.scenarios[1].normalized(0).bandwidth, 2u);
  EXPECT_FALSE(req.model.has_value());
  EXPECT_FALSE(req.cache_key.empty());
  // Scenario order is part of the computation (results align by index).
  const Request swapped = parse_request(
      R"({"method":"batch","id":3,"solver":"fast","scenarios":[)"
      R"({"switch":{"inputs":8},"classes":[{"shape":"bursty","alpha":0.1,)"
      R"("beta":0.05,"bandwidth":2}]},)"
      R"({"switch":{"inputs":8},"classes":[{"shape":"poisson","rho":0.4}]}]})");
  EXPECT_NE(swapped.cache_key, req.cache_key);
}

TEST(Protocol, BatchBoundsAndMissingScenariosAreRejected) {
  EXPECT_EQ(kind_of(R"({"method":"batch","scenarios":[]})"),
            ErrorKind::kConfig);
  EXPECT_EQ(kind_of(R"({"method":"batch"})"), ErrorKind::kParse);
  std::string many = R"({"method":"batch","scenarios":[)";
  for (std::size_t i = 0; i < kMaxBatchScenarios + 1; ++i) {
    many += (i == 0 ? "" : ",");
    many += R"({"switch":{"inputs":4},)"
            R"("classes":[{"shape":"poisson","rho":0.1}]})";
  }
  many += "]}";
  EXPECT_EQ(kind_of(many), ErrorKind::kConfig);
}

TEST(Protocol, ParsesAnObserveFrame) {
  const Request req = parse_request(
      R"({"method":"observe","id":4,"events":[)"
      R"({"class":"voice","t":1.5,"hold":0.8,"bandwidth":2,)"
      R"("weight":0.5,"blocked":true},)"
      R"({"class":"bulk","t":2.0}]})");
  EXPECT_EQ(req.method, Method::kObserve);
  ASSERT_EQ(req.events.size(), 2u);
  EXPECT_EQ(req.events[0].class_name, "voice");
  EXPECT_DOUBLE_EQ(req.events[0].t, 1.5);
  EXPECT_DOUBLE_EQ(req.events[0].hold, 0.8);
  EXPECT_EQ(req.events[0].bandwidth, 2u);
  EXPECT_DOUBLE_EQ(req.events[0].weight, 0.5);
  EXPECT_TRUE(req.events[0].blocked);
  // Defaults: hold 0 (blocked/unknown), bandwidth 1, weight 1, unblocked.
  EXPECT_EQ(req.events[1].class_name, "bulk");
  EXPECT_DOUBLE_EQ(req.events[1].hold, 0.0);
  EXPECT_EQ(req.events[1].bandwidth, 1u);
  EXPECT_DOUBLE_EQ(req.events[1].weight, 1.0);
  EXPECT_FALSE(req.events[1].blocked);
  // Observe is never result-cached: the key must stay empty.
  EXPECT_TRUE(req.cache_key.empty());
}

TEST(Protocol, ParsesAnAdviseRequest) {
  const Request req = parse_request(R"({"method":"advise","id":9})");
  EXPECT_EQ(req.method, Method::kAdvise);
  EXPECT_FALSE(req.model.has_value());
  EXPECT_TRUE(req.cache_key.empty());
}

TEST(Protocol, ObserveFrameBoundsAndValidation) {
  // Missing or empty events.
  EXPECT_EQ(kind_of(R"({"method":"observe","id":1})"), ErrorKind::kParse);
  EXPECT_EQ(kind_of(R"({"method":"observe","id":1,"events":[]})"),
            ErrorKind::kConfig);
  // Hostile field values are rejected with typed config errors.
  EXPECT_EQ(kind_of(R"({"method":"observe","events":[{"class":"","t":0}]})"),
            ErrorKind::kConfig);
  EXPECT_EQ(
      kind_of(R"({"method":"observe","events":[{"class":"c","t":-1}]})"),
      ErrorKind::kConfig);
  EXPECT_EQ(
      kind_of(
          R"({"method":"observe","events":[{"class":"c","t":0,"hold":-2}]})"),
      ErrorKind::kConfig);
  EXPECT_EQ(
      kind_of(R"({"method":"observe","events":[)"
              R"({"class":"c","t":0,"bandwidth":0}]})"),
      ErrorKind::kConfig);
  // Frame-size cap: one event over kMaxObserveEvents is refused.
  std::string big = R"({"method":"observe","events":[)";
  for (std::size_t i = 0; i <= kMaxObserveEvents; ++i) {
    if (i != 0) {
      big += ',';
    }
    big += R"({"class":"c","t":0})";
  }
  big += "]}";
  EXPECT_EQ(kind_of(big), ErrorKind::kConfig);
}

TEST(Protocol, ObserveAndAdviseMethodNamesRoundTrip) {
  EXPECT_EQ(to_string(Method::kObserve), "observe");
  EXPECT_EQ(to_string(Method::kAdvise), "advise");
}

TEST(Protocol, RendersResponses) {
  EXPECT_EQ(render_ok("7", "{\"x\":1}", false),
            R"({"id":7,"status":"ok","cached":false,"result":{"x":1}})");
  EXPECT_EQ(render_ok("null", "\"pong\"", true),
            R"({"id":null,"status":"ok","cached":true,"result":"pong"})");
  EXPECT_EQ(
      render_error("\"a\"", "overloaded", "queue full"),
      R"({"id":"a","status":"error","error":{"kind":"overloaded",)"
      R"("message":"queue full"}})");
}

}  // namespace
}  // namespace xbar::service
