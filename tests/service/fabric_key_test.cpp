// Service canonical cache keys under the fabric dimension: legacy requests
// keep their exact pre-fabric keys (warm ResultCaches stay valid across the
// upgrade), fabric-qualified requests are distinct computations, and the
// solver spec round-trips through the NDJSON protocol.

#include <string>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "service/protocol.hpp"

namespace xbar::service {
namespace {

const char* kLegacyLine =
    R"({"method":"solve","scenario":{"switch":{"inputs":8},)"
    R"("classes":[{"name":"voice","shape":"poisson","rho":0.45}]}})";

std::string key_with_solver(const std::string& solver) {
  return parse_request(
             R"({"method":"solve","solver":")" + solver +
             R"(","scenario":{"switch":{"inputs":8},)"
             R"("classes":[{"name":"voice","shape":"poisson","rho":0.45}]}})")
      .cache_key;
}

TEST(FabricCacheKey, LegacyKeyIsPinnedByteForByte) {
  // The canonical key leads with method|solver; the default crossbar is
  // omitted from the solver rendering, so the legacy prefix is exactly
  // what it was before fabrics existed.  This is the regression pin.
  const std::string key = parse_request(kLegacyLine).cache_key;
  EXPECT_EQ(key.rfind("solve|auto|", 0), 0u) << key;
  EXPECT_EQ(key.find('@'), std::string::npos) << key;
}

TEST(FabricCacheKey, ExplicitCrossbarAliasesTheLegacyKey) {
  EXPECT_EQ(key_with_solver("auto@crossbar"),
            parse_request(kLegacyLine).cache_key);
  EXPECT_EQ(key_with_solver("fast@crossbar"), key_with_solver("fast"));
}

TEST(FabricCacheKey, FabricQualifiedSpecsAreDistinctComputations) {
  const std::string base = parse_request(kLegacyLine).cache_key;
  const std::string speedup = key_with_solver("auto@speedup-2");
  const std::string priority = key_with_solver("auto@priority");
  EXPECT_NE(speedup, base);
  EXPECT_NE(priority, base);
  EXPECT_NE(speedup, priority);
  EXPECT_NE(speedup, key_with_solver("auto@speedup-3"));
  // The fabric rides in through the canonical solver rendering.
  EXPECT_NE(speedup.find("|auto@speedup-2|"), std::string::npos) << speedup;
  EXPECT_NE(priority.find("|auto@priority|"), std::string::npos) << priority;
}

TEST(FabricCacheKey, BadFabricTokensRaiseConfigErrors) {
  try {
    (void)key_with_solver("auto@banyan");
    FAIL() << "expected xbar::Error";
  } catch (const xbar::Error& e) {
    EXPECT_EQ(e.kind(), xbar::ErrorKind::kConfig);
    EXPECT_NE(std::string(e.what()).find("unknown fabric 'banyan'"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace xbar::service
