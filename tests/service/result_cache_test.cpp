// ResultCache tests: hit/miss/eviction accounting, MRU eviction order
// within a shard, exact-key compare (no fingerprint aliasing), and
// concurrent access under TSan.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/result_cache.hpp"

namespace xbar::service {
namespace {

TEST(ResultCache, MissThenHit) {
  ResultCache cache(4, 8);
  EXPECT_FALSE(cache.get("k").has_value());
  cache.put("k", "v");
  const auto v = cache.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v");
  const ResultCacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(c.entries, 1u);
}

TEST(ResultCache, PutRefreshesAnExistingKey) {
  ResultCache cache(1, 4);
  cache.put("k", "v1");
  cache.put("k", "v2");
  EXPECT_EQ(*cache.get("k"), "v2");
  EXPECT_EQ(cache.counters().entries, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedWithinAShard) {
  // One shard, capacity 2: classic LRU probe.
  ResultCache cache(1, 2);
  cache.put("a", "1");
  cache.put("b", "2");
  ASSERT_TRUE(cache.get("a").has_value());  // a becomes MRU
  cache.put("c", "3");                      // evicts b (the LRU)
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  const ResultCacheCounters counters = cache.counters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.entries, 2u);
}

TEST(ResultCache, FingerprintCollisionsCannotAlias) {
  // Even when two keys land in the same shard (forced: 1 shard), the full
  // key is compared — near-identical keys stay distinct entries.
  ResultCache cache(1, 8);
  cache.put("solve|fast|8x8|c:1,abc", "one");
  cache.put("solve|fast|8x8|c:1,abd", "two");
  EXPECT_EQ(*cache.get("solve|fast|8x8|c:1,abc"), "one");
  EXPECT_EQ(*cache.get("solve|fast|8x8|c:1,abd"), "two");
}

TEST(ResultCache, FingerprintIsDeterministicAndDiscriminates) {
  EXPECT_EQ(cache_fingerprint("abc"), cache_fingerprint("abc"));
  EXPECT_NE(cache_fingerprint("abc"), cache_fingerprint("abd"));
  EXPECT_NE(cache_fingerprint(""), cache_fingerprint("a"));
}

TEST(ResultCache, ConcurrentGetPutIsSafe) {
  ResultCache cache(4, 16);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "k" + std::to_string((t + i) % 40);
        if (i % 3 == 0) {
          cache.put(key, "v" + std::to_string(i));
        } else {
          (void)cache.get(key);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const ResultCacheCounters c = cache.counters();
  // Each thread does 2000 iterations; i % 3 == 0 (667 of them) are puts,
  // the remaining 1333 are gets, and every get is a hit or a miss.
  EXPECT_EQ(c.hits + c.misses, static_cast<std::uint64_t>(kThreads) * 1333);
  EXPECT_LE(c.entries, 4u * 16u);
}

}  // namespace
}  // namespace xbar::service
