file(REMOVE_RECURSE
  "CMakeFiles/baseline_compare.dir/baseline_compare.cpp.o"
  "CMakeFiles/baseline_compare.dir/baseline_compare.cpp.o.d"
  "baseline_compare"
  "baseline_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
