file(REMOVE_RECURSE
  "CMakeFiles/fig3_two_class.dir/fig3_two_class.cpp.o"
  "CMakeFiles/fig3_two_class.dir/fig3_two_class.cpp.o.d"
  "fig3_two_class"
  "fig3_two_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_two_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
