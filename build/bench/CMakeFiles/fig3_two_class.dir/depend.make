# Empty dependencies file for fig3_two_class.
# This may be replaced when dependencies are built.
