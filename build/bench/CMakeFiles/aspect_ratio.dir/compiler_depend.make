# Empty compiler generated dependencies file for aspect_ratio.
# This may be replaced when dependencies are built.
