file(REMOVE_RECURSE
  "CMakeFiles/aspect_ratio.dir/aspect_ratio.cpp.o"
  "CMakeFiles/aspect_ratio.dir/aspect_ratio.cpp.o.d"
  "aspect_ratio"
  "aspect_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspect_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
