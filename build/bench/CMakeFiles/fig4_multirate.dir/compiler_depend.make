# Empty compiler generated dependencies file for fig4_multirate.
# This may be replaced when dependencies are built.
