file(REMOVE_RECURSE
  "CMakeFiles/fig4_multirate.dir/fig4_multirate.cpp.o"
  "CMakeFiles/fig4_multirate.dir/fig4_multirate.cpp.o.d"
  "fig4_multirate"
  "fig4_multirate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_multirate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
