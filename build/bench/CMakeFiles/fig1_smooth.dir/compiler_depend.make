# Empty compiler generated dependencies file for fig1_smooth.
# This may be replaced when dependencies are built.
