file(REMOVE_RECURSE
  "CMakeFiles/fig1_smooth.dir/fig1_smooth.cpp.o"
  "CMakeFiles/fig1_smooth.dir/fig1_smooth.cpp.o.d"
  "fig1_smooth"
  "fig1_smooth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_smooth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
