file(REMOVE_RECURSE
  "CMakeFiles/ablation_gradient.dir/ablation_gradient.cpp.o"
  "CMakeFiles/ablation_gradient.dir/ablation_gradient.cpp.o.d"
  "ablation_gradient"
  "ablation_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
