# Empty compiler generated dependencies file for ablation_gradient.
# This may be replaced when dependencies are built.
