file(REMOVE_RECURSE
  "CMakeFiles/hotspot_sim.dir/hotspot_sim.cpp.o"
  "CMakeFiles/hotspot_sim.dir/hotspot_sim.cpp.o.d"
  "hotspot_sim"
  "hotspot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
