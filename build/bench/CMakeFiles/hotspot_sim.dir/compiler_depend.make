# Empty compiler generated dependencies file for hotspot_sim.
# This may be replaced when dependencies are built.
