file(REMOVE_RECURSE
  "CMakeFiles/table2_revenue.dir/table2_revenue.cpp.o"
  "CMakeFiles/table2_revenue.dir/table2_revenue.cpp.o.d"
  "table2_revenue"
  "table2_revenue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_revenue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
