# Empty dependencies file for table2_revenue.
# This may be replaced when dependencies are built.
