file(REMOVE_RECURSE
  "CMakeFiles/fig2_peaky.dir/fig2_peaky.cpp.o"
  "CMakeFiles/fig2_peaky.dir/fig2_peaky.cpp.o.d"
  "fig2_peaky"
  "fig2_peaky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_peaky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
