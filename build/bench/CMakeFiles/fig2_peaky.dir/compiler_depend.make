# Empty compiler generated dependencies file for fig2_peaky.
# This may be replaced when dependencies are built.
