file(REMOVE_RECURSE
  "CMakeFiles/table1_loads.dir/table1_loads.cpp.o"
  "CMakeFiles/table1_loads.dir/table1_loads.cpp.o.d"
  "table1_loads"
  "table1_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
