file(REMOVE_RECURSE
  "CMakeFiles/transient_analysis.dir/transient_analysis.cpp.o"
  "CMakeFiles/transient_analysis.dir/transient_analysis.cpp.o.d"
  "transient_analysis"
  "transient_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
