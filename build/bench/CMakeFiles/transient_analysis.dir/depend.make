# Empty dependencies file for transient_analysis.
# This may be replaced when dependencies are built.
