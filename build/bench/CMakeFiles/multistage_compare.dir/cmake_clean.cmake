file(REMOVE_RECURSE
  "CMakeFiles/multistage_compare.dir/multistage_compare.cpp.o"
  "CMakeFiles/multistage_compare.dir/multistage_compare.cpp.o.d"
  "multistage_compare"
  "multistage_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistage_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
