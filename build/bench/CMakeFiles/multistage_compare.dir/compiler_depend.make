# Empty compiler generated dependencies file for multistage_compare.
# This may be replaced when dependencies are built.
