file(REMOVE_RECURSE
  "libxbar_workload.a"
)
