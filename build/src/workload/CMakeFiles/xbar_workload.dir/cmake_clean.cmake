file(REMOVE_RECURSE
  "CMakeFiles/xbar_workload.dir/bpp_source.cpp.o"
  "CMakeFiles/xbar_workload.dir/bpp_source.cpp.o.d"
  "CMakeFiles/xbar_workload.dir/calibrate.cpp.o"
  "CMakeFiles/xbar_workload.dir/calibrate.cpp.o.d"
  "CMakeFiles/xbar_workload.dir/scenario.cpp.o"
  "CMakeFiles/xbar_workload.dir/scenario.cpp.o.d"
  "libxbar_workload.a"
  "libxbar_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
