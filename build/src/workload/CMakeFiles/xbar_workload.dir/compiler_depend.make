# Empty compiler generated dependencies file for xbar_workload.
# This may be replaced when dependencies are built.
