
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/bpp_source.cpp" "src/workload/CMakeFiles/xbar_workload.dir/bpp_source.cpp.o" "gcc" "src/workload/CMakeFiles/xbar_workload.dir/bpp_source.cpp.o.d"
  "/root/repo/src/workload/calibrate.cpp" "src/workload/CMakeFiles/xbar_workload.dir/calibrate.cpp.o" "gcc" "src/workload/CMakeFiles/xbar_workload.dir/calibrate.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/xbar_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/xbar_workload.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xbar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/xbar_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/xbar_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
