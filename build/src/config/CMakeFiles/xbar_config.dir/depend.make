# Empty dependencies file for xbar_config.
# This may be replaced when dependencies are built.
