file(REMOVE_RECURSE
  "CMakeFiles/xbar_config.dir/ini.cpp.o"
  "CMakeFiles/xbar_config.dir/ini.cpp.o.d"
  "CMakeFiles/xbar_config.dir/scenario_file.cpp.o"
  "CMakeFiles/xbar_config.dir/scenario_file.cpp.o.d"
  "libxbar_config.a"
  "libxbar_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
