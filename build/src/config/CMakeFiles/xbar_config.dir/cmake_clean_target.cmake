file(REMOVE_RECURSE
  "libxbar_config.a"
)
