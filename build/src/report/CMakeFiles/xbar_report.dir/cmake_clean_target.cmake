file(REMOVE_RECURSE
  "libxbar_report.a"
)
