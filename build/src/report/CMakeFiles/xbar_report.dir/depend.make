# Empty dependencies file for xbar_report.
# This may be replaced when dependencies are built.
