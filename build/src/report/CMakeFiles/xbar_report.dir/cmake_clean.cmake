file(REMOVE_RECURSE
  "CMakeFiles/xbar_report.dir/args.cpp.o"
  "CMakeFiles/xbar_report.dir/args.cpp.o.d"
  "CMakeFiles/xbar_report.dir/ascii_chart.cpp.o"
  "CMakeFiles/xbar_report.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/xbar_report.dir/csv.cpp.o"
  "CMakeFiles/xbar_report.dir/csv.cpp.o.d"
  "CMakeFiles/xbar_report.dir/table.cpp.o"
  "CMakeFiles/xbar_report.dir/table.cpp.o.d"
  "libxbar_report.a"
  "libxbar_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
