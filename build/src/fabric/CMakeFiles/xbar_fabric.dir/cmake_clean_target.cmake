file(REMOVE_RECURSE
  "libxbar_fabric.a"
)
