# Empty compiler generated dependencies file for xbar_fabric.
# This may be replaced when dependencies are built.
