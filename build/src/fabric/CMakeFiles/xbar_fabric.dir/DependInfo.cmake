
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/banyan.cpp" "src/fabric/CMakeFiles/xbar_fabric.dir/banyan.cpp.o" "gcc" "src/fabric/CMakeFiles/xbar_fabric.dir/banyan.cpp.o.d"
  "/root/repo/src/fabric/crossbar.cpp" "src/fabric/CMakeFiles/xbar_fabric.dir/crossbar.cpp.o" "gcc" "src/fabric/CMakeFiles/xbar_fabric.dir/crossbar.cpp.o.d"
  "/root/repo/src/fabric/lee_model.cpp" "src/fabric/CMakeFiles/xbar_fabric.dir/lee_model.cpp.o" "gcc" "src/fabric/CMakeFiles/xbar_fabric.dir/lee_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
