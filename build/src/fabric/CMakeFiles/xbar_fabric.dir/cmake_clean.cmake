file(REMOVE_RECURSE
  "CMakeFiles/xbar_fabric.dir/banyan.cpp.o"
  "CMakeFiles/xbar_fabric.dir/banyan.cpp.o.d"
  "CMakeFiles/xbar_fabric.dir/crossbar.cpp.o"
  "CMakeFiles/xbar_fabric.dir/crossbar.cpp.o.d"
  "CMakeFiles/xbar_fabric.dir/lee_model.cpp.o"
  "CMakeFiles/xbar_fabric.dir/lee_model.cpp.o.d"
  "libxbar_fabric.a"
  "libxbar_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
