# Empty dependencies file for xbar_numeric.
# This may be replaced when dependencies are built.
