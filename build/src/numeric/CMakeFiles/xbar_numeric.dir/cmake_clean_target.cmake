file(REMOVE_RECURSE
  "libxbar_numeric.a"
)
