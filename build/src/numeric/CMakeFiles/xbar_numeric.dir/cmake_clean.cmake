file(REMOVE_RECURSE
  "CMakeFiles/xbar_numeric.dir/combinatorics.cpp.o"
  "CMakeFiles/xbar_numeric.dir/combinatorics.cpp.o.d"
  "CMakeFiles/xbar_numeric.dir/gradient.cpp.o"
  "CMakeFiles/xbar_numeric.dir/gradient.cpp.o.d"
  "CMakeFiles/xbar_numeric.dir/roots.cpp.o"
  "CMakeFiles/xbar_numeric.dir/roots.cpp.o.d"
  "CMakeFiles/xbar_numeric.dir/scaled_float.cpp.o"
  "CMakeFiles/xbar_numeric.dir/scaled_float.cpp.o.d"
  "libxbar_numeric.a"
  "libxbar_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
