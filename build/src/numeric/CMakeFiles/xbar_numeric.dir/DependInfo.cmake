
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/combinatorics.cpp" "src/numeric/CMakeFiles/xbar_numeric.dir/combinatorics.cpp.o" "gcc" "src/numeric/CMakeFiles/xbar_numeric.dir/combinatorics.cpp.o.d"
  "/root/repo/src/numeric/gradient.cpp" "src/numeric/CMakeFiles/xbar_numeric.dir/gradient.cpp.o" "gcc" "src/numeric/CMakeFiles/xbar_numeric.dir/gradient.cpp.o.d"
  "/root/repo/src/numeric/roots.cpp" "src/numeric/CMakeFiles/xbar_numeric.dir/roots.cpp.o" "gcc" "src/numeric/CMakeFiles/xbar_numeric.dir/roots.cpp.o.d"
  "/root/repo/src/numeric/scaled_float.cpp" "src/numeric/CMakeFiles/xbar_numeric.dir/scaled_float.cpp.o" "gcc" "src/numeric/CMakeFiles/xbar_numeric.dir/scaled_float.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
