
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/bpp.cpp" "src/dist/CMakeFiles/xbar_dist.dir/bpp.cpp.o" "gcc" "src/dist/CMakeFiles/xbar_dist.dir/bpp.cpp.o.d"
  "/root/repo/src/dist/counting.cpp" "src/dist/CMakeFiles/xbar_dist.dir/counting.cpp.o" "gcc" "src/dist/CMakeFiles/xbar_dist.dir/counting.cpp.o.d"
  "/root/repo/src/dist/empirical.cpp" "src/dist/CMakeFiles/xbar_dist.dir/empirical.cpp.o" "gcc" "src/dist/CMakeFiles/xbar_dist.dir/empirical.cpp.o.d"
  "/root/repo/src/dist/rng.cpp" "src/dist/CMakeFiles/xbar_dist.dir/rng.cpp.o" "gcc" "src/dist/CMakeFiles/xbar_dist.dir/rng.cpp.o.d"
  "/root/repo/src/dist/service.cpp" "src/dist/CMakeFiles/xbar_dist.dir/service.cpp.o" "gcc" "src/dist/CMakeFiles/xbar_dist.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/xbar_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
