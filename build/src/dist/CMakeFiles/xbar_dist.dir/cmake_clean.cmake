file(REMOVE_RECURSE
  "CMakeFiles/xbar_dist.dir/bpp.cpp.o"
  "CMakeFiles/xbar_dist.dir/bpp.cpp.o.d"
  "CMakeFiles/xbar_dist.dir/counting.cpp.o"
  "CMakeFiles/xbar_dist.dir/counting.cpp.o.d"
  "CMakeFiles/xbar_dist.dir/empirical.cpp.o"
  "CMakeFiles/xbar_dist.dir/empirical.cpp.o.d"
  "CMakeFiles/xbar_dist.dir/rng.cpp.o"
  "CMakeFiles/xbar_dist.dir/rng.cpp.o.d"
  "CMakeFiles/xbar_dist.dir/service.cpp.o"
  "CMakeFiles/xbar_dist.dir/service.cpp.o.d"
  "libxbar_dist.a"
  "libxbar_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
