file(REMOVE_RECURSE
  "libxbar_dist.a"
)
