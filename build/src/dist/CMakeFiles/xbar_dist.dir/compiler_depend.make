# Empty compiler generated dependencies file for xbar_dist.
# This may be replaced when dependencies are built.
