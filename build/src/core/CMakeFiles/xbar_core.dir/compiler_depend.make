# Empty compiler generated dependencies file for xbar_core.
# This may be replaced when dependencies are built.
