file(REMOVE_RECURSE
  "libxbar_core.a"
)
