file(REMOVE_RECURSE
  "CMakeFiles/xbar_core.dir/algorithm1.cpp.o"
  "CMakeFiles/xbar_core.dir/algorithm1.cpp.o.d"
  "CMakeFiles/xbar_core.dir/algorithm2.cpp.o"
  "CMakeFiles/xbar_core.dir/algorithm2.cpp.o.d"
  "CMakeFiles/xbar_core.dir/brute_force.cpp.o"
  "CMakeFiles/xbar_core.dir/brute_force.cpp.o.d"
  "CMakeFiles/xbar_core.dir/erlang.cpp.o"
  "CMakeFiles/xbar_core.dir/erlang.cpp.o.d"
  "CMakeFiles/xbar_core.dir/generating_function.cpp.o"
  "CMakeFiles/xbar_core.dir/generating_function.cpp.o.d"
  "CMakeFiles/xbar_core.dir/hotspot.cpp.o"
  "CMakeFiles/xbar_core.dir/hotspot.cpp.o.d"
  "CMakeFiles/xbar_core.dir/knapsack.cpp.o"
  "CMakeFiles/xbar_core.dir/knapsack.cpp.o.d"
  "CMakeFiles/xbar_core.dir/markov.cpp.o"
  "CMakeFiles/xbar_core.dir/markov.cpp.o.d"
  "CMakeFiles/xbar_core.dir/measures.cpp.o"
  "CMakeFiles/xbar_core.dir/measures.cpp.o.d"
  "CMakeFiles/xbar_core.dir/model.cpp.o"
  "CMakeFiles/xbar_core.dir/model.cpp.o.d"
  "CMakeFiles/xbar_core.dir/revenue.cpp.o"
  "CMakeFiles/xbar_core.dir/revenue.cpp.o.d"
  "CMakeFiles/xbar_core.dir/solver.cpp.o"
  "CMakeFiles/xbar_core.dir/solver.cpp.o.d"
  "CMakeFiles/xbar_core.dir/state_space.cpp.o"
  "CMakeFiles/xbar_core.dir/state_space.cpp.o.d"
  "CMakeFiles/xbar_core.dir/wilkinson.cpp.o"
  "CMakeFiles/xbar_core.dir/wilkinson.cpp.o.d"
  "libxbar_core.a"
  "libxbar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
