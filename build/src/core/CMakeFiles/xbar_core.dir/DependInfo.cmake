
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithm1.cpp" "src/core/CMakeFiles/xbar_core.dir/algorithm1.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/algorithm1.cpp.o.d"
  "/root/repo/src/core/algorithm2.cpp" "src/core/CMakeFiles/xbar_core.dir/algorithm2.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/algorithm2.cpp.o.d"
  "/root/repo/src/core/brute_force.cpp" "src/core/CMakeFiles/xbar_core.dir/brute_force.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/brute_force.cpp.o.d"
  "/root/repo/src/core/erlang.cpp" "src/core/CMakeFiles/xbar_core.dir/erlang.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/erlang.cpp.o.d"
  "/root/repo/src/core/generating_function.cpp" "src/core/CMakeFiles/xbar_core.dir/generating_function.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/generating_function.cpp.o.d"
  "/root/repo/src/core/hotspot.cpp" "src/core/CMakeFiles/xbar_core.dir/hotspot.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/hotspot.cpp.o.d"
  "/root/repo/src/core/knapsack.cpp" "src/core/CMakeFiles/xbar_core.dir/knapsack.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/knapsack.cpp.o.d"
  "/root/repo/src/core/markov.cpp" "src/core/CMakeFiles/xbar_core.dir/markov.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/markov.cpp.o.d"
  "/root/repo/src/core/measures.cpp" "src/core/CMakeFiles/xbar_core.dir/measures.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/measures.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/xbar_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/model.cpp.o.d"
  "/root/repo/src/core/revenue.cpp" "src/core/CMakeFiles/xbar_core.dir/revenue.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/revenue.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/xbar_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/solver.cpp.o.d"
  "/root/repo/src/core/state_space.cpp" "src/core/CMakeFiles/xbar_core.dir/state_space.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/state_space.cpp.o.d"
  "/root/repo/src/core/wilkinson.cpp" "src/core/CMakeFiles/xbar_core.dir/wilkinson.cpp.o" "gcc" "src/core/CMakeFiles/xbar_core.dir/wilkinson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/xbar_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/xbar_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
