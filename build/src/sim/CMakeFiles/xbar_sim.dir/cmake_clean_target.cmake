file(REMOVE_RECURSE
  "libxbar_sim.a"
)
