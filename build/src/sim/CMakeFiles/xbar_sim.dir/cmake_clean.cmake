file(REMOVE_RECURSE
  "CMakeFiles/xbar_sim.dir/replication.cpp.o"
  "CMakeFiles/xbar_sim.dir/replication.cpp.o.d"
  "CMakeFiles/xbar_sim.dir/simulator.cpp.o"
  "CMakeFiles/xbar_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/xbar_sim.dir/stats.cpp.o"
  "CMakeFiles/xbar_sim.dir/stats.cpp.o.d"
  "CMakeFiles/xbar_sim.dir/traffic_pattern.cpp.o"
  "CMakeFiles/xbar_sim.dir/traffic_pattern.cpp.o.d"
  "libxbar_sim.a"
  "libxbar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
