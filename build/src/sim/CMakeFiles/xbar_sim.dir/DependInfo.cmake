
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/replication.cpp" "src/sim/CMakeFiles/xbar_sim.dir/replication.cpp.o" "gcc" "src/sim/CMakeFiles/xbar_sim.dir/replication.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/xbar_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/xbar_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/xbar_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/xbar_sim.dir/stats.cpp.o.d"
  "/root/repo/src/sim/traffic_pattern.cpp" "src/sim/CMakeFiles/xbar_sim.dir/traffic_pattern.cpp.o" "gcc" "src/sim/CMakeFiles/xbar_sim.dir/traffic_pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xbar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/xbar_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/xbar_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/xbar_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
