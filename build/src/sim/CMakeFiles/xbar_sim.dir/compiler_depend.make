# Empty compiler generated dependencies file for xbar_sim.
# This may be replaced when dependencies are built.
