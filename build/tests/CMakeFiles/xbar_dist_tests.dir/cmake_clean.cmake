file(REMOVE_RECURSE
  "CMakeFiles/xbar_dist_tests.dir/dist/bpp_test.cpp.o"
  "CMakeFiles/xbar_dist_tests.dir/dist/bpp_test.cpp.o.d"
  "CMakeFiles/xbar_dist_tests.dir/dist/counting_test.cpp.o"
  "CMakeFiles/xbar_dist_tests.dir/dist/counting_test.cpp.o.d"
  "CMakeFiles/xbar_dist_tests.dir/dist/empirical_test.cpp.o"
  "CMakeFiles/xbar_dist_tests.dir/dist/empirical_test.cpp.o.d"
  "CMakeFiles/xbar_dist_tests.dir/dist/rng_test.cpp.o"
  "CMakeFiles/xbar_dist_tests.dir/dist/rng_test.cpp.o.d"
  "CMakeFiles/xbar_dist_tests.dir/dist/service_test.cpp.o"
  "CMakeFiles/xbar_dist_tests.dir/dist/service_test.cpp.o.d"
  "xbar_dist_tests"
  "xbar_dist_tests.pdb"
  "xbar_dist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_dist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
