# Empty dependencies file for xbar_dist_tests.
# This may be replaced when dependencies are built.
