
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/algorithm1_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/algorithm1_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/algorithm1_test.cpp.o.d"
  "/root/repo/tests/core/algorithm2_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/algorithm2_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/algorithm2_test.cpp.o.d"
  "/root/repo/tests/core/algorithms_equivalence_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/algorithms_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/algorithms_equivalence_test.cpp.o.d"
  "/root/repo/tests/core/brute_force_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/brute_force_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/brute_force_test.cpp.o.d"
  "/root/repo/tests/core/erlang_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/erlang_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/erlang_test.cpp.o.d"
  "/root/repo/tests/core/fuzz_equivalence_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/fuzz_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/fuzz_equivalence_test.cpp.o.d"
  "/root/repo/tests/core/generating_function_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/generating_function_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/generating_function_test.cpp.o.d"
  "/root/repo/tests/core/hotspot_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/hotspot_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/hotspot_test.cpp.o.d"
  "/root/repo/tests/core/knapsack_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/knapsack_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/knapsack_test.cpp.o.d"
  "/root/repo/tests/core/markov_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/markov_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/markov_test.cpp.o.d"
  "/root/repo/tests/core/measures_properties_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/measures_properties_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/measures_properties_test.cpp.o.d"
  "/root/repo/tests/core/model_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/model_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/model_test.cpp.o.d"
  "/root/repo/tests/core/revenue_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/revenue_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/revenue_test.cpp.o.d"
  "/root/repo/tests/core/state_space_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/state_space_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/state_space_test.cpp.o.d"
  "/root/repo/tests/core/table2_regression_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/table2_regression_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/table2_regression_test.cpp.o.d"
  "/root/repo/tests/core/wilkinson_test.cpp" "tests/CMakeFiles/xbar_core_tests.dir/core/wilkinson_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_core_tests.dir/core/wilkinson_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xbar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/xbar_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/xbar_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/xbar_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xbar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xbar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/xbar_report.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/xbar_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
