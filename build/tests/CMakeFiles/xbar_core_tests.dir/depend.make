# Empty dependencies file for xbar_core_tests.
# This may be replaced when dependencies are built.
