# Empty dependencies file for xbar_fabric_tests.
# This may be replaced when dependencies are built.
