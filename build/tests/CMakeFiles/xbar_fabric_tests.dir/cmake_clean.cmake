file(REMOVE_RECURSE
  "CMakeFiles/xbar_fabric_tests.dir/fabric/banyan_test.cpp.o"
  "CMakeFiles/xbar_fabric_tests.dir/fabric/banyan_test.cpp.o.d"
  "CMakeFiles/xbar_fabric_tests.dir/fabric/crossbar_test.cpp.o"
  "CMakeFiles/xbar_fabric_tests.dir/fabric/crossbar_test.cpp.o.d"
  "CMakeFiles/xbar_fabric_tests.dir/fabric/lee_model_test.cpp.o"
  "CMakeFiles/xbar_fabric_tests.dir/fabric/lee_model_test.cpp.o.d"
  "xbar_fabric_tests"
  "xbar_fabric_tests.pdb"
  "xbar_fabric_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_fabric_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
