file(REMOVE_RECURSE
  "CMakeFiles/xbar_workload_tests.dir/workload/bpp_source_test.cpp.o"
  "CMakeFiles/xbar_workload_tests.dir/workload/bpp_source_test.cpp.o.d"
  "CMakeFiles/xbar_workload_tests.dir/workload/calibrate_test.cpp.o"
  "CMakeFiles/xbar_workload_tests.dir/workload/calibrate_test.cpp.o.d"
  "CMakeFiles/xbar_workload_tests.dir/workload/scenario_test.cpp.o"
  "CMakeFiles/xbar_workload_tests.dir/workload/scenario_test.cpp.o.d"
  "xbar_workload_tests"
  "xbar_workload_tests.pdb"
  "xbar_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
