# Empty compiler generated dependencies file for xbar_workload_tests.
# This may be replaced when dependencies are built.
