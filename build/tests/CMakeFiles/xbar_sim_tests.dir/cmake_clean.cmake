file(REMOVE_RECURSE
  "CMakeFiles/xbar_sim_tests.dir/sim/event_queue_test.cpp.o"
  "CMakeFiles/xbar_sim_tests.dir/sim/event_queue_test.cpp.o.d"
  "CMakeFiles/xbar_sim_tests.dir/sim/replication_test.cpp.o"
  "CMakeFiles/xbar_sim_tests.dir/sim/replication_test.cpp.o.d"
  "CMakeFiles/xbar_sim_tests.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/xbar_sim_tests.dir/sim/simulator_test.cpp.o.d"
  "CMakeFiles/xbar_sim_tests.dir/sim/stats_test.cpp.o"
  "CMakeFiles/xbar_sim_tests.dir/sim/stats_test.cpp.o.d"
  "CMakeFiles/xbar_sim_tests.dir/sim/traffic_pattern_test.cpp.o"
  "CMakeFiles/xbar_sim_tests.dir/sim/traffic_pattern_test.cpp.o.d"
  "xbar_sim_tests"
  "xbar_sim_tests.pdb"
  "xbar_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
