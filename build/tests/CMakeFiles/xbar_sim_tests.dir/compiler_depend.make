# Empty compiler generated dependencies file for xbar_sim_tests.
# This may be replaced when dependencies are built.
