file(REMOVE_RECURSE
  "CMakeFiles/xbar_config_tests.dir/config/ini_test.cpp.o"
  "CMakeFiles/xbar_config_tests.dir/config/ini_test.cpp.o.d"
  "CMakeFiles/xbar_config_tests.dir/config/scenario_file_test.cpp.o"
  "CMakeFiles/xbar_config_tests.dir/config/scenario_file_test.cpp.o.d"
  "xbar_config_tests"
  "xbar_config_tests.pdb"
  "xbar_config_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_config_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
