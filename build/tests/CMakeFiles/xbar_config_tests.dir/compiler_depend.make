# Empty compiler generated dependencies file for xbar_config_tests.
# This may be replaced when dependencies are built.
