# Empty dependencies file for xbar_numeric_tests.
# This may be replaced when dependencies are built.
