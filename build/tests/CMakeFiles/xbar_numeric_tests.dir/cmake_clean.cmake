file(REMOVE_RECURSE
  "CMakeFiles/xbar_numeric_tests.dir/numeric/combinatorics_test.cpp.o"
  "CMakeFiles/xbar_numeric_tests.dir/numeric/combinatorics_test.cpp.o.d"
  "CMakeFiles/xbar_numeric_tests.dir/numeric/gradient_test.cpp.o"
  "CMakeFiles/xbar_numeric_tests.dir/numeric/gradient_test.cpp.o.d"
  "CMakeFiles/xbar_numeric_tests.dir/numeric/kahan_test.cpp.o"
  "CMakeFiles/xbar_numeric_tests.dir/numeric/kahan_test.cpp.o.d"
  "CMakeFiles/xbar_numeric_tests.dir/numeric/log_domain_test.cpp.o"
  "CMakeFiles/xbar_numeric_tests.dir/numeric/log_domain_test.cpp.o.d"
  "CMakeFiles/xbar_numeric_tests.dir/numeric/roots_test.cpp.o"
  "CMakeFiles/xbar_numeric_tests.dir/numeric/roots_test.cpp.o.d"
  "CMakeFiles/xbar_numeric_tests.dir/numeric/scaled_float_test.cpp.o"
  "CMakeFiles/xbar_numeric_tests.dir/numeric/scaled_float_test.cpp.o.d"
  "xbar_numeric_tests"
  "xbar_numeric_tests.pdb"
  "xbar_numeric_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_numeric_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
