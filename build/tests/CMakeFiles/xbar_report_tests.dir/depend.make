# Empty dependencies file for xbar_report_tests.
# This may be replaced when dependencies are built.
