
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/report/args_test.cpp" "tests/CMakeFiles/xbar_report_tests.dir/report/args_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_report_tests.dir/report/args_test.cpp.o.d"
  "/root/repo/tests/report/ascii_chart_test.cpp" "tests/CMakeFiles/xbar_report_tests.dir/report/ascii_chart_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_report_tests.dir/report/ascii_chart_test.cpp.o.d"
  "/root/repo/tests/report/csv_test.cpp" "tests/CMakeFiles/xbar_report_tests.dir/report/csv_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_report_tests.dir/report/csv_test.cpp.o.d"
  "/root/repo/tests/report/table_test.cpp" "tests/CMakeFiles/xbar_report_tests.dir/report/table_test.cpp.o" "gcc" "tests/CMakeFiles/xbar_report_tests.dir/report/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xbar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/xbar_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/xbar_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/xbar_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xbar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xbar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/xbar_report.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/xbar_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
