file(REMOVE_RECURSE
  "CMakeFiles/xbar_report_tests.dir/report/args_test.cpp.o"
  "CMakeFiles/xbar_report_tests.dir/report/args_test.cpp.o.d"
  "CMakeFiles/xbar_report_tests.dir/report/ascii_chart_test.cpp.o"
  "CMakeFiles/xbar_report_tests.dir/report/ascii_chart_test.cpp.o.d"
  "CMakeFiles/xbar_report_tests.dir/report/csv_test.cpp.o"
  "CMakeFiles/xbar_report_tests.dir/report/csv_test.cpp.o.d"
  "CMakeFiles/xbar_report_tests.dir/report/table_test.cpp.o"
  "CMakeFiles/xbar_report_tests.dir/report/table_test.cpp.o.d"
  "xbar_report_tests"
  "xbar_report_tests.pdb"
  "xbar_report_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_report_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
