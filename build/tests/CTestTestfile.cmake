# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/xbar_numeric_tests[1]_include.cmake")
include("/root/repo/build/tests/xbar_dist_tests[1]_include.cmake")
include("/root/repo/build/tests/xbar_core_tests[1]_include.cmake")
include("/root/repo/build/tests/xbar_fabric_tests[1]_include.cmake")
include("/root/repo/build/tests/xbar_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/xbar_workload_tests[1]_include.cmake")
include("/root/repo/build/tests/xbar_config_tests[1]_include.cmake")
include("/root/repo/build/tests/xbar_report_tests[1]_include.cmake")
