# Empty compiler generated dependencies file for transient_startup.
# This may be replaced when dependencies are built.
