file(REMOVE_RECURSE
  "CMakeFiles/transient_startup.dir/transient_startup.cpp.o"
  "CMakeFiles/transient_startup.dir/transient_startup.cpp.o.d"
  "transient_startup"
  "transient_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
