file(REMOVE_RECURSE
  "CMakeFiles/multistage_comparison.dir/multistage_comparison.cpp.o"
  "CMakeFiles/multistage_comparison.dir/multistage_comparison.cpp.o.d"
  "multistage_comparison"
  "multistage_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistage_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
