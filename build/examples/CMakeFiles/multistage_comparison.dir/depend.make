# Empty dependencies file for multistage_comparison.
# This may be replaced when dependencies are built.
