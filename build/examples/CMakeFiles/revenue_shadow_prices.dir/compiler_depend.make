# Empty compiler generated dependencies file for revenue_shadow_prices.
# This may be replaced when dependencies are built.
