file(REMOVE_RECURSE
  "CMakeFiles/revenue_shadow_prices.dir/revenue_shadow_prices.cpp.o"
  "CMakeFiles/revenue_shadow_prices.dir/revenue_shadow_prices.cpp.o.d"
  "revenue_shadow_prices"
  "revenue_shadow_prices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revenue_shadow_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
