file(REMOVE_RECURSE
  "CMakeFiles/xbar.dir/xbar_cli.cpp.o"
  "CMakeFiles/xbar.dir/xbar_cli.cpp.o.d"
  "xbar"
  "xbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
