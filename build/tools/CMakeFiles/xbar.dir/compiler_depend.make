# Empty compiler generated dependencies file for xbar.
# This may be replaced when dependencies are built.
