// Ablation for §4's gradient computation: the paper approximates
// dW/d(beta_2/mu_2) "via a forward difference"; this library also derives
// the exact series
//
//   dQ(M)/dx_r = rho_r sum_{m>=2} ((m-1)/m) x^{m-2} Q(M - m a_r I).
//
// This bench sweeps the finite-difference step size and prints the error of
// forward and central differences against the exact value, at small and
// large N — showing (a) why the exact form is preferable and (b) how large
// a noise floor the paper's Table 2 gradient column sits on.

#include <cmath>
#include <iostream>

#include "core/revenue.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace xbar;
  using core::GradientMethod;
  using core::RevenueAnalyzer;

  std::cout << "=== Ablation: exact vs finite-difference dW/d(beta2/mu2) ===\n"
            << "workload: Table 2 set 1\n";

  for (const unsigned n : {8u, 64u, 256u}) {
    const auto model =
        workload::table2_model(n, workload::table2_sets().front());
    const RevenueAnalyzer analyzer(model);
    const double exact = analyzer.d_revenue_d_x_exact(1);
    std::cout << "\n--- N = " << n << ", exact dW/dx2 = "
              << report::Table::sci(exact, 6) << " ---\n";
    report::Table table({"rel step", "forward diff", "fwd rel err",
                         "central diff", "ctr rel err"});
    for (const double h : {1.0, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
      const double fwd = analyzer.d_revenue_d_x_numeric(
          1, GradientMethod::kForwardDifference, h);
      const double ctr = analyzer.d_revenue_d_x_numeric(
          1, GradientMethod::kCentralDifference, h);
      table.add_row({report::Table::sci(h, 0),
                     report::Table::sci(fwd, 5),
                     report::Table::sci(std::fabs(fwd - exact) /
                                            std::fabs(exact), 1),
                     report::Table::sci(ctr, 5),
                     report::Table::sci(std::fabs(ctr - exact) /
                                            std::fabs(exact), 1)});
    }
    table.print(std::cout);
  }

  std::cout
      << "\nConclusions:\n"
      << "  * forward differences converge only linearly in the step and\n"
      << "    need a well-chosen step at every (N, load) point;\n"
      << "  * the exact series costs one extra grid sweep and has no step\n"
      << "    to tune — it is what bench/table2_revenue prints;\n"
      << "  * with 1992 single-precision W values, a forward difference's\n"
      << "    subtraction noise can exceed the signal at small N, which is\n"
      << "    consistent with the sign anomalies in the paper's Table 2\n"
      << "    gradient column (see EXPERIMENTS.md).\n";
  return 0;
}
