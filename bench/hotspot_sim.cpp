// Hot-spot stress test: how far can the paper's uniform-traffic model be
// trusted when the traffic is not uniform?  (The authors analyzed hot
// spots separately in reference [28]; here the simulator plays that role.)
//
// A 16x16 crossbar carries one Poisson class; a fraction h of every
// request's output choices is redirected to output 0.  The uniform model's
// blocking is exact at h = 0 and becomes an optimistic bound as h grows —
// the hot output saturates while the rest of the switch idles.
//
// The "exact hotspot" column is this library's reconstruction of [28]'s
// analysis (src/core/hotspot): the (hot-busy, cold-count) chain is exactly
// lumpable, so it must agree with the simulation at every h.

#include <iostream>

#include "core/hotspot.hpp"
#include "core/solver.hpp"
#include "fabric/crossbar.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace xbar;
  using core::CrossbarModel;
  using core::Dims;
  using core::TrafficClass;

  constexpr unsigned kN = 16;
  const CrossbarModel model(Dims::square(kN),
                            {TrafficClass::poisson("p", 1.0)});
  const auto analytic = core::solve(model);

  sim::SimulationConfig cfg;
  cfg.warmup_time = 500.0;
  cfg.measurement_time = 20'000.0;
  cfg.num_batches = 20;
  cfg.seed = 99;

  std::cout << "=== Hot-spot traffic vs the uniform model (" << kN << "x"
            << kN << ", rho~ = 1) ===\n"
            << "uniform-model blocking: "
            << report::Table::num(analytic.per_class[0].blocking, 5)
            << ", utilization: "
            << report::Table::num(analytic.utilization, 4) << "\n\n";

  report::Table table({"hot fraction", "sim blocking (CI)", "exact hotspot",
                       "uniform-model error", "utilization",
                       "hot util (exact)"});
  for (const double h : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    fabric::CrossbarFabric fabric(kN, kN);
    sim::Simulator simulator(model, fabric, cfg);
    simulator.set_output_selector(sim::make_hotspot_selector(h, 0));
    const auto result = simulator.run();
    const auto& cc = result.per_class[0].call_congestion;
    const double err =
        (cc.mean - analytic.per_class[0].blocking) /
        analytic.per_class[0].blocking;
    const auto exact_hot = core::hotspot_crossbar(kN, 1.0, h);
    table.add_row({report::Table::num(h, 2),
                   report::Table::num(cc.mean, 5) + " +- " +
                       report::Table::num(cc.half_width, 2),
                   report::Table::num(exact_hot.blocking_overall, 5),
                   report::Table::num(100.0 * err, 3) + "%",
                   report::Table::num(result.utilization.mean, 4),
                   report::Table::num(exact_hot.hot_utilization, 4)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading guide:\n"
      << "  * h = 0 reproduces the uniform model within CI (exactness);\n"
      << "  * blocking rises steeply with h while utilization *falls* —\n"
      << "    the hot output saturates and strands the rest of the switch;\n"
      << "  * the uniform model's error column is the price of assuming\n"
      << "    uniformity; the 'exact hotspot' column (src/core/hotspot,\n"
      << "    reconstructing ref [28]'s analysis) tracks the simulation at\n"
      << "    every h — non-uniform loads need the non-uniform model.\n";
  return 0;
}
