// Analytic model vs discrete-event simulation — the paper's stated future
// work ("comparing our analytical results with simulation").
//
// For a set of configurations spanning the BPP family, multi-rate classes
// and load levels, prints the analytic blocking/concurrency next to the
// simulated estimates with 95% confidence intervals, plus an insensitivity
// demonstration (deterministic and hyperexponential holding times).

#include <cmath>
#include <iostream>

#include "core/solver.hpp"
#include "report/table.hpp"
#include "sim/replication.hpp"

int main() {
  using namespace xbar;
  using core::CrossbarModel;
  using core::Dims;
  using core::TrafficClass;

  struct Case {
    std::string label;
    CrossbarModel model;
  };
  const std::vector<Case> cases = {
      {"poisson 8x8 moderate",
       CrossbarModel(Dims::square(8), {TrafficClass::poisson("p", 0.6)})},
      {"pascal 8x8 (Z>1)",
       CrossbarModel(Dims::square(8), {TrafficClass::bursty("pk", 0.5, 0.25)})},
      {"bernoulli 8x8 (Z<1)",
       CrossbarModel(Dims::square(8), {TrafficClass::bursty("sm", 1.6, -0.1)})},
      {"two-class mix 8x8",
       CrossbarModel(Dims::square(8), {TrafficClass::poisson("p", 0.5),
                                       TrafficClass::bursty("pk", 0.4, 0.2)})},
      {"multirate a=2 6x6",
       CrossbarModel(Dims::square(6), {TrafficClass::poisson("w", 2.0, 2)})},
      {"heavy 4x4",
       CrossbarModel(Dims::square(4), {TrafficClass::poisson("hot", 4.0)})},
  };

  sim::ReplicationConfig cfg;
  cfg.replications = 5;
  cfg.sim.warmup_time = 400.0;
  cfg.sim.measurement_time = 6000.0;
  cfg.sim.num_batches = 20;
  cfg.sim.seed = 2026;

  std::cout << "=== Simulation vs analysis (5 replications each) ===\n\n";
  report::Table table({"case", "class", "analytic 1-B", "sim time-cong (CI)",
                       "analytic E", "sim E (CI)", "agree"});
  unsigned agreements = 0;
  unsigned checks = 0;
  for (const auto& c : cases) {
    const auto analytic = core::solve(c.model);
    const auto simulated = sim::run_crossbar_replications(c.model, cfg);
    for (std::size_t r = 0; r < c.model.num_classes(); ++r) {
      const auto& a = analytic.per_class[r];
      const auto& s = simulated.per_class[r];
      const bool ok =
          std::fabs(s.time_congestion.mean - a.blocking) <=
              3.0 * s.time_congestion.half_width + 5e-3 &&
          std::fabs(s.concurrency.mean - a.concurrency) <=
              3.0 * s.concurrency.half_width + 0.05;
      checks += 1;
      agreements += ok ? 1 : 0;
      table.add_row(
          {c.label, std::to_string(r), report::Table::num(a.blocking, 5),
           report::Table::num(s.time_congestion.mean, 5) + " +- " +
               report::Table::num(s.time_congestion.half_width, 2),
           report::Table::num(a.concurrency, 5),
           report::Table::num(s.concurrency.mean, 5) + " +- " +
               report::Table::num(s.concurrency.half_width, 2),
           ok ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nagreement: " << agreements << "/" << checks
            << " class-measures within 3 CI half-widths\n";

  // Insensitivity: same mean, different holding-time shapes.
  std::cout << "\n=== Insensitivity to the holding-time distribution ===\n\n";
  const CrossbarModel model(Dims::square(6),
                            {TrafficClass::poisson("p", 3.0)});
  const double analytic_blocking =
      core::solve(model).per_class[0].blocking;
  report::Table itable({"service distribution", "sim call-cong (CI)",
                        "analytic", "agree"});
  struct Shape {
    std::string label;
    sim::ServiceFactory factory;
  };
  const std::vector<Shape> shapes = {
      {"exponential (baseline)", nullptr},
      {"deterministic",
       [](std::size_t, double mu) { return dist::make_deterministic(1.0 / mu); }},
      {"erlang-4",
       [](std::size_t, double mu) { return dist::make_erlang(4, 1.0 / mu); }},
      {"hyperexp scv=4",
       [](std::size_t, double mu) {
         return dist::make_hyperexponential(1.0 / mu, 4.0);
       }},
  };
  for (const auto& shape : shapes) {
    auto icfg = cfg;
    icfg.service_factory = shape.factory;
    const auto result = sim::run_crossbar_replications(model, icfg);
    const auto& cc = result.per_class[0].call_congestion;
    const bool ok = std::fabs(cc.mean - analytic_blocking) <=
                    3.0 * cc.half_width + 5e-3;
    itable.add_row({shape.label,
                    report::Table::num(cc.mean, 5) + " +- " +
                        report::Table::num(cc.half_width, 2),
                    report::Table::num(analytic_blocking, 5),
                    ok ? "yes" : "NO"});
  }
  itable.print(std::cout);
  std::cout << "\nThe product form depends on the holding time only through "
               "its mean (paper §2, ref [7]).\n";
  return 0;
}
