// Microbenchmarks for §5's complexity claims: both algorithms are
// O(N1 N2 (R1 + R2)).  Doubling N should roughly quadruple the time;
// doubling R should roughly double it.  Also benchmarks the numeric
// backends of Algorithm 1 and the exact-gradient layer.

#include <benchmark/benchmark.h>

#include "core/algorithm1.hpp"
#include "core/algorithm1_batch.hpp"
#include "core/algorithm2.hpp"
#include "core/brute_force.hpp"
#include "core/priority.hpp"
#include "core/revenue.hpp"
#include "core/solver.hpp"
#include "sweep/sweep.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace xbar;

core::CrossbarModel model_with_classes(unsigned n, unsigned num_classes) {
  std::vector<core::TrafficClass> classes;
  for (unsigned r = 0; r < num_classes; ++r) {
    if (r % 2 == 0) {
      classes.push_back(core::TrafficClass::poisson(
          "p" + std::to_string(r), 0.01 + 0.002 * r, 1 + r % 2));
    } else {
      classes.push_back(core::TrafficClass::bursty(
          "b" + std::to_string(r), 0.01 + 0.002 * r, 0.005, 1 + r % 2));
    }
  }
  return core::CrossbarModel(core::Dims::square(n), std::move(classes));
}

void BM_Algorithm1_SizeSweep(benchmark::State& state) {
  const auto model =
      model_with_classes(static_cast<unsigned>(state.range(0)), 2);
  for (auto _ : state) {
    core::Algorithm1Solver solver(model);
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm1_SizeSweep)->RangeMultiplier(2)->Range(8, 256)
    ->Complexity(benchmark::oNSquared);

void BM_Algorithm2_SizeSweep(benchmark::State& state) {
  const auto model =
      model_with_classes(static_cast<unsigned>(state.range(0)), 2);
  for (auto _ : state) {
    core::Algorithm2Solver solver(model);
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm2_SizeSweep)->RangeMultiplier(2)->Range(8, 256)
    ->Complexity(benchmark::oNSquared);

void BM_Algorithm1_ClassSweep(benchmark::State& state) {
  const auto model =
      model_with_classes(32, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    core::Algorithm1Solver solver(model);
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm1_ClassSweep)->RangeMultiplier(2)->Range(1, 16)
    ->Complexity(benchmark::oN);

void BM_Algorithm2_ClassSweep(benchmark::State& state) {
  const auto model =
      model_with_classes(32, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    core::Algorithm2Solver solver(model);
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm2_ClassSweep)->RangeMultiplier(2)->Range(1, 16)
    ->Complexity(benchmark::oN);

void BM_Algorithm1_Backend(benchmark::State& state) {
  const auto backend = static_cast<core::Algorithm1Backend>(state.range(0));
  const auto model = model_with_classes(64, 2);
  for (auto _ : state) {
    core::Algorithm1Solver solver(model, {backend});
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_Algorithm1_Backend)
    ->Arg(static_cast<int>(core::Algorithm1Backend::kScaledFloat))
    ->Arg(static_cast<int>(core::Algorithm1Backend::kDoubleDynamicScaling))
    ->Arg(static_cast<int>(core::Algorithm1Backend::kLongDouble))
    ->Arg(static_cast<int>(core::Algorithm1Backend::kDoubleRaw));

// Roofline view of the lane kernel (kDoubleDynamicScaling): cells/s plus
// effective GFLOP/s and GB/s for the two-class family above (one Poisson
// class a=1, one bursty a=2).  Per interior cell the phase-structured fill
// does: phase V (per bursty class) 3 flops / 3 accesses, phase A 2 flops /
// 3 accesses per class, phase B 2 flops / 2 accesses, plus the acc clear —
// flops = 2 + 2 R1 + 5 R2, accesses = 3 + 3 R1 + 6 R2 doubles.
constexpr double kFlopsPerCell = 9.0;   // R1 = R2 = 1
constexpr double kBytesPerCell = 96.0;  // 12 double accesses

void BM_Algorithm1_Roofline(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const auto model = model_with_classes(n, 2);
  const core::Algorithm1Options opts{
      core::Algorithm1Backend::kDoubleDynamicScaling};
  for (auto _ : state) {
    core::Algorithm1Solver solver(model, opts);
    benchmark::DoNotOptimize(solver.solve());
  }
  const double cells = static_cast<double>(n + 1) * (n + 1);
  const double its = static_cast<double>(state.iterations());
  state.counters["cells/s"] =
      benchmark::Counter(cells * its, benchmark::Counter::kIsRate);
  state.counters["GFLOP/s"] = benchmark::Counter(
      cells * its * kFlopsPerCell * 1e-9, benchmark::Counter::kIsRate);
  state.counters["GB/s"] = benchmark::Counter(
      cells * its * kBytesPerCell * 1e-9, benchmark::Counter::kIsRate);
  state.counters["bytes/cell"] = kBytesPerCell;
}
BENCHMARK(BM_Algorithm1_Roofline)->RangeMultiplier(2)->Range(32, 256);

// --- Batched multi-scenario solves (Algorithm1BatchSolver). ---
//
// 16 scenarios sharing Dims and class skeleton, differing only in loads:
// Sequential builds 16 independent solvers (the loop-carried phase-B chain
// caps each one); Batched advances all 16 lanes through one traversal,
// turning the chain into a stride-1 pass across lanes.

std::vector<core::CrossbarModel> batch_lane_models(unsigned n,
                                                   std::size_t count) {
  std::vector<core::CrossbarModel> models;
  for (std::size_t s = 0; s < count; ++s) {
    const double bump = 0.0004 * static_cast<double>(s);
    models.push_back(core::CrossbarModel(
        core::Dims::square(n),
        {core::TrafficClass::poisson("p0", 0.01 + bump, 1),
         core::TrafficClass::bursty("b1", 0.012 + bump, 0.005, 2)}));
  }
  return models;
}

void BM_Algorithm1_Batch16_Sequential(benchmark::State& state) {
  const auto models =
      batch_lane_models(static_cast<unsigned>(state.range(0)), 16);
  const core::Algorithm1Options opts{
      core::Algorithm1Backend::kDoubleDynamicScaling};
  for (auto _ : state) {
    for (const auto& m : models) {
      core::Algorithm1Solver solver(m, opts);
      benchmark::DoNotOptimize(solver.solve());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Algorithm1_Batch16_Sequential)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_Algorithm1_Batch16_Batched(benchmark::State& state) {
  const auto models =
      batch_lane_models(static_cast<unsigned>(state.range(0)), 16);
  const core::Algorithm1Options opts{
      core::Algorithm1Backend::kDoubleDynamicScaling};
  for (auto _ : state) {
    core::Algorithm1BatchSolver batch(models, opts);
    for (std::size_t s = 0; s < batch.batch_size(); ++s) {
      benchmark::DoNotOptimize(batch.solve(s));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Algorithm1_Batch16_Batched)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

// --- Fabric models: what the two non-crossbar fabrics cost to solve. ---
//
// speedup-s is the regular Algorithm 1 machinery on an s-times-larger grid,
// so its cost curve is the size sweep shifted by s^2; the priority CTMC is
// a dense stationary solve over Γ(N), exponential in R like brute force.

void BM_Speedup2_ScaledSolve(benchmark::State& state) {
  const auto model =
      model_with_classes(static_cast<unsigned>(state.range(0)), 2);
  const auto spec =
      core::SolverSpec::parse("algorithm1/double-dynamic@speedup-2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_result(model, spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Speedup2_ScaledSolve)->RangeMultiplier(2)->Range(8, 128)
    ->Complexity(benchmark::oNSquared);

void BM_PriorityCtmc_SizeSweep(benchmark::State& state) {
  // Exact CTMC: small systems only, like the brute-force reference.
  const auto model =
      model_with_classes(static_cast<unsigned>(state.range(0)), 2);
  for (auto _ : state) {
    core::PriorityCtmcSolver solver(model);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_PriorityCtmc_SizeSweep)->DenseRange(2, 8, 2);

void BM_BruteForce_SizeSweep(benchmark::State& state) {
  // Exponential state space: only tiny systems are feasible.
  const auto model =
      model_with_classes(static_cast<unsigned>(state.range(0)), 2);
  for (auto _ : state) {
    core::BruteForceSolver solver(model);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_BruteForce_SizeSweep)->DenseRange(2, 8, 2);

// --- Sweep engine: the multi-point workload every figure driver runs. ---
//
// A 32-point load sweep at N = 128 (single bursty class, beta~ varying).
// Three flavors:
//   * Serial     — the pre-sweep-engine driver idiom: fresh core::solve
//     (kAuto) per point, rebuilding the full grid every time.
//   * RunnerCold — a fresh SweepRunner per sweep: the kFast kernel but no
//     cache warm-up; what a one-shot CLI invocation pays.
//   * RunnerWarm — one persistent SweepRunner re-evaluating the same grid:
//     the serving/steady-state path, where every point is a cache hit.

std::vector<sweep::ScenarioPoint> load_sweep_points(unsigned n,
                                                    std::size_t count) {
  std::vector<sweep::ScenarioPoint> points;
  for (std::size_t i = 0; i < count; ++i) {
    const double beta = 0.0001 * static_cast<double>(i);
    points.push_back(
        {core::CrossbarModel(core::Dims::square(n),
                             {core::TrafficClass::bursty("b", 0.0024, beta)}),
         std::nullopt});
  }
  return points;
}

void BM_LoadSweep_Serial(benchmark::State& state) {
  const auto points =
      load_sweep_points(static_cast<unsigned>(state.range(0)), 32);
  for (auto _ : state) {
    for (const auto& p : points) {
      benchmark::DoNotOptimize(core::solve(p.model));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_LoadSweep_Serial)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_LoadSweep_RunnerCold(benchmark::State& state) {
  const auto points =
      load_sweep_points(static_cast<unsigned>(state.range(0)), 32);
  for (auto _ : state) {
    sweep::SweepRunner runner;
    benchmark::DoNotOptimize(runner.run(points));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_LoadSweep_RunnerCold)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_LoadSweep_RunnerWarm(benchmark::State& state) {
  const auto points =
      load_sweep_points(static_cast<unsigned>(state.range(0)), 32);
  sweep::SweepOptions options;
  options.cache_capacity = 64;  // hold the whole sweep
  sweep::SweepRunner runner(options);
  benchmark::DoNotOptimize(runner.run(points));  // warm the caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(points));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_LoadSweep_RunnerWarm)->Arg(128)->Unit(benchmark::kMillisecond);

// Dimension sweep with fixed per-tuple rates: 32 sizes up to N = 128,
// serial grid-per-size vs one shared max-N grid answered via solve_at.

std::vector<core::Dims> dim_sweep_sizes() {
  std::vector<core::Dims> sizes;
  for (unsigned n = 4; n <= 128; n += 4) {
    sizes.push_back(core::Dims::square(n));
  }
  return sizes;
}

void BM_DimSweep_Serial(benchmark::State& state) {
  const core::CrossbarModel model(
      core::Dims::square(128),
      {core::TrafficClass::bursty("b", 0.0024, 0.0012)});
  const auto sizes = dim_sweep_sizes();
  for (auto _ : state) {
    for (const auto d : sizes) {
      benchmark::DoNotOptimize(
          core::solve(model.with_dims_same_tuple_rates(d)));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sizes.size()));
}
BENCHMARK(BM_DimSweep_Serial)->Unit(benchmark::kMillisecond);

void BM_DimSweep_GridReuse(benchmark::State& state) {
  const core::CrossbarModel model(
      core::Dims::square(128),
      {core::TrafficClass::bursty("b", 0.0024, 0.0012)});
  const auto sizes = dim_sweep_sizes();
  for (auto _ : state) {
    sweep::SweepRunner runner;  // cold each iteration: one grid build
    benchmark::DoNotOptimize(runner.dimension_sweep(model, sizes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sizes.size()));
}
BENCHMARK(BM_DimSweep_GridReuse)->Unit(benchmark::kMillisecond);

void BM_ExactGradient(benchmark::State& state) {
  const auto model = workload::table2_model(
      static_cast<unsigned>(state.range(0)), workload::table2_sets().front());
  const core::RevenueAnalyzer analyzer(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.d_revenue_d_x_exact(1));
  }
}
BENCHMARK(BM_ExactGradient)->RangeMultiplier(2)->Range(8, 128);

void BM_ForwardDifferenceGradient(benchmark::State& state) {
  const auto model = workload::table2_model(
      static_cast<unsigned>(state.range(0)), workload::table2_sets().front());
  const core::RevenueAnalyzer analyzer(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.d_revenue_d_x_numeric(
        1, core::GradientMethod::kForwardDifference, 1e-4));
  }
}
BENCHMARK(BM_ForwardDifferenceGradient)->RangeMultiplier(2)->Range(8, 128);

}  // namespace
