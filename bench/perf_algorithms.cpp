// Microbenchmarks for §5's complexity claims: both algorithms are
// O(N1 N2 (R1 + R2)).  Doubling N should roughly quadruple the time;
// doubling R should roughly double it.  Also benchmarks the numeric
// backends of Algorithm 1 and the exact-gradient layer.

#include <benchmark/benchmark.h>

#include "core/algorithm1.hpp"
#include "core/algorithm2.hpp"
#include "core/brute_force.hpp"
#include "core/revenue.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace xbar;

core::CrossbarModel model_with_classes(unsigned n, unsigned num_classes) {
  std::vector<core::TrafficClass> classes;
  for (unsigned r = 0; r < num_classes; ++r) {
    if (r % 2 == 0) {
      classes.push_back(core::TrafficClass::poisson(
          "p" + std::to_string(r), 0.01 + 0.002 * r, 1 + r % 2));
    } else {
      classes.push_back(core::TrafficClass::bursty(
          "b" + std::to_string(r), 0.01 + 0.002 * r, 0.005, 1 + r % 2));
    }
  }
  return core::CrossbarModel(core::Dims::square(n), std::move(classes));
}

void BM_Algorithm1_SizeSweep(benchmark::State& state) {
  const auto model =
      model_with_classes(static_cast<unsigned>(state.range(0)), 2);
  for (auto _ : state) {
    core::Algorithm1Solver solver(model);
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm1_SizeSweep)->RangeMultiplier(2)->Range(8, 256)
    ->Complexity(benchmark::oNSquared);

void BM_Algorithm2_SizeSweep(benchmark::State& state) {
  const auto model =
      model_with_classes(static_cast<unsigned>(state.range(0)), 2);
  for (auto _ : state) {
    core::Algorithm2Solver solver(model);
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm2_SizeSweep)->RangeMultiplier(2)->Range(8, 256)
    ->Complexity(benchmark::oNSquared);

void BM_Algorithm1_ClassSweep(benchmark::State& state) {
  const auto model =
      model_with_classes(32, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    core::Algorithm1Solver solver(model);
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm1_ClassSweep)->RangeMultiplier(2)->Range(1, 16)
    ->Complexity(benchmark::oN);

void BM_Algorithm2_ClassSweep(benchmark::State& state) {
  const auto model =
      model_with_classes(32, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    core::Algorithm2Solver solver(model);
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm2_ClassSweep)->RangeMultiplier(2)->Range(1, 16)
    ->Complexity(benchmark::oN);

void BM_Algorithm1_Backend(benchmark::State& state) {
  const auto backend = static_cast<core::Algorithm1Backend>(state.range(0));
  const auto model = model_with_classes(64, 2);
  for (auto _ : state) {
    core::Algorithm1Solver solver(model, {backend});
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_Algorithm1_Backend)
    ->Arg(static_cast<int>(core::Algorithm1Backend::kScaledFloat))
    ->Arg(static_cast<int>(core::Algorithm1Backend::kDoubleDynamicScaling))
    ->Arg(static_cast<int>(core::Algorithm1Backend::kLongDouble))
    ->Arg(static_cast<int>(core::Algorithm1Backend::kDoubleRaw));

void BM_BruteForce_SizeSweep(benchmark::State& state) {
  // Exponential state space: only tiny systems are feasible.
  const auto model =
      model_with_classes(static_cast<unsigned>(state.range(0)), 2);
  for (auto _ : state) {
    core::BruteForceSolver solver(model);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_BruteForce_SizeSweep)->DenseRange(2, 8, 2);

void BM_ExactGradient(benchmark::State& state) {
  const auto model = workload::table2_model(
      static_cast<unsigned>(state.range(0)), workload::table2_sets().front());
  const core::RevenueAnalyzer analyzer(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.d_revenue_d_x_exact(1));
  }
}
BENCHMARK(BM_ExactGradient)->RangeMultiplier(2)->Range(8, 128);

void BM_ForwardDifferenceGradient(benchmark::State& state) {
  const auto model = workload::table2_model(
      static_cast<unsigned>(state.range(0)), workload::table2_sets().front());
  const core::RevenueAnalyzer analyzer(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.d_revenue_d_x_numeric(
        1, core::GradientMethod::kForwardDifference, 1e-4));
  }
}
BENCHMARK(BM_ForwardDifferenceGradient)->RangeMultiplier(2)->Range(8, 128);

}  // namespace
