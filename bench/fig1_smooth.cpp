// Figure 1: blocking probability vs switch size for SMOOTH (Bernoulli)
// arrival traffic, one class (R1 = 0, R2 = 1), a = 1, alpha~ = .0024,
// mu = 1, beta~ in {0, -1e-6, ..., -4e-6}.
//
// Paper claims reproduced here:
//   * the degenerate Poisson case (beta~ = 0) is an upper bound for every
//     smooth series;
//   * at N = 128 the gap between Poisson and beta~ = -4e-6 is small (the
//     paper quotes ~0.1% relative at the 0.5% operating point).
//
// Run with --csv=<path> to also dump machine-readable series.

#include <fstream>
#include <iostream>

#include "report/args.hpp"
#include "report/ascii_chart.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "sweep/sweep.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace xbar;
  const report::Args args(argc, argv);

  const auto sizes = workload::figure_sizes();
  const auto betas = workload::fig1_beta_tildes();

  std::cout << "=== Figure 1: smooth (Bernoulli) arrival traffic ===\n"
            << "alpha~ = " << workload::kFigureAlphaTilde
            << ", mu = 1, a = 1, one class (R1=0, R2=1)\n\n";

  std::vector<std::string> headers = {"N"};
  for (const double b : betas) {
    std::string header = "beta~=";  // two-step append dodges a GCC-12
    header += report::Table::sci(b, 1);  // -Wrestrict false positive at -O3
    headers.push_back(std::move(header));
  }
  report::Table table(headers);
  std::vector<report::Series> series(betas.size());
  for (std::size_t bi = 0; bi < betas.size(); ++bi) {
    series[bi].label = "b";
    series[bi].label += report::Table::sci(betas[bi], 0);
  }

  // The whole (size x beta) grid is one sweep: every point is independent,
  // so the runner fans them out across the shared pool and hands back
  // results in row-major point order regardless of thread count.
  std::vector<sweep::ScenarioPoint> points;
  points.reserve(sizes.size() * betas.size());
  for (const unsigned n : sizes) {
    for (const double b : betas) {
      points.push_back({workload::single_class_model(
                            n, workload::kFigureAlphaTilde, b),
                        std::nullopt});
    }
  }
  sweep::SweepRunner runner;
  const auto results = runner.run(points);

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const unsigned n = sizes[si];
    std::vector<std::string> row = {report::Table::integer(n)};
    for (std::size_t bi = 0; bi < betas.size(); ++bi) {
      const double blocking =
          results[si * betas.size() + bi].per_class[0].blocking;
      row.push_back(report::Table::num(blocking, 6));
      series[bi].x.push_back(n);
      series[bi].y.push_back(blocking);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\n";
  report::ChartOptions chart;
  chart.title = "Figure 1: blocking vs N (smooth traffic)";
  chart.x_label = "N";
  chart.y_label = "blocking probability";
  report::render_chart(std::cout, series, chart);

  // Paper's N = 128 observation.
  const double poisson = series.front().y.back();
  const double smoothest = series.back().y.back();
  std::cout << "\nN=128: Poisson blocking " << poisson
            << ", beta~=-4e-6 blocking " << smoothest << " (relative gap "
            << 100.0 * (poisson - smoothest) / poisson << "%)\n"
            << "Poisson upper-bounds every smooth series: "
            << (smoothest < poisson ? "yes" : "NO (unexpected)") << "\n";

  if (const auto path = args.get("csv")) {
    std::ofstream out(*path);
    report::CsvWriter csv(out);
    csv.row(headers);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::string> row = {std::to_string(sizes[i])};
      for (const auto& s : series) {
        row.push_back(report::Table::num(s.y[i], 12));
      }
      csv.row(row);
    }
    std::cout << "csv written to " << *path << "\n";
  }
  return 0;
}
