// Figure 3: two classes (R1 = 1 Poisson + R2 = 1 bursty) compared with the
// bursty class alone (R1 = 0, R2 = 1), a = 1.
//
// Paper claims reproduced:
//   * the Poisson class "simply shifts the operating point" — the two-class
//     curve sits above the one-class curve by roughly the Poisson load's
//     own contribution;
//   * the *percentage* change in blocking caused by increasing beta~2 is
//     about the same with or without the Poisson class present.

#include <fstream>
#include <iostream>

#include "report/args.hpp"
#include "report/ascii_chart.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "sweep/sweep.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace xbar;
  const report::Args args(argc, argv);

  constexpr double kAlpha1 = 0.0012;  // Poisson class
  constexpr double kAlpha2 = 0.0012;  // bursty class
  const std::vector<double> beta2s = {0.0012, 0.0036};
  const auto sizes = workload::figure_sizes();

  std::cout << "=== Figure 3: R1=1,R2=1 vs R1=0,R2=1 ===\n"
            << "alpha~1 = " << kAlpha1 << " (Poisson), alpha~2 = " << kAlpha2
            << ", beta~2 in {0.0012, 0.0036}, a = 1\n\n";

  report::Table table({"N", "alone b2=.0012", "alone b2=.0036",
                       "with-P b2=.0012", "with-P b2=.0036",
                       "delta alone", "delta with-P"});
  std::vector<report::Series> series(4);
  series[0].label = "alone.0012";
  series[1].label = "alone.0036";
  series[2].label = "withP.0012";
  series[3].label = "withP.0036";

  // Four points per size (two "alone", two "with Poisson"), fanned out as
  // one sweep; blocking of the bursty class is per_class[0] when alone and
  // per_class[1] in the two-class model.
  std::vector<sweep::ScenarioPoint> points;
  points.reserve(sizes.size() * 4);
  for (const unsigned n : sizes) {
    for (const double b2 : beta2s) {
      points.push_back(
          {workload::single_class_model(n, kAlpha2, b2), std::nullopt});
    }
    for (const double b2 : beta2s) {
      points.push_back({workload::two_class_model(n, kAlpha1, kAlpha2, b2),
                        std::nullopt});
    }
  }
  sweep::SweepRunner runner;
  const auto results = runner.run(points);

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const unsigned n = sizes[si];
    const std::vector<double> blocking = {
        results[si * 4 + 0].per_class[0].blocking,
        results[si * 4 + 1].per_class[0].blocking,
        results[si * 4 + 2].per_class[1].blocking,
        results[si * 4 + 3].per_class[1].blocking,
    };
    const double delta_alone = blocking[1] - blocking[0];
    const double delta_with = blocking[3] - blocking[2];
    table.add_row({report::Table::integer(n),
                   report::Table::num(blocking[0], 6),
                   report::Table::num(blocking[1], 6),
                   report::Table::num(blocking[2], 6),
                   report::Table::num(blocking[3], 6),
                   report::Table::sci(delta_alone, 3),
                   report::Table::sci(delta_with, 3)});
    for (std::size_t i = 0; i < 4; ++i) {
      series[i].x.push_back(n);
      series[i].y.push_back(blocking[i]);
    }
  }
  table.print(std::cout);

  std::cout << "\n";
  report::ChartOptions chart;
  chart.title = "Figure 3: blocking vs N, bursty class alone vs with Poisson";
  chart.x_label = "N";
  chart.y_label = "blocking probability";
  report::render_chart(std::cout, series, chart);

  std::cout << "\nObservations (paper §7):\n"
            << "  * the with-Poisson curves sit above the alone curves at "
               "every N: the Poisson class 'simply shifts the operating "
               "point';\n"
            << "  * the two delta columns (absolute blocking increase caused "
               "by raising beta~2 from .0012 to .0036) nearly coincide — the "
               "beta~2 change moves blocking by the same number of "
               "percentage points regardless of the operating point, which "
               "is the paper's 'same percentage change' remark.\n";

  if (const auto path = args.get("csv")) {
    std::ofstream out(*path);
    report::CsvWriter csv(out);
    csv.row({"n", "alone_0012", "alone_0036", "withp_0012", "withp_0036"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      csv.row({std::to_string(sizes[i]),
               report::Table::num(series[0].y[i], 12),
               report::Table::num(series[1].y[i], 12),
               report::Table::num(series[2].y[i], 12),
               report::Table::num(series[3].y[i], 12)});
    }
    std::cout << "csv written to " << *path << "\n";
  }
  return 0;
}
