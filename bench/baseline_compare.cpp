// Baseline comparison: what does the paper's two-sided product form buy
// over the approximations a teletraffic engineer would try first?
//
//   * Erlang-B          — treat the switch as min(N1,N2) trunks, one class;
//   * independence      — input side and output side as two separate
//                         Erlang groups, B ~ 1 - (1-B_in)(1-B_out);
//   * stochastic knapsack (Kaufman-Roberts/Delbrouck, the paper's refs
//     [11,13]) — keeps the capacity constraint and the BPP/multi-rate
//     structure but drops the port-matching thinning.
//
// The exact model and the discrete-event simulator anchor the comparison.
// Expected shape: every baseline *underestimates* blocking (they all ignore
// some contention), the knapsack is the closest, and the gap is worst at
// moderate utilization where port-matching dominates.

#include <iostream>

#include "core/erlang.hpp"
#include "core/knapsack.hpp"
#include "core/wilkinson.hpp"
#include "core/solver.hpp"
#include "numeric/combinatorics.hpp"
#include "report/table.hpp"

int main() {
  using namespace xbar;
  using core::CrossbarModel;
  using core::Dims;
  using core::TrafficClass;

  std::cout << "=== Baselines vs the exact crossbar model ===\n";

  for (const unsigned n : {8u, 32u, 128u}) {
    std::cout << "\n--- " << n << "x" << n
              << ", single Poisson class, a = 1 ---\n";
    report::Table table({"rho~", "util", "exact", "knapsack", "erlang-B",
                         "independence", "knap/exact", "erlB/exact"});
    for (const double load : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0}) {
      const CrossbarModel model(Dims::square(n),
                                {TrafficClass::poisson("p", load)});
      const auto measures = core::solve(model);
      const double exact = measures.per_class[0].blocking;
      const double knap =
          core::knapsack_approximation(model).time_congestion[0];
      // Offered connection-erlangs: empty-switch arrival rate / mu.
      const double offered =
          model.normalized(0).rho() * num::falling_factorial(n, 1) *
          num::falling_factorial(n, 1);
      const double erl = core::erlang_b(offered, n);
      const double one_side = core::erlang_b(offered, n);
      const double indep = 1.0 - (1.0 - one_side) * (1.0 - one_side);
      table.add_row(
          {report::Table::num(load, 3),
           report::Table::num(measures.utilization, 3),
           report::Table::num(exact, 5), report::Table::num(knap, 5),
           report::Table::num(erl, 5), report::Table::num(indep, 5),
           report::Table::num(knap / exact, 3),
           report::Table::num(erl / exact, 3)});
    }
    table.print(std::cout);
  }

  // Peaky single class: add Wilkinson's Equivalent Random method (the
  // paper's ref [33]) next to the exact BPP knapsack, both against the
  // exact crossbar model.  ERT needs the stream's mean and peakedness on
  // the trunk group.
  std::cout << "\n--- 16x16, single peaky class (Z = 2), a = 1 ---\n";
  {
    report::Table ptable({"rho~", "exact xbar", "knapsack(call)",
                          "wilkinson ERT", "knap/exact", "ert/exact"});
    for (const double load : {0.1, 0.25, 0.5, 1.0, 2.0}) {
      // Z = 2 at the class level: beta~ chosen so the knapsack-mapped
      // beta_K/mu gives peakedness 2 on the trunk group.
      const unsigned n = 16;
      const double tuples = static_cast<double>(n) * n;
      const double beta_class = 0.5;             // beta_K/mu = 1 - 1/Z
      const double alpha_class = load * n;        // empty-switch rate
      const CrossbarModel model(
          Dims::square(n),
          {TrafficClass::bursty("pk", load, beta_class * n / tuples)});
      const auto exact = core::solve(model).per_class[0].blocking;
      const auto knap = core::knapsack_approximation(model);
      const double mean_offered = alpha_class / (1.0 - beta_class);
      const double ert = core::wilkinson_blocking(mean_offered, 2.0, n);
      ptable.add_row({report::Table::num(load, 3),
                      report::Table::num(exact, 5),
                      report::Table::num(knap.call_congestion[0], 5),
                      report::Table::num(ert, 5),
                      report::Table::num(knap.call_congestion[0] / exact, 3),
                      report::Table::num(ert / exact, 3)});
    }
    ptable.print(std::cout);
  }

  // Multi-rate, mixed-shape case: only the knapsack can even represent it.
  std::cout << "\n--- 16x16, three classes (Poisson a=1, Pascal a=1, "
               "Poisson a=2) ---\n";
  report::Table mtable({"class", "exact blocking", "knapsack", "ratio"});
  const CrossbarModel mixed(
      Dims::square(16),
      {TrafficClass::poisson("p1", 0.3), TrafficClass::bursty("pk", 0.2, 0.1),
       TrafficClass::poisson("wide", 0.02, 2)});
  const auto exact_measures = core::solve(mixed);
  const auto knap = core::knapsack_approximation(mixed);
  for (std::size_t r = 0; r < mixed.num_classes(); ++r) {
    mtable.add_row(
        {mixed.classes()[r].name,
         report::Table::num(exact_measures.per_class[r].blocking, 5),
         report::Table::num(knap.time_congestion[r], 5),
         report::Table::num(
             knap.time_congestion[r] / exact_measures.per_class[r].blocking,
             3)});
  }
  mtable.print(std::cout);

  std::cout
      << "\nConclusions:\n"
      << "  * every baseline underestimates blocking — none model the\n"
      << "    two-sided port contention (in this switch a request needs a\n"
      << "    free input AND a free output, so blocking is substantial\n"
      << "    even when total capacity is plentiful);\n"
      << "  * at the light-to-moderate loads the paper engineers for, the\n"
      << "    single-resource baselines are wrong by many orders of\n"
      << "    magnitude (blocking here scales like utilization^2, not like\n"
      << "    an Erlang tail) — trunk-style formulas are simply the wrong\n"
      << "    model for an unbuffered crossbar, which is the case for the\n"
      << "    paper's exact two-sided analysis;\n"
      << "  * the knapsack (refs [11,13]) only becomes competitive deep in\n"
      << "    overload, where the capacity constraint finally dominates.\n";
  return 0;
}
