// Rectangular switches: the paper develops the model for general N1 x N2
// but evaluates only squares.  This bench puts the generality to work:
// split a fixed budget of N1 + N2 = 64 ports across the two sides and ask
// which split carries the most traffic at equal per-tuple load, and how
// blocking behaves when one side is scarce.
//
// Expected shape: blocking is governed by min(N1, N2) (the feasibility
// cap), so the square is optimal for symmetric traffic; the penalty for
// asymmetry is steep because every circuit needs a port on BOTH sides.

#include <iostream>

#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "sweep/sweep.hpp"

int main() {
  using namespace xbar;
  using core::CrossbarModel;
  using core::Dims;
  using core::TrafficClass;

  constexpr unsigned kBudget = 64;  // N1 + N2
  // Hold the per-tuple arrival rate fixed so only geometry varies:
  // alpha~ = alpha_tuple * C(N2, 1).
  constexpr double kAlphaTuple = 0.002;

  std::cout << "=== Port-budget split: N1 + N2 = " << kBudget
            << ", per-tuple load fixed at " << kAlphaTuple << " ===\n\n";

  report::Table table({"N1", "N2", "cap", "blocking", "carried",
                       "utilization"});
  report::Series carried_series{"carried", {}, {}};
  report::Series blocking_series{"blocking", {}, {}};
  // All splits of the port budget evaluated as one sweep.
  std::vector<unsigned> splits;
  std::vector<sweep::ScenarioPoint> points;
  for (unsigned n1 = 4; n1 <= kBudget - 4; n1 += 4) {
    const unsigned n2 = kBudget - n1;
    splits.push_back(n1);
    points.push_back({CrossbarModel(Dims{n1, n2},
                                    {TrafficClass::bursty(
                                        "t", kAlphaTuple * n2, 0.0)}),
                      std::nullopt});
  }
  sweep::SweepRunner runner;
  const auto results = runner.run(points);

  for (std::size_t i = 0; i < splits.size(); ++i) {
    const unsigned n1 = splits[i];
    const unsigned n2 = kBudget - n1;
    const auto& measures = results[i];
    table.add_row({report::Table::integer(n1), report::Table::integer(n2),
                   report::Table::integer(std::min(n1, n2)),
                   report::Table::num(measures.per_class[0].blocking, 5),
                   report::Table::num(measures.per_class[0].concurrency, 5),
                   report::Table::num(measures.utilization, 4)});
    carried_series.x.push_back(n1);
    carried_series.y.push_back(measures.per_class[0].concurrency);
    blocking_series.x.push_back(n1);
    blocking_series.y.push_back(measures.per_class[0].blocking);
  }
  table.print(std::cout);

  std::cout << "\n";
  report::ChartOptions chart;
  chart.title = "carried circuits vs split (N1 on the x axis)";
  chart.x_label = "N1 (N2 = 64 - N1)";
  chart.y_label = "carried circuits";
  chart.height = 12;
  report::render_chart(std::cout, {carried_series}, chart);

  std::cout
      << "\nReading guide:\n"
      << "  * carried traffic peaks at the square split (cap = min(N1,N2)\n"
      << "    is maximized) and falls off steeply toward either extreme;\n"
      << "  * the B_r formula makes the mechanism explicit: blocking is\n"
      << "    1 - Q(N - I)/(P(N1,1) P(N2,1) Q(N)), and the scarce side's\n"
      << "    factorial dominates the ratio.\n";
  return 0;
}
