// Figure 4: multi-rate traffic.  Two Poisson classes analyzed separately:
// rho~1 with a = 1 and rho~2 with a = 2, at constant total load
// tau = .0048 (Table 1 inputs), N in {4, 8, 16, 32, 64}.
//
// Paper claim reproduced: the a = 2 class sees significantly higher
// blocking than the a = 1 class at the same overall crossbar load, because
// each arrival must find two free inputs AND two free outputs.

#include <fstream>
#include <iostream>

#include "core/solver.hpp"
#include "report/args.hpp"
#include "report/ascii_chart.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace xbar;
  const report::Args args(argc, argv);

  const auto sizes = workload::fig4_sizes();

  std::cout << "=== Figure 4: bandwidth a=1 vs a=2 at constant total load "
               "tau = "
            << workload::kFig4TotalLoad << " ===\n\n";

  report::Table table(
      {"N", "rho~ (a=1)", "rho~ (a=2)", "blocking a=1", "blocking a=2",
       "ratio"});
  std::vector<report::Series> series(2);
  series[0].label = "a=1";
  series[1].label = "a=2";

  for (const unsigned n : sizes) {
    const auto m1 = workload::fig4_model(n, 1);
    const auto m2 = workload::fig4_model(n, 2);
    const double b1 = core::blocking_probability(m1, 0);
    const double b2 = core::blocking_probability(m2, 0);
    table.add_row({report::Table::integer(n),
                   report::Table::num(workload::fig4_rho_tilde(n, 1), 4),
                   report::Table::num(workload::fig4_rho_tilde(n, 2), 4),
                   report::Table::num(b1, 6), report::Table::num(b2, 6),
                   report::Table::num(b2 / b1, 4)});
    series[0].x.push_back(n);
    series[0].y.push_back(b1);
    series[1].x.push_back(n);
    series[1].y.push_back(b2);
  }
  table.print(std::cout);

  std::cout << "\n";
  report::ChartOptions chart;
  chart.title = "Figure 4: blocking vs N for a=1 and a=2";
  chart.x_label = "N";
  chart.y_label = "blocking probability";
  chart.scale = report::Scale::kLog10;
  report::render_chart(std::cout, series, chart);

  bool wide_dominates = true;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    wide_dominates = wide_dominates && series[1].y[i] > series[0].y[i];
  }
  std::cout << "\nWide (a=2) class blocks more at every size: "
            << (wide_dominates ? "yes" : "NO (unexpected)") << "\n";

  if (const auto path = args.get("csv")) {
    std::ofstream out(*path);
    report::CsvWriter csv(out);
    csv.row({"n", "blocking_a1", "blocking_a2"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      csv.row({std::to_string(sizes[i]),
               report::Table::num(series[0].y[i], 12),
               report::Table::num(series[1].y[i], 12)});
    }
    std::cout << "csv written to " << *path << "\n";
  }
  return 0;
}
