// Table 2: revenue-oriented performance analysis.  Two classes (Poisson
// type 1 with w1 = 1, bursty type 2 with w2 = 1e-4), three parameter sets,
// N from 1 to 256.  Columns mirror the paper:
//
//   dW/drho_1           — closed form (exact; the paper prints the same)
//   dW/d(beta_2/mu_2)   — BOTH the paper's forward difference and this
//                         library's exact series, so the noise floor of the
//                         1992 numbers is visible side by side
//   B_r(N)              — blocking probability (1 - B_r in eq. 4 terms)
//   W(N)                — revenue / weighted throughput

#include <iostream>

#include "core/revenue.hpp"
#include "report/table.hpp"
#include "sweep/sweep.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace xbar;

  std::cout << "=== Table 2: revenue analysis (w1 = 1.0, w2 = 1e-4) ===\n";

  // Each (parameter set, N) row is an independent unit of work — gradients
  // plus measures — so the whole table fans out through the sweep engine's
  // generic map.  The per-slot cache serves the measures solve.
  struct Row {
    double d_rho = 0.0;
    std::string d_x_exact;
    std::string d_x_fwd;
    double blocking = 0.0;
    double revenue = 0.0;
  };
  const auto sets = workload::table2_sets();
  const auto sizes = workload::table2_sizes();
  sweep::SweepRunner runner;
  const auto rows = runner.map<Row>(
      sets.size() * sizes.size(),
      [&](std::size_t i, sweep::SolverCache& cache) {
        const auto& set = sets[i / sizes.size()];
        const unsigned n = sizes[i % sizes.size()];
        const auto model = workload::table2_model(n, set);
        const core::RevenueAnalyzer analyzer(model);
        const auto measures = cache.eval(model);
        Row row;
        row.d_rho = analyzer.d_revenue_d_rho_exact(0);
        row.d_x_exact = "-";
        row.d_x_fwd = "-";
        if (n >= 2) {
          row.d_x_exact =
              report::Table::sci(analyzer.d_revenue_d_x_exact(1), 5);
          row.d_x_fwd = report::Table::sci(
              analyzer.d_revenue_d_x_numeric(
                  1, core::GradientMethod::kForwardDifference, 1e-4),
              5);
        }
        row.blocking = measures.per_class[0].blocking;
        row.revenue = measures.revenue;
        return row;
      });

  for (std::size_t si = 0; si < sets.size(); ++si) {
    std::cout << "\n--- " << sets[si].label << " ---\n";
    report::Table table({"N", "dW/drho1", "dW/dx2 (exact)", "dW/dx2 (fwd)",
                         "blocking", "W(N)"});
    for (std::size_t ni = 0; ni < sizes.size(); ++ni) {
      const Row& row = rows[si * sizes.size() + ni];
      table.add_row({report::Table::integer(sizes[ni]),
                     report::Table::num(row.d_rho, 6), row.d_x_exact,
                     row.d_x_fwd, report::Table::num(row.blocking, 6),
                     report::Table::num(row.revenue, 6)});
    }
    table.print(std::cout);
  }

  std::cout
      << "\nReading guide (paper §4/§7):\n"
      << "  * dW/drho1 > 0 everywhere: type-1 connections are worth more\n"
      << "    (w1 = 1) than the shadow cost they impose.\n"
      << "  * dW/dx2 < 0 from N = 4 on: more burstiness in the low-value\n"
      << "    type-2 stream displaces type-1 revenue.\n"
      << "  * Comparing sets 1 and 3: raising rho~2 costs more revenue than\n"
      << "    raising beta~2 proportionally (the paper's closing remark).\n";
  return 0;
}
