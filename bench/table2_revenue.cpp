// Table 2: revenue-oriented performance analysis.  Two classes (Poisson
// type 1 with w1 = 1, bursty type 2 with w2 = 1e-4), three parameter sets,
// N from 1 to 256.  Columns mirror the paper:
//
//   dW/drho_1           — closed form (exact; the paper prints the same)
//   dW/d(beta_2/mu_2)   — BOTH the paper's forward difference and this
//                         library's exact series, so the noise floor of the
//                         1992 numbers is visible side by side
//   B_r(N)              — blocking probability (1 - B_r in eq. 4 terms)
//   W(N)                — revenue / weighted throughput

#include <iostream>

#include "core/algorithm1.hpp"
#include "core/revenue.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace xbar;

  std::cout << "=== Table 2: revenue analysis (w1 = 1.0, w2 = 1e-4) ===\n";

  for (const auto& set : workload::table2_sets()) {
    std::cout << "\n--- " << set.label << " ---\n";
    report::Table table({"N", "dW/drho1", "dW/dx2 (exact)", "dW/dx2 (fwd)",
                         "blocking", "W(N)"});
    for (const unsigned n : workload::table2_sizes()) {
      const auto model = workload::table2_model(n, set);
      const core::RevenueAnalyzer analyzer(model);
      const auto measures = core::Algorithm1Solver(model).solve();
      const double d_rho = analyzer.d_revenue_d_rho_exact(0);
      std::string d_x_exact = "-";
      std::string d_x_fwd = "-";
      if (n >= 2) {
        d_x_exact = report::Table::sci(analyzer.d_revenue_d_x_exact(1), 5);
        d_x_fwd = report::Table::sci(
            analyzer.d_revenue_d_x_numeric(
                1, core::GradientMethod::kForwardDifference, 1e-4),
            5);
      }
      table.add_row({report::Table::integer(n), report::Table::num(d_rho, 6),
                     d_x_exact, d_x_fwd,
                     report::Table::num(measures.per_class[0].blocking, 6),
                     report::Table::num(measures.revenue, 6)});
    }
    table.print(std::cout);
  }

  std::cout
      << "\nReading guide (paper §4/§7):\n"
      << "  * dW/drho1 > 0 everywhere: type-1 connections are worth more\n"
      << "    (w1 = 1) than the shadow cost they impose.\n"
      << "  * dW/dx2 < 0 from N = 4 on: more burstiness in the low-value\n"
      << "    type-2 stream displaces type-1 revenue.\n"
      << "  * Comparing sets 1 and 3: raising rho~2 costs more revenue than\n"
      << "    raising beta~2 proportionally (the paper's closing remark).\n";
  return 0;
}
