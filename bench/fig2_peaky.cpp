// Figure 2: blocking probability vs switch size for PEAKY (Pascal) arrival
// traffic, one class (R1 = 0, R2 = 1), a = 1, alpha~ = .0024, mu = 1.
//
// Paper claim reproduced: "peaky arrival traffic has a dramatic impact on
// blocking probability" — the Pascal series rise far above the Poisson
// (beta~ = 0) baseline, and the effect grows with N.
//
// The paper prints the series' beta~ values only qualitatively; we use
// beta~ in {0, alpha/8, alpha/4, alpha/2, alpha}, the magnitude range Table
// 2 exercises (beta~2 = .0012-.0036 against alpha~ = .0024).

#include <fstream>
#include <iostream>

#include "dist/bpp.hpp"
#include "sweep/sweep.hpp"
#include "report/args.hpp"
#include "report/ascii_chart.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace xbar;
  const report::Args args(argc, argv);

  const auto sizes = workload::figure_sizes();
  const auto betas = workload::fig2_beta_tildes();

  std::cout << "=== Figure 2: peaky (Pascal) arrival traffic ===\n"
            << "alpha~ = " << workload::kFigureAlphaTilde
            << ", mu = 1, a = 1, one class (R1=0, R2=1)\n\n";

  std::vector<std::string> headers = {"N"};
  for (const double b : betas) {
    headers.push_back("beta~=" + report::Table::num(b, 3));
  }
  report::Table table(headers);
  std::vector<report::Series> series(betas.size());
  for (std::size_t bi = 0; bi < betas.size(); ++bi) {
    series[bi].label = "b=" + report::Table::num(betas[bi], 2);
  }

  // One sweep over the full (size x beta) grid through the shared pool;
  // result order matches point order for any thread count.
  std::vector<sweep::ScenarioPoint> points;
  points.reserve(sizes.size() * betas.size());
  for (const unsigned n : sizes) {
    for (const double b : betas) {
      points.push_back({workload::single_class_model(
                            n, workload::kFigureAlphaTilde, b),
                        std::nullopt});
    }
  }
  sweep::SweepRunner runner;
  const auto results = runner.run(points);

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const unsigned n = sizes[si];
    std::vector<std::string> row = {report::Table::integer(n)};
    for (std::size_t bi = 0; bi < betas.size(); ++bi) {
      const double blocking =
          results[si * betas.size() + bi].per_class[0].blocking;
      row.push_back(report::Table::num(blocking, 6));
      series[bi].x.push_back(n);
      series[bi].y.push_back(blocking);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\n";
  report::ChartOptions chart;
  chart.title = "Figure 2: blocking vs N (peaky traffic)";
  chart.x_label = "N";
  chart.y_label = "blocking probability";
  chart.scale = report::Scale::kLog10;
  report::render_chart(std::cout, series, chart);

  // Quantify "dramatic impact" at N = 128 and report the per-tuple
  // peakedness (Z factor) of the heaviest series.
  const double poisson = series.front().y.back();
  const double peakiest = series.back().y.back();
  const unsigned n_max = sizes.back();
  const dist::BppParams per_tuple{workload::kFigureAlphaTilde / n_max,
                                  betas.back() / n_max, 1.0};
  std::cout << "\nN=" << n_max << ": Poisson blocking " << poisson
            << " vs peakiest " << peakiest << " (x"
            << peakiest / poisson << ", Z-factor "
            << per_tuple.peakedness() << ")\n"
            << "Peaky series dominates Poisson at every N: "
            << (peakiest > poisson ? "yes" : "NO (unexpected)") << "\n";

  if (const auto path = args.get("csv")) {
    std::ofstream out(*path);
    report::CsvWriter csv(out);
    csv.row(headers);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::string> row = {std::to_string(sizes[i])};
      for (const auto& s : series) {
        row.push_back(report::Table::num(s.y[i], 12));
      }
      csv.row(row);
    }
    std::cout << "csv written to " << *path << "\n";
  }
  return 0;
}
