// Table 1: the input loads used by Figure 4 — rho~_1 (a = 1) and rho~_2
// (a = 2) at constant total load tau = .0048 — printed next to the paper's
// values.
//
// Erratum reproduced intentionally: the paper's §7 text says
// rho~_r = tau / C(N1, a_r), but the printed table matches
// rho~_r = tau * a_r / (2 C(N1, a_r)); we regenerate the printed values
// (see DESIGN.md).

#include <cmath>
#include <iostream>

#include "report/table.hpp"
#include "sweep/sweep.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace xbar;

  struct PaperRow {
    unsigned n;
    double rho1;
    double rho2;
  };
  const PaperRow paper[] = {{4, 0.000600, 0.000800},
                            {8, 0.000300, 0.000171},
                            {16, 0.000150, 0.0000400},
                            {32, 0.0000750, 0.00000967},
                            {64, 0.0000375, 0.00000238}};

  std::cout << "=== Table 1: input loads for the multi-rate comparison ===\n"
            << "tau = " << workload::kFig4TotalLoad
            << ", rho~_r = tau a_r / (2 C(N, a_r))\n\n";

  report::Table table({"N1", "rho~1 (ours)", "rho~1 (paper)", "rho~2 (ours)",
                       "rho~2 (paper)", "max rel err"});
  // No solving here, but the rows are independent — route them through the
  // sweep engine's generic map like every other driver.
  struct Row {
    double r1 = 0.0;
    double r2 = 0.0;
    double err = 0.0;
  };
  sweep::SweepRunner runner;
  const auto rows = runner.map<Row>(
      std::size(paper), [&](std::size_t i, sweep::SolverCache&) {
        const PaperRow& p = paper[i];
        Row row;
        row.r1 = workload::fig4_rho_tilde(p.n, 1);
        row.r2 = workload::fig4_rho_tilde(p.n, 2);
        row.err = std::max(std::fabs(row.r1 - p.rho1) / p.rho1,
                           std::fabs(row.r2 - p.rho2) / p.rho2);
        return row;
      });
  double worst = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    worst = std::max(worst, rows[i].err);
    table.add_row({report::Table::integer(paper[i].n),
                   report::Table::num(rows[i].r1, 4),
                   report::Table::num(paper[i].rho1, 4),
                   report::Table::num(rows[i].r2, 4),
                   report::Table::num(paper[i].rho2, 4),
                   report::Table::sci(rows[i].err, 2)});
  }
  table.print(std::cout);
  std::cout << "\nWorst relative deviation from the paper's printed values: "
            << report::Table::sci(worst, 3)
            << " (all within the paper's 3-significant-digit rounding)\n";
  return 0;
}
