// Crossbar vs banyan (omega) multistage network under identical offered
// circuit traffic — the trade-off the paper's introduction frames: the
// crossbar spends O(N^2) crosspoints to be internally non-blocking, the
// multistage network spends O(N log N) but adds internal link blocking.
//
// For each load level the same BPP traffic runs through both fabrics; the
// banyan's extra blocking is split into port conflicts (shared with the
// crossbar) and internal link conflicts (its own).  The analytic crossbar
// blocking is printed as the reference the crossbar simulation must track.

#include <iostream>

#include "core/solver.hpp"
#include "fabric/banyan.hpp"
#include "fabric/lee_model.hpp"
#include "fabric/crossbar.hpp"
#include "report/table.hpp"
#include "sim/replication.hpp"

int main() {
  using namespace xbar;
  using core::CrossbarModel;
  using core::Dims;
  using core::TrafficClass;

  constexpr unsigned kN = 16;
  const std::vector<double> loads = {0.5, 1.0, 2.0, 4.0, 8.0};

  sim::ReplicationConfig cfg;
  cfg.replications = 4;
  cfg.sim.warmup_time = 300.0;
  cfg.sim.measurement_time = 4000.0;
  cfg.sim.num_batches = 16;
  cfg.sim.seed = 77;

  std::cout << "=== Crossbar vs banyan (" << kN << "x" << kN << ", "
            << "omega network with " << fabric::BanyanFabric(kN).num_stages()
            << " stages) ===\n"
            << "crosspoint budget: crossbar " << kN * kN << " vs banyan "
            << 4 * (kN / 2) * fabric::BanyanFabric(kN).num_stages()
            << " (2x2 elements x4)\n\n";

  report::Table table({"rho~", "analytic xbar", "sim xbar (CI)",
                       "sim banyan (CI)", "Lee banyan", "banyan/xbar",
                       "internal share"});
  for (const double load : loads) {
    const CrossbarModel model(Dims::square(kN),
                              {TrafficClass::poisson("p", load)});
    const double analytic = core::solve(model).per_class[0].blocking;

    const auto xbar_run = sim::run_crossbar_replications(model, cfg);

    // For the banyan we also want the rejection split, so run one instance
    // outside the replication helper to read its counters.
    std::uint64_t internal = 0;
    std::uint64_t port = 0;
    const auto banyan_run = sim::run_replications(
        model,
        [&](std::size_t) {
          auto f = std::make_unique<fabric::BanyanFabric>(kN);
          return f;
        },
        cfg);
    {
      fabric::BanyanFabric probe(kN);
      auto probe_cfg = cfg.sim;
      probe_cfg.seed = 123456;
      sim::Simulator probe_sim(model, probe, probe_cfg);
      (void)probe_sim.run();
      internal = probe.rejected_internal();
      port = probe.rejected_port();
    }

    const double bx = xbar_run.per_class[0].call_congestion.mean;
    const double bb = banyan_run.per_class[0].call_congestion.mean;
    const double internal_share =
        internal + port > 0
            ? static_cast<double>(internal) / static_cast<double>(internal + port)
            : 0.0;
    const double lee = fabric::lee_banyan(kN, load).blocking;
    table.add_row(
        {report::Table::num(load, 3), report::Table::num(analytic, 5),
         report::Table::num(bx, 5) + " +- " +
             report::Table::num(xbar_run.per_class[0].call_congestion.half_width, 2),
         report::Table::num(bb, 5) + " +- " +
             report::Table::num(banyan_run.per_class[0].call_congestion.half_width, 2),
         report::Table::num(lee, 5),
         report::Table::num(bb / (bx > 0 ? bx : 1e-12), 3),
         report::Table::num(100.0 * internal_share, 3) + "%"});
  }
  table.print(std::cout);

  std::cout
      << "\nReading guide:\n"
      << "  * sim xbar tracks the analytic column (the model is exact for\n"
      << "    the crossbar);\n"
      << "  * the banyan blocks strictly more at every load; the last\n"
      << "    column shows what fraction of its rejections are *internal*\n"
      << "    link conflicts — blocking the crossbar architecture simply\n"
      << "    does not have, which is the paper's case for optical\n"
      << "    crossbars over MINs;\n"
      << "  * the 'Lee banyan' column is the link-independence fixed point\n"
      << "    (src/fabric/lee_model) — the paper's future-work multistage\n"
      << "    analysis, accurate to tens of percent against simulation.\n";
  return 0;
}
