// Simulator throughput benchmarks: events per second across switch sizes,
// class counts and fabrics, plus fabric primitive costs.

#include <benchmark/benchmark.h>

#include "core/model.hpp"
#include "dist/rng.hpp"
#include "fabric/banyan.hpp"
#include "fabric/crossbar.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace xbar;

core::CrossbarModel sim_model(unsigned n, unsigned classes) {
  std::vector<core::TrafficClass> cls;
  for (unsigned r = 0; r < classes; ++r) {
    cls.push_back(core::TrafficClass::bursty(
        "c" + std::to_string(r), 0.2 + 0.1 * r, 0.05, 1));
  }
  return core::CrossbarModel(core::Dims::square(n), std::move(cls));
}

void BM_Simulator_Crossbar(benchmark::State& state) {
  const auto model = sim_model(static_cast<unsigned>(state.range(0)), 2);
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fabric::CrossbarFabric fabric(model.dims().n1, model.dims().n2);
    sim::SimulationConfig cfg;
    cfg.warmup_time = 10.0;
    cfg.measurement_time = 500.0;
    cfg.num_batches = 5;
    cfg.seed = seed++;
    sim::Simulator simulator(model, fabric, cfg);
    const auto result = simulator.run();
    events += result.events;
    benchmark::DoNotOptimize(result);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Simulator_Crossbar)->RangeMultiplier(2)->Range(4, 64)
    ->Unit(benchmark::kMillisecond);

void BM_Simulator_Banyan(benchmark::State& state) {
  const auto model = sim_model(static_cast<unsigned>(state.range(0)), 2);
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fabric::BanyanFabric fabric(model.dims().n1);
    sim::SimulationConfig cfg;
    cfg.warmup_time = 10.0;
    cfg.measurement_time = 500.0;
    cfg.num_batches = 5;
    cfg.seed = seed++;
    sim::Simulator simulator(model, fabric, cfg);
    const auto result = simulator.run();
    events += result.events;
    benchmark::DoNotOptimize(result);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Simulator_Banyan)->RangeMultiplier(2)->Range(4, 64)
    ->Unit(benchmark::kMillisecond);

void BM_CrossbarFabric_ConnectRelease(benchmark::State& state) {
  fabric::CrossbarFabric fabric(64, 64);
  dist::Xoshiro256 rng(5);
  const std::vector<unsigned> in = {1, 17};
  const std::vector<unsigned> out = {3, 42};
  for (auto _ : state) {
    const auto id = fabric.try_connect(in, out);
    benchmark::DoNotOptimize(id);
    if (id) {
      fabric.release(*id);
    }
  }
}
BENCHMARK(BM_CrossbarFabric_ConnectRelease);

void BM_BanyanFabric_ConnectRelease(benchmark::State& state) {
  fabric::BanyanFabric fabric(64);
  const std::vector<unsigned> in = {1, 17};
  const std::vector<unsigned> out = {3, 42};
  for (auto _ : state) {
    const auto id = fabric.try_connect(in, out);
    benchmark::DoNotOptimize(id);
    if (id) {
      fabric.release(*id);
    }
  }
}
BENCHMARK(BM_BanyanFabric_ConnectRelease);

void BM_Rng_Exponential(benchmark::State& state) {
  dist::Xoshiro256 rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(1.0));
  }
}
BENCHMARK(BM_Rng_Exponential);

}  // namespace
