// Ablation for §6 (dynamic scaling): what actually happens to Algorithm 1
// as the switch grows, per numeric backend.
//
//   kDoubleRaw            — plain IEEE double, no protection;
//   kDoubleDynamicScaling — the paper's omega rescaling;
//   kLongDouble           — 80-bit extended precision;
//   kScaledFloat          — per-value binary exponent (this library's
//                           default).
//
// For each size: does the backend survive (produce finite Q everywhere), how
// many scaling events fired, and the blocking it reports vs the ScaledFloat
// reference.  The table shows three regimes: raw double dies first (~N=90 at
// this load), dynamic scaling extends the range to ~N=150 but cannot fit a
// single row's ~500-decade span at N=256, and ScaledFloat never degrades.

#include <cmath>
#include <iostream>

#include "core/algorithm1.hpp"
#include "report/table.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace xbar;
  using core::Algorithm1Backend;
  using core::Algorithm1Solver;

  const std::vector<unsigned> sizes = {16, 32, 64, 96, 128, 160, 192, 256};

  std::cout << "=== Ablation: Algorithm 1 numeric backends (paper §6) ===\n"
            << "workload: Table 2 set 1 (rho~1 = rho~2 = beta~2 = .0012)\n\n";

  report::Table table({"N", "raw double", "dynamic scaling", "events",
                       "long double", "ScaledFloat", "max |rel err|"});
  for (const unsigned n : sizes) {
    const auto model = workload::table2_model(
        n, workload::table2_sets().front());
    const Algorithm1Solver reference(model,
                                     {Algorithm1Backend::kScaledFloat});
    const double ref_blocking = reference.solve().per_class[0].blocking;

    const auto describe = [&](Algorithm1Backend backend, unsigned* events,
                              double* err) {
      const Algorithm1Solver solver(model, {backend});
      if (events != nullptr) {
        *events = solver.scaling_events();
      }
      if (solver.degenerate()) {
        return std::string("under/overflow");
      }
      const double b = solver.solve().per_class[0].blocking;
      if (err != nullptr) {
        *err = std::max(*err,
                        std::fabs(b - ref_blocking) / ref_blocking);
      }
      return report::Table::num(b, 6);
    };

    unsigned events = 0;
    double err = 0.0;
    const std::string raw = describe(Algorithm1Backend::kDoubleRaw, nullptr,
                                     &err);
    const std::string dyn = describe(Algorithm1Backend::kDoubleDynamicScaling,
                                     &events, &err);
    const std::string ld = describe(Algorithm1Backend::kLongDouble, nullptr,
                                    &err);
    table.add_row({report::Table::integer(n), raw, dyn,
                   report::Table::integer(events), ld,
                   report::Table::num(ref_blocking, 6),
                   report::Table::sci(err, 2)});
  }
  table.print(std::cout);

  std::cout << "\nConclusions:\n"
            << "  * wherever two backends both survive they agree to ~1e-12\n"
            << "    relative — the paper's claim that scaling 'does not\n"
            << "    affect the performance measure results';\n"
            << "  * the §6 scheme extends plain double meaningfully but has\n"
            << "    its own ceiling; per-value scaling (or Algorithm 2's\n"
            << "    ratio recursion) is required for the paper's N = 256.\n";
  return 0;
}
