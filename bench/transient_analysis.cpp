// Transient behaviour — beyond the paper's steady-state scope.
//
// The product form says nothing about *how fast* the switch reaches the
// operating point its figures describe.  Using the explicit CTMC and
// uniformization (src/core/markov), this bench tracks the time-dependent
// blocking probe B_r(t) after (a) a cold start (empty switch) and (b) a
// surge (switch handed over fully loaded), for smooth/regular/peaky
// traffic at equal mean load.
//
// Expected shape: all traces relax exponentially to the paper's stationary
// value with time constants of a few mean holding times; peaky traffic
// relaxes slower (its state-dependent arrivals fight the drain).

#include <iostream>

#include "core/markov.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"

int main() {
  using namespace xbar;
  using core::CrossbarModel;
  using core::Dims;
  using core::MarkovChain;
  using core::TrafficClass;

  struct Shape {
    std::string label;
    CrossbarModel model;
  };
  // Equal infinite-server mean load (4 erlangs on an 8x8), three shapes.
  const std::vector<Shape> shapes = {
      {"smooth", CrossbarModel(Dims::square(8),
                               {TrafficClass::bursty("sm", 6.0, -0.5)})},
      {"regular", CrossbarModel(Dims::square(8),
                                {TrafficClass::poisson("p", 4.0)})},
      {"peaky", CrossbarModel(Dims::square(8),
                              {TrafficClass::bursty("pk", 2.0, 0.5)})},
  };
  const std::vector<double> times = {0.0, 0.1, 0.25, 0.5, 1.0,
                                     1.5,  2.0, 3.0, 5.0, 8.0};

  std::cout << "=== Transient blocking B_r(t), 8x8 switch, mu = 1 ===\n\n";

  for (const bool surge : {false, true}) {
    std::cout << (surge ? "--- surge start (fully loaded switch) ---\n"
                        : "--- cold start (empty switch) ---\n");
    std::vector<std::string> headers = {"t"};
    for (const auto& s : shapes) {
      headers.push_back(s.label);
    }
    headers.push_back("(stationary)");
    report::Table table(headers);
    std::vector<report::Series> series(shapes.size());

    std::vector<MarkovChain> chains;
    chains.reserve(shapes.size());
    for (const auto& s : shapes) {
      chains.emplace_back(s.model);
    }
    std::vector<double> stationary_blocking(shapes.size());
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      const auto pi = chains[i].stationary();
      stationary_blocking[i] = 1.0 - chains[i].non_blocking_under(pi, 0);
      series[i].label = shapes[i].label;
    }

    for (const double t : times) {
      std::vector<std::string> row = {report::Table::num(t, 3)};
      for (std::size_t i = 0; i < shapes.size(); ++i) {
        const auto start = surge ? chains[i].saturated_state()
                                 : chains[i].empty_state();
        const auto p = chains[i].transient(t, start);
        const double blocking = 1.0 - chains[i].non_blocking_under(p, 0);
        row.push_back(report::Table::num(blocking, 5));
        series[i].x.push_back(t);
        series[i].y.push_back(blocking);
      }
      std::string st = "";
      for (std::size_t i = 0; i < shapes.size(); ++i) {
        st += (i ? " / " : "") + report::Table::num(stationary_blocking[i], 3);
      }
      row.push_back(st);
      table.add_row(std::move(row));
    }
    table.print(std::cout);

    report::ChartOptions chart;
    chart.title = surge ? "blocking relaxation after surge"
                        : "blocking build-up from cold start";
    chart.x_label = "t (mean holding times)";
    chart.y_label = "blocking";
    chart.height = 12;
    report::render_chart(std::cout, series, chart);
    std::cout << "\n";
  }

  std::cout << "Reading guide: the stationary values are exactly what the\n"
               "paper's algorithms produce; the transient traces show the\n"
               "switch forgets its initial condition within ~3-5 mean\n"
               "holding times, with the peaky class relaxing slowest.\n";
  return 0;
}
