// Why the paper wants a crossbar: route the same circuit traffic through an
// internally non-blocking crossbar and through a banyan (omega) multistage
// network of 2x2 elements, and attribute every rejection.
//
// The banyan's appeal is hardware: N/2 * log2(N) two-by-two elements instead
// of N^2 crosspoints.  The price is internal blocking — two circuits whose
// end ports are all free can still collide on a shared inter-stage link.
//
//   build/examples/multistage_comparison [--n=16] [--load=2.0]

#include <iostream>

#include "core/solver.hpp"
#include "fabric/banyan.hpp"
#include "fabric/crossbar.hpp"
#include "report/args.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace xbar;
  const report::Args args(argc, argv);
  const unsigned n = args.get_unsigned("n", 16);
  const double load = args.get_double("load", 2.0);

  const core::CrossbarModel model(
      core::Dims::square(n), {core::TrafficClass::poisson("circuits", load)});

  fabric::BanyanFabric banyan(n);
  std::cout << "=== " << banyan.name() << " vs crossbar(" << n << "x" << n
            << ") at rho~ = " << load << " ===\n"
            << "hardware: " << n * n << " crosspoints vs "
            << (n / 2) * banyan.num_stages() << " 2x2 elements\n\n";

  sim::SimulationConfig cfg;
  cfg.warmup_time = 500.0;
  cfg.measurement_time = 20'000.0;
  cfg.num_batches = 20;
  cfg.seed = 7;

  // Crossbar run (analytic reference + simulation).
  fabric::CrossbarFabric xbar_fabric(n, n);
  sim::Simulator xbar_sim(model, xbar_fabric, cfg);
  const auto xbar_result = xbar_sim.run();
  const double analytic = core::solve(model).per_class[0].blocking;

  // Banyan run.
  sim::Simulator banyan_sim(model, banyan, cfg);
  const auto banyan_result = banyan_sim.run();

  report::Table table({"fabric", "blocking (sim)", "CI", "vs analytic xbar"});
  table.add_row({"crossbar",
                 report::Table::num(
                     xbar_result.per_class[0].call_congestion.mean, 5),
                 report::Table::num(
                     xbar_result.per_class[0].call_congestion.half_width, 2),
                 report::Table::num(analytic, 5)});
  table.add_row({"banyan",
                 report::Table::num(
                     banyan_result.per_class[0].call_congestion.mean, 5),
                 report::Table::num(
                     banyan_result.per_class[0].call_congestion.half_width, 2),
                 "-"});
  table.print(std::cout);

  const auto total_rejects = banyan.rejected_port() + banyan.rejected_internal();
  std::cout << "\nbanyan rejection anatomy: " << banyan.rejected_port()
            << " port conflicts + " << banyan.rejected_internal()
            << " internal link conflicts";
  if (total_rejects > 0) {
    std::cout << "  ("
              << 100.0 * static_cast<double>(banyan.rejected_internal()) /
                     static_cast<double>(total_rejects)
              << "% internal)";
  }
  std::cout << "\n\nEvery internal conflict is blocking the crossbar would\n"
               "not have suffered — the architectural argument of the\n"
               "paper's introduction, quantified.\n";
  return 0;
}
