// Shadow prices and admission economics (paper §4).
//
// A 32x32 switch carries premium circuits (w = 1.0, moderate load) and
// discount circuits (w = 0.05).  As the discount load grows, its marginal value dW/drho flips
// sign: each extra discount connection displaces premium revenue worth more
// than the discount fare.  The flip point is where the paper's "economic
// interpretation" says to stop admitting growth: w_r vs the shadow cost
// DeltaW_r = W(N) - W(N - a_r I).
//
//   build/examples/revenue_shadow_prices [--n=32]

#include <iostream>

#include "core/revenue.hpp"
#include "report/args.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace xbar;
  const report::Args args(argc, argv);
  const unsigned n = args.get_unsigned("n", 32);

  std::cout << "=== Shadow prices on a " << n << "x" << n
            << " crossbar ===\npremium: Poisson, rho~ = 0.4, w = 1.0\n"
            << "discount: peaky (beta~ = rho~/4), w = 0.05, load swept\n\n";

  report::Table table({"discount rho~", "W(N)", "shadow cost",
                       "dW/drho (discount)", "dW/dx (discount)", "verdict"});
  double worst_w = 1e300;
  double worst_load = 0.0;
  for (const double load :
       {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 48.0}) {
    const core::CrossbarModel model(
        core::Dims::square(n),
        {core::TrafficClass::poisson("premium", 0.4, 1, 1.0, 1.0),
         core::TrafficClass::bursty("discount", load, load / 4.0, 1, 1.0,
                                    0.05)});
    const core::RevenueAnalyzer analyzer(model);
    const double w = analyzer.revenue();
    const double shadow = analyzer.shadow_cost(1);
    const double d_rho = analyzer.d_revenue_d_rho_exact(1);
    const double d_x = analyzer.d_revenue_d_x_exact(1);
    const bool worth = d_rho > 0.0;
    if (w < worst_w) {
      worst_w = w;
      worst_load = load;
    }
    table.add_row({report::Table::num(load, 4), report::Table::num(w, 5),
                   report::Table::num(shadow, 4),
                   report::Table::num(d_rho, 4),
                   report::Table::num(d_x, 4),
                   worth ? "admit more" : "cap it"});
  }
  table.print(std::cout);

  std::cout << "\nTotal revenue keeps falling until discount rho~ ~ "
            << worst_load
            << " — every increment of discount load before that point "
               "destroys more premium revenue than it earns.\n";
  std::cout
      << "\nHow to read this (paper §4):\n"
      << "  * dW/drho = P(N1,a) P(N2,a) B_r (w_r - DeltaW): positive while\n"
      << "    the fare w_r exceeds the shadow cost of the ports consumed;\n"
      << "  * dW/dx < 0 throughout: extra *burstiness* at the same mean\n"
      << "    load always destroys revenue here — blocking rises for the\n"
      << "    premium class without any compensating discount volume.\n";
  return 0;
}
