// Capacity planning: how much traffic can switches of various sizes admit
// at a 0.5% blocking SLO (the paper's "acceptable operating point"), and
// how does traffic peakedness eat into that budget?
//
// Uses the calibration layer (Brent's method over the model) to invert
// blocking(alpha~) at each size and Z-factor.
//
//   build/examples/capacity_planning [--target=0.005]

#include <functional>
#include <iostream>
#include <optional>
#include <vector>

#include "report/args.hpp"
#include "report/table.hpp"
#include "sweep/sweep.hpp"
#include "workload/calibrate.hpp"

int main(int argc, char** argv) {
  using namespace xbar;
  const report::Args args(argc, argv);
  const double target = args.get_double("target", 0.005);

  std::cout << "=== Admissible load at blocking <= " << 100.0 * target
            << "% ===\n\n";

  // beta_over_alpha picks the traffic shape: 0 Poisson, >0 peaky (Pascal),
  // <0 smooth (Bernoulli).  Smooth slopes must keep the intensity
  // non-negative across all N ports, so the Bernoulli shape scales its
  // slope with the switch size (population = 2N sources).
  struct Shape {
    std::string label;
    std::function<double(unsigned)> beta_over_alpha;
  };
  const std::vector<Shape> shapes = {
      {"smooth (population 2N)",
       [](unsigned n) { return -0.5 / static_cast<double>(n); }},
      {"Poisson", [](unsigned) { return 0.0; }},
      {"peaky (b/a = 0.5)", [](unsigned) { return 0.5; }},
      {"very peaky (b/a = 2)", [](unsigned) { return 2.0; }},
  };

  // Every (shape, N) calibration is an independent Brent inversion; fan the
  // full grid out through the sweep engine and print afterwards.
  const std::vector<unsigned> plan_sizes = {8u, 16u, 32u, 64u, 128u};
  sweep::SweepRunner runner;
  const auto calibrations =
      runner.map<std::optional<workload::CalibrationResult>>(
          shapes.size() * plan_sizes.size(),
          [&](std::size_t i, sweep::SolverCache&) {
            const auto& shape = shapes[i / plan_sizes.size()];
            const unsigned n = plan_sizes[i % plan_sizes.size()];
            return workload::calibrate_load(n, 1, target,
                                            shape.beta_over_alpha(n));
          });

  for (std::size_t si = 0; si < shapes.size(); ++si) {
    const auto& shape = shapes[si];
    std::cout << "--- " << shape.label << " ---\n";
    report::Table table({"N", "admissible alpha~", "carried circuits",
                         "per-port circuits", "iterations"});
    for (std::size_t ni = 0; ni < plan_sizes.size(); ++ni) {
      const unsigned n = plan_sizes[ni];
      const auto& result = calibrations[si * plan_sizes.size() + ni];
      if (!result) {
        table.add_row({report::Table::integer(n), "unreachable", "-", "-",
                       "-"});
        continue;
      }
      table.add_row({report::Table::integer(n),
                     report::Table::num(result->alpha_tilde, 5),
                     report::Table::num(result->concurrency, 5),
                     report::Table::num(result->concurrency / n, 4),
                     report::Table::integer(result->iterations)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Reading guide:\n"
      << "  * larger switches carry disproportionately more traffic at the\n"
      << "    same SLO (trunking efficiency);\n"
      << "  * peakier traffic (higher Z) must be admitted at lower alpha~ —\n"
      << "    the planning corollary of the paper's Figure 2;\n"
      << "  * smooth traffic buys headroom over Poisson at the same mean.\n";
  return 0;
}
