// How long after power-up can you trust the steady-state numbers?
//
// The paper's measures are stationary; this example uses the explicit CTMC
// (core/markov, uniformization) to watch a switch warm up from empty and
// reports when the time-dependent blocking B(t) is within 1% of the
// stationary value — a provisioning question the product form alone cannot
// answer.
//
//   build/examples/transient_startup [--n=8] [--rho=2.0]

#include <iostream>

#include "core/markov.hpp"
#include "report/args.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace xbar;
  const report::Args args(argc, argv);
  const unsigned n = args.get_unsigned("n", 8);
  const double rho = args.get_double("rho", 2.0);

  const core::CrossbarModel model(core::Dims::square(n),
                                  {core::TrafficClass::poisson("p", rho)});
  const core::MarkovChain chain(model);
  std::cout << "switch " << n << "x" << n << ", rho~ = " << rho << ", "
            << chain.num_states() << " CTMC states, uniformization rate "
            << chain.uniformization_rate() << "\n\n";

  const auto pi = chain.stationary();
  const double steady_blocking = 1.0 - chain.non_blocking_under(pi, 0);
  const double steady_carried = chain.concurrency_under(pi, 0);

  report::Table table({"t (holding times)", "blocking B(t)", "carried E(t)",
                       "gap to steady"});
  double settled_at = -1.0;
  for (const double t : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4}) {
    const auto p = chain.transient(t, chain.empty_state());
    const double blocking = 1.0 - chain.non_blocking_under(p, 0);
    const double carried = chain.concurrency_under(p, 0);
    const double gap = steady_blocking > 0.0
                           ? (steady_blocking - blocking) / steady_blocking
                           : 0.0;
    if (settled_at < 0.0 && gap < 0.01) {
      settled_at = t;
    }
    table.add_row({report::Table::num(t, 3), report::Table::num(blocking, 5),
                   report::Table::num(carried, 5),
                   report::Table::num(100.0 * gap, 3) + "%"});
  }
  table.print(std::cout);

  std::cout << "\nstationary blocking " << steady_blocking << ", carried "
            << steady_carried << "\n";
  if (settled_at >= 0.0) {
    std::cout << "B(t) is within 1% of stationary by t ~ " << settled_at
              << " mean holding times — measurements started earlier than\n"
              << "that (or simulation warmups shorter than that) are biased "
                 "low.\n";
  }
  return 0;
}
