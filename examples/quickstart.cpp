// Quickstart: model a 64x64 all-optical crossbar carrying two traffic
// classes — smooth voice circuits and peaky bulk-data bursts — and read off
// every performance measure the library computes.
//
//   build/examples/quickstart [--n=64]

#include <iostream>

#include "core/model.hpp"
#include "core/revenue.hpp"
#include "core/solver.hpp"
#include "dist/bpp.hpp"
#include "report/args.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace xbar;
  const report::Args args(argc, argv);
  const unsigned n = args.get_unsigned("n", 64);

  // 1. Describe the offered traffic in the paper's aggregate ("tilde")
  //    units.  Classes carry a name, a bandwidth a_r (ports per circuit),
  //    BPP parameters (alpha~, beta~), a holding rate mu and a revenue
  //    weight.
  const core::TrafficClass voice =
      core::TrafficClass::poisson("voice", /*rho_tilde=*/0.45,
                                  /*bandwidth=*/1, /*mu=*/1.0,
                                  /*weight=*/1.0);
  const core::TrafficClass video =  // two ports per circuit, smooth
      core::TrafficClass::bursty("video", /*alpha~=*/0.0008,
                                 /*beta~=*/-2e-6,
                                 /*bandwidth=*/2, /*mu=*/0.5,
                                 /*weight=*/3.0);
  const core::TrafficClass bulk =  // peaky (Pascal) data bursts
      core::TrafficClass::bursty("bulk", /*alpha~=*/0.1, /*beta~=*/0.05,
                                 /*bandwidth=*/1, /*mu=*/2.0,
                                 /*weight=*/0.2);

  // 2. Bind them to a switch.  The constructor validates the configuration
  //    (bandwidths vs dimensions, BPP admissibility) and normalizes the
  //    tilde rates to per-tuple rates.
  const core::CrossbarModel model(core::Dims::square(n),
                                  {voice, video, bulk});

  std::cout << "switch: " << n << "x" << n << " asynchronous crossbar, "
            << model.num_classes() << " classes\n";
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const auto& c = model.normalized(r);
    std::cout << "  " << model.classes()[r].name << ": "
              << dist::to_string(c.bpp().shape()) << " traffic, Z = "
              << c.bpp().peakedness() << ", a = " << c.bandwidth << "\n";
  }

  // 3. Solve.  The default "auto" spec picks Algorithm 1 (exact Q-grid
  //    convolution) for small switches and Algorithm 2 (stable mean-value
  //    recursion) for large; solve_result also reports what actually ran.
  const core::SolveResult solved = core::solve_result(model);
  const core::Measures& measures = solved.measures;
  std::cout << "solved with " << core::to_string(solved.diagnostics.algorithm)
            << " on " << core::to_string(solved.diagnostics.backend)
            << " in " << solved.diagnostics.wall_seconds * 1e3 << " ms\n";

  report::Table table({"class", "blocking", "concurrency", "throughput",
                       "port usage"});
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const auto& cm = measures.per_class[r];
    table.add_row({model.classes()[r].name,
                   report::Table::num(cm.blocking, 5),
                   report::Table::num(cm.concurrency, 5),
                   report::Table::num(cm.throughput, 5),
                   report::Table::num(cm.port_usage, 5)});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nutilization: " << 100.0 * measures.utilization
            << "%   total throughput: " << measures.total_throughput
            << "   revenue rate W(N): " << measures.revenue << "\n";

  // 4. Ask the economic question (paper §4): is more of each class worth
  //    admitting at the margin?
  const core::RevenueAnalyzer analyzer(model);
  const auto report = analyzer.analyze();
  std::cout << "\nshadow-cost analysis:\n";
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const auto& s = report.per_class[r];
    std::cout << "  " << model.classes()[r].name << ": shadow cost "
              << s.shadow_cost << ", dW/drho = " << s.d_revenue_d_rho
              << (s.worth_admitting ? "  -> admit more"
                                    : "  -> crowds out better traffic")
              << "\n";
  }
  return 0;
}
