// Drive the discrete-event simulator against the analytic model and watch
// the three congestion notions separate for non-Poisson traffic:
//
//   * time congestion  (1 - B_r)     — fraction of time a request *would*
//     be blocked; what the paper's formulas give;
//   * call congestion               — fraction of arrivals actually
//     blocked; equals time congestion only for Poisson arrivals (PASTA);
//   * concurrency E_r               — carried circuits, always comparable.
//
// Peaky arrivals come in bursts, so they see a busier switch than the time
// average (call > time); smooth arrivals see an emptier one (call < time).
//
//   build/examples/sim_vs_analytic [--n=8] [--reps=5] [--time=6000]

#include <iostream>

#include "core/solver.hpp"
#include "report/args.hpp"
#include "report/table.hpp"
#include "sim/replication.hpp"

int main(int argc, char** argv) {
  using namespace xbar;
  const report::Args args(argc, argv);
  const unsigned n = args.get_unsigned("n", 8);
  const std::size_t reps = args.get_unsigned("reps", 5);
  const double horizon = args.get_double("time", 6000.0);

  // Equal mean load, three shapes.
  const core::CrossbarModel model(
      core::Dims::square(n),
      {core::TrafficClass::bursty("smooth", 0.9, -0.05),
       core::TrafficClass::poisson("regular", 0.6),
       core::TrafficClass::bursty("peaky", 0.3, 0.15)});

  const auto analytic = core::solve(model);

  sim::ReplicationConfig cfg;
  cfg.replications = reps;
  cfg.sim.warmup_time = horizon / 20.0;
  cfg.sim.measurement_time = horizon;
  cfg.sim.num_batches = 20;
  cfg.sim.seed = 42;
  const auto simulated = sim::run_crossbar_replications(model, cfg);

  std::cout << "=== " << n << "x" << n << " crossbar, " << reps
            << " replications x " << horizon << " time units ===\n\n";
  report::Table table({"class", "analytic 1-B", "sim time-cong",
                       "sim call-cong", "analytic E", "sim E",
                       "call vs time"});
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const auto& a = analytic.per_class[r];
    const auto& s = simulated.per_class[r];
    const char* relation =
        s.call_congestion.mean > s.time_congestion.mean * 1.02 ? "call > time"
        : s.call_congestion.mean < s.time_congestion.mean * 0.98
            ? "call < time"
            : "call ~ time";
    table.add_row(
        {model.classes()[r].name, report::Table::num(a.blocking, 4),
         report::Table::num(s.time_congestion.mean, 4) + " +- " +
             report::Table::num(s.time_congestion.half_width, 2),
         report::Table::num(s.call_congestion.mean, 4) + " +- " +
             report::Table::num(s.call_congestion.half_width, 2),
         report::Table::num(a.concurrency, 4),
         report::Table::num(s.concurrency.mean, 4) + " +- " +
             report::Table::num(s.concurrency.half_width, 2),
         relation});
  }
  table.print(std::cout);

  std::cout << "\nevents simulated: " << simulated.total_events
            << ", utilization " << 100.0 * simulated.utilization.mean
            << "% (analytic " << 100.0 * analytic.utilization << "%)\n"
            << "\nExpected pattern: time congestion matches the analytic\n"
            << "column for ALL classes; call congestion sits above it for\n"
            << "the peaky class, below for the smooth class, and on it for\n"
            << "the regular (Poisson) class.\n";
  return 0;
}
